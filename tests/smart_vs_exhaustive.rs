//! Property tests: the smart (relevance-restricted, join-based)
//! grounder agrees with the exhaustive reference on everything within
//! its documented scope — least models, assumption-free models and
//! stable models — on random ordered programs and on the workload
//! generators.

use olp_workload::{
    ancestor, defeating_pairs, expert_panel, random_ordered, taxonomy_chain, taxonomy_expected_fly,
    GraphShape, RandomCfg,
};
use ordered_logic::prelude::*;
use ordered_logic::semantics::enumerate_assumption_free;
use proptest::prelude::*;

/// Renders a model set for order-insensitive comparison.
fn renders(w: &World, ms: &[Interpretation]) -> Vec<String> {
    let mut v: Vec<String> = ms.iter().map(|m| m.render(w)).collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Least models agree per component on random propositional ordered
    /// programs.
    #[test]
    fn least_models_agree(seed in 0u64..20_000) {
        let cfg = RandomCfg {
            n_atoms: 6,
            n_rules: 12,
            max_body: 3,
            neg_head_prob: 0.35,
            neg_body_prob: 0.4,
            n_components: 3,
            edge_prob: 0.5,
        };
        let gc = GroundConfig::default();
        let mut w = World::new();
        let p = random_ordered(&mut w, &cfg, seed);
        let g_ex = ground_exhaustive(&mut w, &p, &gc).unwrap();
        let g_sm = ground_smart(&mut w, &p, &gc).unwrap();
        for ci in 0..p.components.len() {
            let c = CompId(ci as u32);
            let m_ex = least_model(&View::new(&g_ex, c));
            let m_sm = least_model(&View::new(&g_sm, c));
            prop_assert_eq!(
                m_ex.render(&w), m_sm.render(&w),
                "least models differ in component {} (seed {})", ci, seed
            );
        }
    }

    /// Assumption-free and stable model sets agree on random programs.
    #[test]
    fn stable_models_agree(seed in 0u64..20_000) {
        let cfg = RandomCfg {
            n_atoms: 5,
            n_rules: 9,
            max_body: 2,
            neg_head_prob: 0.4,
            neg_body_prob: 0.4,
            n_components: 2,
            edge_prob: 0.6,
        };
        let gc = GroundConfig::default();
        let mut w = World::new();
        let p = random_ordered(&mut w, &cfg, seed);
        let g_ex = ground_exhaustive(&mut w, &p, &gc).unwrap();
        let g_sm = ground_smart(&mut w, &p, &gc).unwrap();
        for ci in 0..p.components.len() {
            let c = CompId(ci as u32);
            let af_ex = enumerate_assumption_free(&View::new(&g_ex, c), g_ex.n_atoms);
            let af_sm = enumerate_assumption_free(&View::new(&g_sm, c), g_sm.n_atoms);
            prop_assert_eq!(
                renders(&w, &af_ex), renders(&w, &af_sm),
                "AF sets differ in component {} (seed {})", ci, seed
            );
            let st_ex = stable_models(&View::new(&g_ex, c), g_ex.n_atoms);
            let st_sm = stable_models(&View::new(&g_sm, c), g_sm.n_atoms);
            prop_assert_eq!(
                renders(&w, &st_ex), renders(&w, &st_sm),
                "stable sets differ in component {} (seed {})", ci, seed
            );
        }
    }

    /// Non-propositional random safe Datalog with negated heads: least
    /// models and stable sets agree across grounders.
    #[test]
    fn random_datalog_agrees(seed in 0u64..20_000) {
        use olp_workload::{random_datalog, DatalogCfg};
        let cfg = DatalogCfg::default();
        let gc = GroundConfig::default();
        let mut w = World::new();
        let p = random_datalog(&mut w, &cfg, seed);
        let g_ex = ground_exhaustive(&mut w, &p, &gc).unwrap();
        let g_sm = ground_smart(&mut w, &p, &gc).unwrap();
        for ci in 0..p.components.len() {
            let c = CompId(ci as u32);
            let m_ex = least_model(&View::new(&g_ex, c));
            let m_sm = least_model(&View::new(&g_sm, c));
            prop_assert_eq!(
                m_ex.render(&w), m_sm.render(&w),
                "least models differ in component {} (seed {})", ci, seed
            );
        }
    }

    /// Non-propositional: the ancestor workload (joins, recursion) —
    /// least models agree and match transitive closure.
    #[test]
    fn ancestor_least_models_agree(n in 2usize..9, seed in 0u64..1000) {
        let gc = GroundConfig::default();
        let mut w = World::new();
        let p = ancestor(&mut w, GraphShape::Random { edges: n + 2, seed }, n);
        let g_ex = ground_exhaustive(&mut w, &p, &gc).unwrap();
        let g_sm = ground_smart(&mut w, &p, &gc).unwrap();
        let c = CompId(0);
        let m_ex = least_model(&View::new(&g_ex, c));
        let m_sm = least_model(&View::new(&g_sm, c));
        prop_assert_eq!(m_ex.render(&w), m_sm.render(&w));
    }
}

/// The taxonomy workload at moderate size: the smart grounder's least
/// model reproduces the analytically expected verdicts.
#[test]
fn taxonomy_smart_matches_expected_truth() {
    let (n_species, n_layers) = (64, 4);
    let mut w = World::new();
    let p = taxonomy_chain(&mut w, n_species, n_layers);
    let g = ground_smart(&mut w, &p, &GroundConfig::default()).unwrap();
    let m = least_model(&View::new(&g, CompId(0)));
    for s in 0..n_species {
        let fly = parse_ground_literal(&mut w, &format!("fly(s{s})")).unwrap();
        let expected = taxonomy_expected_fly(n_species, n_layers, s);
        assert_eq!(
            m.holds(fly),
            expected,
            "species s{s}: expected fly={expected}"
        );
        assert_eq!(m.holds(fly.complement()), !expected);
    }
}

/// The defeating workload: everything is defeated at the consumer.
#[test]
fn defeating_pairs_smart_and_exhaustive_empty() {
    let mut w = World::new();
    let p = defeating_pairs(&mut w, 20);
    let gc = GroundConfig::default();
    let g_ex = ground_exhaustive(&mut w, &p, &gc).unwrap();
    let g_sm = ground_smart(&mut w, &p, &gc).unwrap();
    let consumer = CompId(0);
    assert!(least_model(&View::new(&g_ex, consumer)).is_empty());
    assert!(least_model(&View::new(&g_sm, consumer)).is_empty());
    // But each individual expert still believes its own fact.
    let m_pro = least_model(&View::new(&g_sm, CompId(1)));
    assert_eq!(m_pro.len(), 1);
}

/// The expert panel: both grounders give the same verdict across a
/// sweep of indicator values.
#[test]
fn expert_panel_verdicts_agree() {
    let gc = GroundConfig::default();
    for (infl, rate) in [(9, 9), (12, 12), (12, 16), (19, 16), (25, 30)] {
        let mut w = World::new();
        let p = expert_panel(&mut w, 6, infl, rate);
        let g_ex = ground_exhaustive(&mut w, &p, &gc).unwrap();
        let g_sm = ground_smart(&mut w, &p, &gc).unwrap();
        let myself = CompId(0);
        let m_ex = least_model(&View::new(&g_ex, myself));
        let m_sm = least_model(&View::new(&g_sm, myself));
        assert_eq!(
            m_ex.render(&w),
            m_sm.render(&w),
            "verdicts differ at inflation={infl}, rate={rate}"
        );
    }
}

/// Smart grounding is strictly smaller on relevance-friendly inputs.
#[test]
fn smart_grounding_is_smaller_on_ancestor() {
    let gc = GroundConfig::default();
    let mut w = World::new();
    let p = ancestor(&mut w, GraphShape::Chain, 12);
    let g_ex = ground_exhaustive(&mut w, &p, &gc).unwrap();
    let g_sm = ground_smart(&mut w, &p, &gc).unwrap();
    assert!(
        g_sm.len() * 4 < g_ex.len(),
        "smart {} vs exhaustive {}",
        g_sm.len(),
        g_ex.len()
    );
}
