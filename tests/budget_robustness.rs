//! Fault-injection tests for the resource governor: random workloads
//! are interrupted at random points (step budgets, expired deadlines,
//! cancellation) and every partial result must uphold its documented
//! anytime guarantee:
//!
//! * no panic anywhere in the engine;
//! * a partial fixpoint is a **subset** of the unbudgeted least model
//!   (sound under-approximation);
//! * partial model enumerations (assumption-free, sequential and
//!   parallel; stable) are **subsets of the unbudgeted assumption-free
//!   enumeration** — every member is a genuine model, only coverage is
//!   lost (for interrupted stable lists maximality is relative to the
//!   explored portion, so the reference is the AF enumeration, not the
//!   stable list);
//! * a partial `prove` never answers `true` wrongly;
//! * an interrupted **incremental mutation** is not applied: the KB
//!   stays queryable and exactly consistent with its pre-mutation
//!   state;
//! * unlimited budgets always complete with the exact answers.

use olp_workload::{random_ordered, RandomCfg};
use ordered_logic::core::{Budget, Eval, InterruptReason, World};
use ordered_logic::ground::{ground_exhaustive, GroundConfig, GroundError, GroundProgram};
use ordered_logic::kb::{GroundStrategy, KbBuilder, QueryOptions};
use ordered_logic::semantics::{
    credulous_consequences_budgeted, enumerate_assumption_free_budgeted,
    enumerate_assumption_free_parallel_budgeted, enumerate_assumption_free_propagating,
    enumerate_assumption_free_propagating_budgeted, explain_budgeted, least_model,
    least_model_budgeted, least_model_naive_budgeted, prove_budgeted,
    skeptical_consequences_budgeted, stable_models_budgeted, View, Why,
};
use proptest::prelude::*;

fn workload(seed: u64) -> (World, GroundProgram) {
    let mut w = World::new();
    let cfg = RandomCfg {
        n_atoms: 6,
        n_rules: 12,
        max_body: 3,
        neg_head_prob: 0.35,
        neg_body_prob: 0.4,
        n_components: 3,
        edge_prob: 0.5,
    };
    let prog = random_ordered(&mut w, &cfg, seed);
    let g = ground_exhaustive(&mut w, &prog, &GroundConfig::default())
        .expect("propositional programs always ground");
    (w, g)
}

/// Canonical form for set-membership checks across enumerations.
fn lits_of(m: &ordered_logic::core::Interpretation) -> Vec<ordered_logic::core::GLit> {
    let mut v: Vec<_> = m.literals().collect();
    v.sort_unstable();
    v
}

proptest! {
    #[test]
    fn partial_fixpoints_under_approximate(seed in 0u64..40, steps in 0u64..3000) {
        let (_, g) = workload(seed);
        for ci in 0..g.order.len() {
            let view = View::new(&g, ordered_logic::core::CompId(ci as u32));
            let full = least_model(&view);
            for eval in [
                least_model_budgeted(&view, &Budget::with_steps(steps)),
                least_model_naive_budgeted(&view, &Budget::with_steps(steps)),
            ] {
                match eval {
                    Eval::Complete(m) => prop_assert_eq!(&m, &full),
                    Eval::Interrupted(i) => {
                        prop_assert_eq!(i.reason, InterruptReason::Steps);
                        prop_assert!(
                            i.partial.is_subset(&full),
                            "partial fixpoint must under-approximate (seed {})",
                            seed
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn partial_enumerations_are_subsets(seed in 0u64..25, steps in 0u64..4000) {
        let (_, g) = workload(seed);
        for ci in 0..g.order.len() {
            let view = View::new(&g, ordered_logic::core::CompId(ci as u32));
            let full: Vec<Vec<_>> = enumerate_assumption_free_propagating(&view, g.n_atoms)
                .iter()
                .map(lits_of)
                .collect();
            let budgeted = [
                enumerate_assumption_free_budgeted(
                    &view, g.n_atoms, &Budget::with_steps(steps), None),
                enumerate_assumption_free_propagating_budgeted(
                    &view, g.n_atoms, &Budget::with_steps(steps), None),
                enumerate_assumption_free_parallel_budgeted(
                    &view, g.n_atoms, 2, &Budget::with_steps(steps), None),
                stable_models_budgeted(
                    &view, g.n_atoms, &Budget::with_steps(steps), None),
            ];
            for eval in budgeted {
                for m in eval.value() {
                    prop_assert!(
                        full.contains(&lits_of(m)),
                        "every (partial) member must be a genuine AF model (seed {})",
                        seed
                    );
                }
            }
        }
    }

    #[test]
    fn partial_prove_never_lies(seed in 0u64..40, steps in 0u64..800) {
        let (mut w, g) = workload(seed);
        for ci in 0..g.order.len() {
            let view = View::new(&g, ordered_logic::core::CompId(ci as u32));
            let full = least_model(&view);
            for atom_i in 0..3u32 {
                let q = ordered_logic::parser::parse_ground_literal(
                    &mut w, &format!("p{atom_i}")).expect("atom parses");
                match prove_budgeted(&view, q, &Budget::with_steps(steps)) {
                    Eval::Complete(ans) => prop_assert_eq!(ans, full.holds(q)),
                    Eval::Interrupted(i) => {
                        if i.partial {
                            prop_assert!(full.holds(q), "partial `true` must be final");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn partial_explanations_are_genuine_proofs(seed in 0u64..30, steps in 0u64..1500) {
        let (mut w, g) = workload(seed);
        for ci in 0..g.order.len() {
            let view = View::new(&g, ordered_logic::core::CompId(ci as u32));
            let full = least_model(&view);
            let q = ordered_logic::parser::parse_ground_literal(&mut w, "p0")
                .expect("atom parses");
            if let Eval::Interrupted(i) =
                explain_budgeted(&view, q, &Budget::with_steps(steps))
            {
                if let Why::Proved(proof) = i.partial {
                    // A proof built on a partial model is valid in the
                    // full least model too.
                    prop_assert!(full.holds(proof.lit));
                }
            }
        }
    }

    #[test]
    fn model_cap_is_respected(seed in 0u64..25, cap in 1usize..4) {
        let (_, g) = workload(seed);
        for ci in 0..g.order.len() {
            let view = View::new(&g, ordered_logic::core::CompId(ci as u32));
            let full_count =
                enumerate_assumption_free_propagating(&view, g.n_atoms).len();
            let eval = enumerate_assumption_free_propagating_budgeted(
                &view, g.n_atoms, &Budget::unlimited(), Some(cap));
            match eval {
                Eval::Complete(ms) => prop_assert!(ms.len() <= cap && full_count <= cap),
                Eval::Interrupted(i) => {
                    prop_assert_eq!(i.reason, InterruptReason::ModelCap);
                    prop_assert!(i.partial.len() >= cap.min(full_count));
                }
            }
        }
    }

    #[test]
    fn consequence_partials_do_not_panic(seed in 0u64..25, steps in 0u64..2000) {
        let (_, g) = workload(seed);
        for ci in 0..g.order.len() {
            let view = View::new(&g, ordered_logic::core::CompId(ci as u32));
            // Credulous partials under-approximate: every literal is
            // witnessed by a genuine AF model.
            let full_af = enumerate_assumption_free_propagating(&view, g.n_atoms);
            let cred = credulous_consequences_budgeted(
                &view, g.n_atoms, &Budget::with_steps(steps));
            for &l in cred.value() {
                prop_assert!(full_af.iter().any(|m| m.holds(l)));
            }
            // Skeptical partials are documented over-approximations;
            // here we only require no panic and a consistent result.
            let _ = skeptical_consequences_budgeted(
                &view, g.n_atoms, &Budget::with_steps(steps));
        }
    }

    #[test]
    fn grounding_budget_interrupts_cleanly(seed in 0u64..20, steps in 1u64..200) {
        let mut w = World::new();
        let prog = olp_workload::taxonomy_chain(&mut w, 8, 2);
        let cfg = GroundConfig {
            budget: Budget::with_steps(steps),
            ..GroundConfig::default()
        };
        match ground_exhaustive(&mut w, &prog, &cfg) {
            Ok(_) => {}
            Err(GroundError::Interrupted(r)) => {
                prop_assert_eq!(r, InterruptReason::Steps);
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
        // Unused but keeps the strategy exercised across seeds.
        let _ = seed;
    }
}

#[test]
fn expired_deadline_interrupts_immediately() {
    let (_, g) = workload(7);
    let view = View::new(&g, ordered_logic::core::CompId(0));
    let budget = Budget::limited(None, Some(std::time::Instant::now()));
    // Deadlines are probed, not checked every tick, so a small prefix of
    // work may complete; the result must still be sound.
    let full = least_model(&view);
    match least_model_budgeted(&view, &budget) {
        Eval::Complete(m) => assert_eq!(m, full),
        Eval::Interrupted(i) => {
            assert_eq!(i.reason, InterruptReason::Deadline);
            assert!(i.partial.is_subset(&full));
        }
    }
}

#[test]
fn cancellation_stops_parallel_grounding_promptly() {
    // A cancelled budget must stop every grounding worker at the next
    // spend-pool flush: the call returns `Cancelled` without grounding
    // the whole (deliberately large) workload, and well within a bound
    // that full grounding of a hung worker would blow through.
    use olp_workload::GraphShape;
    let mut w = World::new();
    let prog = olp_workload::ancestor(
        &mut w,
        GraphShape::Random {
            edges: 900,
            seed: 5,
        },
        300,
    );
    let budget = Budget::cancellable();
    budget.cancel();
    let cfg = GroundConfig {
        budget: budget.clone(),
        threads: 8,
        ..GroundConfig::default()
    };
    let start = std::time::Instant::now();
    let res = ordered_logic::ground::ground_smart(&mut w, &prog, &cfg);
    assert!(
        matches!(
            res,
            Err(GroundError::Interrupted(InterruptReason::Cancelled))
        ),
        "pre-cancelled budget must interrupt parallel grounding, got {res:?}"
    );
    assert!(
        start.elapsed() < std::time::Duration::from_secs(10),
        "workers did not observe cancellation promptly"
    );
}

#[test]
fn cancellation_stops_the_wavefront_fixpoint() {
    // Same contract for the stratum-wavefront least model: every worker
    // shares the budget, so a cancellation trips all in-flight strata
    // and the merged partial under-approximates the least model.
    use ordered_logic::semantics::least_model_parallel_budgeted;
    let (_, g) = workload(11);
    for ci in 0..g.order.len() {
        let view = View::new(&g, ordered_logic::core::CompId(ci as u32));
        let full = least_model(&view);
        let budget = Budget::cancellable();
        budget.cancel();
        match least_model_parallel_budgeted(&view, 4, &budget) {
            // An empty level schedule can finish before the first probe.
            Eval::Complete(m) => assert_eq!(m, full),
            Eval::Interrupted(i) => {
                assert_eq!(i.reason, InterruptReason::Cancelled);
                assert!(i.partial.is_subset(&full));
            }
        }
    }
}

#[test]
fn cancellation_stops_the_parallel_enumerator() {
    let (_, g) = workload(3);
    let view = View::new(&g, ordered_logic::core::CompId(g.order.len() as u32 - 1));
    let budget = Budget::cancellable();
    budget.cancel();
    let eval = enumerate_assumption_free_parallel_budgeted(&view, g.n_atoms, 2, &budget, None);
    match eval {
        // Tiny searches may finish inside the first probe interval.
        Eval::Complete(_) => {}
        Eval::Interrupted(i) => assert_eq!(i.reason, InterruptReason::Cancelled),
    }
}

proptest! {
    /// A budget that trips mid-incremental-update must leave the KB
    /// queryable and **exactly** consistent with its pre-mutation
    /// state: interrupted mutations are not applied (no torn ground
    /// programs, no half-invalidated caches), and the same KB keeps
    /// accepting unbudgeted mutations afterwards.
    #[test]
    fn interrupted_incremental_mutation_keeps_kb_consistent(
        seed in 0u64..40,
        steps in 0u64..400,
        is_assert in any::<bool>(),
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let mut world = World::new();
        let cfg = RandomCfg {
            n_atoms: 6,
            n_rules: 12,
            max_body: 3,
            neg_head_prob: 0.35,
            neg_body_prob: 0.4,
            n_components: 3,
            edge_prob: 0.5,
        };
        let prog = random_ordered(&mut world, &cfg, seed);
        // `threads` exercises budget atomicity on both the sequential
        // and the parallel (BSP) delta-grounding paths: a tripped
        // mutation must be all-or-nothing regardless of how many
        // workers were in flight when the budget ran out.
        let gcfg = GroundConfig {
            threads,
            ..GroundConfig::default()
        };
        let mut kb = KbBuilder::from_parts(world, prog)
            .build_with(GroundStrategy::Smart, &gcfg)
            .expect("propositional programs always ground");
        kb.set_threads(threads);
        let objects = ["c0", "c1", "c2"];
        let before: Vec<String> = objects
            .iter()
            .map(|o| {
                let m = kb.model(o).expect("known object").clone();
                kb.render(&m)
            })
            .collect();
        let epoch_before = kb.epoch();
        let opts = QueryOptions::new().max_steps(steps).threads(threads);
        let ev = if is_assert {
            kb.assert_rule_with("c0", "p0 :- p1, -p2.", &opts)
                .expect("no hard error")
                .map(|()| true)
        } else {
            kb.retract_rule_with("c0", "p0 :- p1, -p2.", &opts)
                .expect("no hard error")
        };
        if ev.is_partial() {
            prop_assert_eq!(kb.epoch(), epoch_before, "interrupted mutation must not commit");
            for (o, expected) in objects.iter().zip(&before) {
                let m = kb.model(o).expect("still queryable").clone();
                prop_assert_eq!(
                    &kb.render(&m), expected,
                    "KB diverged from pre-mutation state after interrupted mutation"
                );
            }
        }
        // Interrupted or not, the KB remains fully usable: an
        // unbudgeted mutation applies and is immediately visible (the
        // probe atom is outside the generator's vocabulary, so nothing
        // in the random program can overrule or defeat it).
        kb.assert_rule("c1", "probe_alive.").expect("unbudgeted assert succeeds");
        prop_assert!(kb.ask("c1", "probe_alive").expect("queryable"));
        // …and a budgeted revalidation of the now-stale caches yields a
        // sound under-approximation of the new least model.
        let ev = kb
            .model_with("c0", &QueryOptions::new().max_steps(steps).threads(threads))
            .expect("queryable");
        let partial = ev.into_value();
        let full = kb.model("c0").expect("queryable");
        prop_assert!(partial.is_subset(full), "partial revalidation must under-approximate");
    }
}

#[test]
fn unlimited_budget_is_always_complete() {
    for seed in 0..10 {
        let (_, g) = workload(seed);
        for ci in 0..g.order.len() {
            let view = View::new(&g, ordered_logic::core::CompId(ci as u32));
            assert!(least_model_budgeted(&view, &Budget::unlimited()).is_complete());
            assert!(
                stable_models_budgeted(&view, g.n_atoms, &Budget::unlimited(), None).is_complete()
            );
        }
    }
}
