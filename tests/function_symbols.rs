//! End-to-end tests of programs with function symbols: the Herbrand
//! universe is infinite, so everything runs under the configurable
//! depth bound (§2 allows arbitrary terms `f(t1,…,tn)`).

use ordered_logic::prelude::*;

fn ground_with_depth(src: &str, depth: u32) -> (World, OrderedProgram, GroundProgram) {
    let mut w = World::new();
    let p = parse_program(&mut w, src).unwrap();
    let cfg = GroundConfig {
        max_depth: depth,
        ..GroundConfig::default()
    };
    let g = ground_smart(&mut w, &p, &cfg).unwrap();
    (w, p, g)
}

#[test]
fn peano_evens_up_to_depth() {
    let (mut w, _, g) = ground_with_depth("even(zero). even(s(s(X))) :- even(X).", 6);
    let m = least_model(&View::new(&g, CompId(0)));
    for (term, expected) in [
        ("zero", true),
        ("s(zero)", false),
        ("s(s(zero))", true),
        ("s(s(s(zero)))", false),
        ("s(s(s(s(zero))))", true),
    ] {
        let q = parse_ground_literal(&mut w, &format!("even({term})")).unwrap();
        assert_eq!(m.holds(q), expected, "even({term})");
        // No CWA: odd numbers are undefined, not false.
        assert!(!m.holds(q.complement()), "-even({term}) underivable");
    }
}

#[test]
fn depth_bound_respected_by_both_grounders() {
    let src = "even(zero). even(s(s(X))) :- even(X).";
    for depth in [0u32, 2, 4] {
        let mut w1 = World::new();
        let p1 = parse_program(&mut w1, src).unwrap();
        let cfg = GroundConfig {
            max_depth: depth,
            ..GroundConfig::default()
        };
        let ge = ground_exhaustive(&mut w1, &p1, &cfg).unwrap();
        let m_ex = least_model(&View::new(&ge, CompId(0)));

        let mut w2 = World::new();
        let p2 = parse_program(&mut w2, src).unwrap();
        let gs = ground_smart(&mut w2, &p2, &cfg).unwrap();
        let m_sm = least_model(&View::new(&gs, CompId(0)));
        assert_eq!(
            m_ex.render(&w1),
            m_sm.render(&w2),
            "depth {depth}: grounders disagree"
        );
    }
}

#[test]
fn list_membership_with_pairs() {
    // cons-lists via a binary function symbol.
    let (mut w, _, g) = ground_with_depth(
        "list(cons(a, cons(b, nil))).
         member(X, cons(X, T)) :- list(cons(X, T)).
         sublist(T, cons(X, T)) :- list(cons(X, T)).
         list(T) :- sublist(T, L).
         member(X, L) :- sublist(T, L), member(X, T).",
        4,
    );
    let m = least_model(&View::new(&g, CompId(0)));
    for (q, expected) in [
        ("member(a, cons(a, cons(b, nil)))", true),
        ("member(b, cons(a, cons(b, nil)))", true),
        ("member(b, cons(b, nil))", true),
        ("list(cons(b, nil))", true),
        ("list(nil)", true),
    ] {
        let lit = parse_ground_literal(&mut w, q).unwrap();
        assert_eq!(m.holds(lit), expected, "{q}");
    }
}

#[test]
fn exceptions_over_structured_terms() {
    // Overruling works on compound-term atoms exactly as on constants.
    let (mut w, _, g) = ground_with_depth(
        "module general {
            request(job(alice, deploy)). request(job(bob, deploy)).
            approve(J) :- request(J).
            -flagged(J) :- request(J).   % CWA default, overridable below
         }
         module security < general {
            flagged(job(bob, deploy)).
            -approve(J) :- flagged(J).
         }",
        2,
    );
    let sec = CompId(1);
    let m = least_model(&View::new(&g, sec));
    let ok = parse_ground_literal(&mut w, "approve(job(alice, deploy))").unwrap();
    let denied = parse_ground_literal(&mut w, "-approve(job(bob, deploy))").unwrap();
    assert!(m.holds(ok), "alice's job approved");
    assert!(m.holds(denied), "bob's flagged job overruled");
}

#[test]
fn structural_equality_on_compound_terms() {
    // `=` / `!=` compare ground structures, not just constants.
    let (mut w, _, g) = ground_with_depth(
        "pair(p(a, b)). pair(p(a, a)).
         diagonal(P) :- pair(P), P = p(a, a).
         off_diagonal(P) :- pair(P), P != p(a, a).",
        2,
    );
    let m = least_model(&View::new(&g, CompId(0)));
    assert!(m.holds(parse_ground_literal(&mut w, "diagonal(p(a, a))").unwrap()));
    assert!(!m.holds(parse_ground_literal(&mut w, "diagonal(p(a, b))").unwrap()));
    assert!(m.holds(parse_ground_literal(&mut w, "off_diagonal(p(a, b))").unwrap()));
}

#[test]
fn term_cap_errors_cleanly() {
    let mut w = World::new();
    let p = parse_program(&mut w, "t(leaf). t(node(X, Y)) :- t(X), t(Y).").unwrap();
    let cfg = GroundConfig {
        max_depth: 8,
        max_terms: 200,
        max_instances: 1_000_000,
        ..GroundConfig::default()
    };
    // The binary tree universe explodes doubly-exponentially; the
    // bound must trip, not hang.
    assert!(matches!(
        ground_exhaustive(&mut w, &p, &cfg),
        Err(ordered_logic::ground::GroundError::TooManyTerms(200))
    ));
}
