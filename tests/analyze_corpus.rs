//! Golden lint results for the shipped corpus: every `.olp` example and
//! every `prolog` snippet in the tutorial goes through the analyzer.
//!
//! `penguin.olp` intentionally contains the Fig. 1 shadowed rule (the
//! analyzer's W05 showcase); everything else ships lint-clean, and CI
//! enforces exactly that split with `olp check --deny warnings`.

use ordered_logic::analyze::{analyze, Code, Diagnostic, Severity};
use ordered_logic::prelude::*;

fn lint(src: &str) -> Vec<Diagnostic> {
    let mut world = World::new();
    let prog = parse_program(&mut world, src).expect("corpus program parses");
    analyze(&world, &prog)
}

fn example(name: &str) -> String {
    let path = format!("{}/examples/programs/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn penguin_carries_exactly_the_fig1_shadow_warning() {
    let diags = lint(&example("penguin.olp"));
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.code, Code::AlwaysOverruled);
    assert_eq!(d.severity, Severity::Warn);
    let pos = d.pos.expect("span recorded");
    assert_eq!((pos.line, pos.col), (5, 5));
    assert!(d.message.contains("ground_animal(penguin)"));
}

#[test]
fn loan_and_p5_lint_clean() {
    for name in ["loan.olp", "p5.olp"] {
        let diags = lint(&example(name));
        assert!(diags.is_empty(), "{name} should be clean, got {diags:?}");
    }
}

#[test]
fn every_shipped_example_is_error_free() {
    // New examples may ship with intentional warnings (like penguin),
    // but never with analyzer *errors* — those mean the program has no
    // well-defined semantics.
    let dir = format!("{}/examples/programs", env!("CARGO_MANIFEST_DIR"));
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("examples dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "olp") {
            continue;
        }
        seen += 1;
        let src = std::fs::read_to_string(&path).expect("read example");
        let diags = lint(&src);
        assert!(
            diags.iter().all(|d| d.severity < Severity::Error),
            "{} has analyzer errors: {diags:?}",
            path.display()
        );
    }
    assert!(seen >= 3, "expected the three shipped examples, saw {seen}");
}

/// Extracts the bodies of ```prolog fenced blocks from markdown.
fn prolog_snippets(md: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut block: Option<String> = None;
    for line in md.lines() {
        match &mut block {
            None if line.trim_start().starts_with("```prolog") => block = Some(String::new()),
            None => {}
            Some(b) => {
                if line.trim_start().starts_with("```") {
                    out.push(block.take().unwrap());
                } else {
                    b.push_str(line);
                    b.push('\n');
                }
            }
        }
    }
    out
}

#[test]
fn tutorial_snippets_parse_and_lint_without_errors() {
    let md = std::fs::read_to_string(format!("{}/docs/TUTORIAL.md", env!("CARGO_MANIFEST_DIR")))
        .expect("tutorial exists");
    let snippets = prolog_snippets(&md);
    assert!(
        snippets.len() >= 4,
        "tutorial should keep its prolog examples, found {}",
        snippets.len()
    );
    let mut parsed = 0;
    for (i, snip) in snippets.iter().enumerate() {
        let mut world = World::new();
        // Some snippets are deliberately elided fragments; those may
        // fail to parse, but anything that parses must lint error-free.
        let Ok(prog) = parse_program(&mut world, snip) else {
            continue;
        };
        parsed += 1;
        let diags = analyze(&world, &prog);
        assert!(
            diags.iter().all(|d| d.severity < Severity::Error),
            "tutorial snippet #{i} has analyzer errors: {diags:?}"
        );
    }
    assert!(
        parsed >= 3,
        "most tutorial snippets are complete programs, parsed {parsed}"
    );
}

#[test]
fn tutorial_checking_section_documents_every_code() {
    // The tutorial's "Checking your program" section and the analyzer
    // must agree on the code inventory.
    let md = std::fs::read_to_string(format!("{}/docs/ANALYSIS.md", env!("CARGO_MANIFEST_DIR")))
        .expect("docs/ANALYSIS.md exists");
    for code in ordered_logic::analyze::ALL_CODES {
        assert!(
            md.contains(code.as_str()),
            "docs/ANALYSIS.md is missing {}",
            code.as_str()
        );
    }
}
