//! Golden lint results for the shipped corpus: every `.olp` example and
//! every `prolog` snippet in the tutorial goes through the analyzer.
//!
//! `penguin.olp` intentionally contains the Fig. 1 shadowed rule (the
//! analyzer's W05 showcase); everything else ships lint-clean, and CI
//! enforces exactly that split with `olp check --deny warnings`.

use ordered_logic::analyze::{analyze, Code, Diagnostic, Severity};
use ordered_logic::prelude::*;

fn lint(src: &str) -> Vec<Diagnostic> {
    let mut world = World::new();
    let prog = parse_program(&mut world, src).expect("corpus program parses");
    analyze(&world, &prog)
}

fn example(name: &str) -> String {
    let path = format!("{}/examples/programs/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn penguin_carries_exactly_the_fig1_shadow_warning() {
    let diags = lint(&example("penguin.olp"));
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = &diags[0];
    assert_eq!(d.code, Code::AlwaysOverruled);
    assert_eq!(d.severity, Severity::Warn);
    let pos = d.pos.expect("span recorded");
    assert_eq!((pos.line, pos.col), (5, 5));
    assert!(d.message.contains("ground_animal(penguin)"));
}

#[test]
fn loan_and_p5_lint_clean() {
    // Clean of warnings — profile notes (Info) are expected: loan's
    // import-only edges are W10, p5's choice cycle is W09.
    for name in ["loan.olp", "p5.olp"] {
        let diags = lint(&example(name));
        assert!(
            diags.iter().all(|d| d.severity < Severity::Warn),
            "{name} should be warning-clean, got {diags:?}"
        );
    }
    let p5 = lint(&example("p5.olp"));
    assert!(
        p5.iter().any(|d| d.code == Code::UnstratifiedView),
        "p5 is a choice program; expected W09, got {p5:?}"
    );
    let loan = lint(&example("loan.olp"));
    assert_eq!(
        loan.iter()
            .filter(|d| d.code == Code::InertOrderEdge)
            .count(),
        2,
        "loan's myself<expert2 and myself<expert3 edges only import rules: {loan:?}"
    );
}

#[test]
fn every_shipped_example_is_error_free() {
    // New examples may ship with intentional warnings (like penguin),
    // but never with analyzer *errors* — those mean the program has no
    // well-defined semantics.
    let dir = format!("{}/examples/programs", env!("CARGO_MANIFEST_DIR"));
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("examples dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "olp") {
            continue;
        }
        seen += 1;
        let src = std::fs::read_to_string(&path).expect("read example");
        let diags = lint(&src);
        assert!(
            diags.iter().all(|d| d.severity < Severity::Error),
            "{} has analyzer errors: {diags:?}",
            path.display()
        );
    }
    assert!(seen >= 3, "expected the three shipped examples, saw {seen}");
}

/// Extracts the bodies of ```prolog fenced blocks from markdown.
fn prolog_snippets(md: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut block: Option<String> = None;
    for line in md.lines() {
        match &mut block {
            None if line.trim_start().starts_with("```prolog") => block = Some(String::new()),
            None => {}
            Some(b) => {
                if line.trim_start().starts_with("```") {
                    out.push(block.take().unwrap());
                } else {
                    b.push_str(line);
                    b.push('\n');
                }
            }
        }
    }
    out
}

#[test]
fn tutorial_snippets_parse_and_lint_without_errors() {
    let md = std::fs::read_to_string(format!("{}/docs/TUTORIAL.md", env!("CARGO_MANIFEST_DIR")))
        .expect("tutorial exists");
    let snippets = prolog_snippets(&md);
    assert!(
        snippets.len() >= 4,
        "tutorial should keep its prolog examples, found {}",
        snippets.len()
    );
    let mut parsed = 0;
    for (i, snip) in snippets.iter().enumerate() {
        let mut world = World::new();
        // Some snippets are deliberately elided fragments; those may
        // fail to parse, but anything that parses must lint error-free.
        let Ok(prog) = parse_program(&mut world, snip) else {
            continue;
        };
        parsed += 1;
        let diags = analyze(&world, &prog);
        assert!(
            diags.iter().all(|d| d.severity < Severity::Error),
            "tutorial snippet #{i} has analyzer errors: {diags:?}"
        );
    }
    assert!(
        parsed >= 3,
        "most tutorial snippets are complete programs, parsed {parsed}"
    );
}

// ---- JSON round-trip over the golden corpus ---------------------------

use ordered_logic::analyze::to_json_array;
use ordered_logic::server::json::Json;

/// Decodes `to_json_array` output with the server's strict JSON parser
/// and checks every field against the original diagnostics. This is
/// the single-escape proof: any double-escaping (or raw control byte)
/// either fails to parse or fails the byte-for-byte field comparison.
fn assert_round_trips(diags: &[Diagnostic], file: &str) {
    let rendered = to_json_array(diags, file);
    let parsed = Json::parse(&rendered)
        .unwrap_or_else(|e| panic!("emitted JSON does not re-parse ({e}): {rendered}"));
    let Json::Arr(items) = parsed else {
        panic!("expected a JSON array, got {rendered}");
    };
    assert_eq!(items.len(), diags.len());
    for (d, j) in diags.iter().zip(&items) {
        assert_eq!(j.get("file").and_then(Json::as_str), Some(file));
        assert_eq!(
            j.get("code").and_then(Json::as_str),
            Some(d.code.as_str()),
            "in {rendered}"
        );
        assert_eq!(j.get("name").and_then(Json::as_str), Some(d.code.name()));
        assert_eq!(
            j.get("severity").and_then(Json::as_str),
            Some(d.severity.label())
        );
        assert_eq!(
            j.get("message").and_then(Json::as_str),
            Some(d.message.as_str()),
            "message must decode to the exact original in {rendered}"
        );
        match d.pos {
            Some(p) => {
                assert_eq!(j.get("line"), Some(&Json::Int(i64::from(p.line))));
                assert_eq!(j.get("col"), Some(&Json::Int(i64::from(p.col))));
            }
            None => assert_eq!(j.get("line"), None),
        }
    }
}

#[test]
fn check_json_round_trips_over_the_golden_corpus() {
    let dir = format!("{}/examples/programs", env!("CARGO_MANIFEST_DIR"));
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("examples dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "olp") {
            continue;
        }
        seen += 1;
        let src = std::fs::read_to_string(&path).expect("read example");
        let diags = lint(&src);
        assert_round_trips(&diags, &path.display().to_string());
    }
    assert!(seen >= 3, "expected the shipped examples, saw {seen}");
}

#[test]
fn check_json_escapes_control_characters_exactly_once() {
    // Adversarial messages and file names: quotes, backslashes, and
    // every class the escaper treats specially, including raw control
    // characters. The decoded string must equal the input — escaping
    // a sequence twice (control byte → `\\u0001` → `\\\\u0001`) would fail
    // the comparison inside `assert_round_trips`.
    let nasty = "quote \" backslash \\ newline \n tab \t cr \r bell \u{0007} del \u{0001}";
    let diags = vec![
        Diagnostic::new(Code::ParseError, nasty)
            .at(Some(ordered_logic::core::Pos { line: 3, col: 9 })),
        Diagnostic::new(Code::DeadRule, "plain"),
    ];
    assert_round_trips(&diags, "dir/we\tird\" name.olp");
}

#[test]
fn parse_errors_display_escape_control_characters_once() {
    // The lexer escapes unprintable input for display exactly once;
    // the JSON layer must quote that text without re-escaping it.
    let mut world = World::new();
    let err =
        parse_program(&mut world, "p :- \u{0001}q.\n").expect_err("control char is a lex error");
    assert_eq!(err.msg, "unexpected character `\\u{1}`");
    let d = Diagnostic::new(Code::ParseError, err.msg.clone());
    let rendered = to_json_array(std::slice::from_ref(&d), "ctl.olp");
    // Exactly one JSON escape of the backslash, and no raw control
    // bytes beyond the array's own line breaks.
    assert!(
        rendered.contains(r"unexpected character `\\u{1}`"),
        "{rendered}"
    );
    assert!(
        rendered.bytes().all(|b| b >= 0x20 || b == b'\n'),
        "{rendered}"
    );
    assert_round_trips(std::slice::from_ref(&d), "ctl.olp");
}

#[test]
fn tutorial_checking_section_documents_every_code() {
    // The tutorial's "Checking your program" section and the analyzer
    // must agree on the code inventory.
    let md = std::fs::read_to_string(format!("{}/docs/ANALYSIS.md", env!("CARGO_MANIFEST_DIR")))
        .expect("docs/ANALYSIS.md exists");
    for code in ordered_logic::analyze::ALL_CODES {
        assert!(
            md.contains(code.as_str()),
            "docs/ANALYSIS.md is missing {}",
            code.as_str()
        );
    }
}
