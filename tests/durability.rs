//! Crash-injection and corruption tests for the durable KB layer.
//!
//! The harness drives the hidden `olp crash-worker` subcommand — which
//! applies the deterministic [`olp_workload::mutation_stream`] workload
//! against a database, one durably-logged op at a time — and `kill -9`s
//! it at random points (after a random number of committed ops, or
//! after a random wall-clock delay, so kills also land mid-write and
//! mid-compaction). After each crash the worker is restarted; it must
//! recover the database and resume from the logged sequence number.
//! Once the stream completes, the recovered KB's least and stable
//! models must be identical to a survivor that applied the same stream
//! in-process without ever crashing.
//!
//! Corruption tests flip bytes in the snapshot (must be *rejected*,
//! never silently loaded) and append garbage to the WAL (must be
//! *truncated* at the last valid record, with the prefix replayed).

use ordered_logic::kb::{Durability, DurableKb, GroundStrategy, Kb, KbBuilder};
use ordered_logic::store::{SNAPSHOT_FILE, WAL_FILE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Stream seed shared by workers and survivors. Changing it reshapes
/// every test deterministically.
const SEED: u64 = 0xC0FFEE;

fn scratch_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("olp_durability_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn spawn_worker(dir: &Path, n_ops: usize) -> Child {
    Command::new(env!("CARGO_BIN_EXE_olp"))
        .args([
            "crash-worker",
            dir.to_str().unwrap(),
            &SEED.to_string(),
            &n_ops.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("worker spawns")
}

/// The survivor: the same base program and op stream applied in-process
/// with no crashes and no persistence.
fn survivor(n_ops: usize) -> Kb {
    let cfg = olp_workload::MutationCfg {
        n_mutations: n_ops,
        ..olp_workload::MutationCfg::default()
    };
    let (base, ops) = olp_workload::mutation_stream(&cfg, SEED);
    let mut b = KbBuilder::new();
    b.rules("main", &base).unwrap();
    let mut kb = b.build(GroundStrategy::Smart).unwrap();
    for op in &ops {
        match op {
            olp_workload::Mutation::Assert { object, rule } => {
                kb.assert_rule(object, rule).unwrap()
            }
            olp_workload::Mutation::Retract { object, rule } => {
                assert!(kb.retract_rule(object, rule).unwrap());
            }
        }
    }
    kb
}

/// Least + stable models of `main`, rendered (the comparison key for
/// "identical models").
fn models_key(kb: &mut Kb) -> (String, Vec<String>) {
    let least = kb.model("main").unwrap().clone();
    let least = kb.render(&least);
    let stable = kb.stable("main").unwrap();
    let stable: Vec<String> = stable.iter().map(|m| kb.render(m)).collect();
    (least, stable)
}

/// Runs the worker to completion, killing it with SIGKILL at random
/// points. Returns the number of crashes injected.
fn run_with_crashes(dir: &Path, n_ops: usize, rng: &mut StdRng, deadline: Instant) -> usize {
    let mut crashes = 0;
    loop {
        assert!(
            Instant::now() < deadline,
            "crash harness did not converge ({crashes} crashes in the budget)"
        );
        let mut child = spawn_worker(dir, n_ops);
        let stdout = BufReader::new(child.stdout.take().unwrap());
        // Alternate kill strategies: after K committed ops (lands
        // between ops) or after D ms (lands anywhere, including inside
        // fsync, snapshot encode, and the WAL reset of a compaction).
        let by_time = rng.gen_bool(0.5);
        let kill_after_ops = rng.gen_range(1u32..24);
        let kill_after = Duration::from_millis(rng.gen_range(2u64..80));
        let started = Instant::now();
        let mut applied_this_run = 0u32;
        let mut done = false;
        for line in stdout.lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => break, // killed mid-write of a line
            };
            if line.starts_with("done ") {
                done = true;
                break;
            }
            if line.starts_with("applied ") {
                applied_this_run += 1;
            }
            let fire = if by_time {
                started.elapsed() >= kill_after
            } else {
                applied_this_run >= kill_after_ops
            };
            if fire {
                child.kill().expect("SIGKILL delivered");
                crashes += 1;
                break;
            }
        }
        let status = child.wait().expect("worker reaped");
        if done {
            assert!(status.success(), "worker reported done but failed");
            return crashes;
        }
        // A worker that exited non-zero without being killed hit a
        // real error (e.g. failed recovery): that is a test failure.
        assert!(
            status.code().is_none() || !status.success(),
            "worker exited 0 without reporting done"
        );
        if let Some(code) = status.code() {
            panic!("worker failed with exit code {code} instead of crashing or finishing");
        }
    }
}

#[test]
fn kill9_anywhere_in_a_220_op_stream_recovers_identical_models() {
    let n_ops = 220;
    let dir = scratch_dir("crash");
    let mut rng = StdRng::seed_from_u64(SEED ^ 1);
    let deadline = Instant::now() + Duration::from_secs(300);
    let crashes = run_with_crashes(&dir, n_ops, &mut rng, deadline);
    // The workload is sized so several crashes land in the stream;
    // with none injected the test degenerates to a plain run.
    assert!(
        crashes >= 3,
        "only {crashes} crashes injected; kill windows too narrow"
    );

    let (mut recovered, report) = DurableKb::open(&dir, Durability::OnCommit).unwrap();
    assert_eq!(
        recovered.seq(),
        n_ops as u64,
        "every op durably applied exactly once"
    );
    let recovered_key = models_key(recovered.kb_mut());
    let mut surv = survivor(n_ops);
    assert_eq!(
        recovered_key,
        models_key(&mut surv),
        "recovered KB (after {crashes} crashes, {} replayed on final open) diverged from survivor",
        report.replayed
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_snapshot_is_rejected_not_loaded() {
    let n_ops = 24;
    let dir = scratch_dir("bitflip");
    // A clean run; compaction inside the worker leaves a non-trivial
    // snapshot behind.
    let mut child = spawn_worker(&dir, n_ops);
    assert!(child.wait().unwrap().success());

    let snap_path = dir.join(SNAPSHOT_FILE);
    let pristine = std::fs::read(&snap_path).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED ^ 2);
    for _ in 0..32 {
        let mut bytes = pristine.clone();
        let pos = rng.gen_range(0..bytes.len());
        let flip: u8 = rng.gen_range(1u8..=255);
        bytes[pos] ^= flip;
        std::fs::write(&snap_path, &bytes).unwrap();
        let err = DurableKb::open(&dir, Durability::OnCommit)
            .err()
            .unwrap_or_else(|| panic!("flip of byte {pos} loaded silently"));
        let msg = err.to_string();
        assert!(
            msg.contains("snapshot.olps"),
            "error does not name the corrupt file: {msg}"
        );
    }
    // Restoring the pristine bytes restores the database.
    std::fs::write(&snap_path, &pristine).unwrap();
    let (d, _) = DurableKb::open(&dir, Durability::OnCommit).unwrap();
    assert_eq!(d.seq(), n_ops as u64);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_wal_tail_is_truncated_and_the_stream_resumes() {
    let n_ops = 40;
    let dir = scratch_dir("torn");
    let mut child = spawn_worker(&dir, n_ops);
    assert!(child.wait().unwrap().success());

    // Simulate a torn append: garbage past the last valid record.
    let wal_path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x42]);
    std::fs::write(&wal_path, &bytes).unwrap();

    let (mut recovered, report) = DurableKb::open(&dir, Durability::OnCommit).unwrap();
    assert_eq!(
        report.wal_dropped_bytes, 5,
        "exactly the garbage tail is dropped"
    );
    assert!(report.wal_torn.is_some());
    assert_eq!(recovered.seq(), n_ops as u64);
    let recovered_key = models_key(recovered.kb_mut());
    drop(recovered);
    assert_eq!(recovered_key, models_key(&mut survivor(n_ops)));

    // The worker reopens the (repaired-on-open) database and agrees
    // there is nothing left to do.
    let mut child = spawn_worker(&dir, n_ops);
    assert!(child.wait().unwrap().success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_replay_is_deterministic_byte_identical_stores() {
    // The same op stream, applied through two independent durable KBs,
    // must produce byte-identical snapshots: replay determinism at the
    // store level.
    let n_ops = 60;
    let cfg = olp_workload::MutationCfg {
        n_mutations: n_ops,
        ..olp_workload::MutationCfg::default()
    };
    let (base, ops) = olp_workload::mutation_stream(&cfg, SEED ^ 3);
    let dirs = [scratch_dir("det_a"), scratch_dir("det_b")];
    let mut snapshots = Vec::new();
    for dir in &dirs {
        let mut b = KbBuilder::new();
        b.rules("main", &base).unwrap();
        let kb = b.build(GroundStrategy::Smart).unwrap();
        let mut d = DurableKb::create(dir, kb, Durability::Off).unwrap();
        for op in &ops {
            match op {
                olp_workload::Mutation::Assert { object, rule } => {
                    d.assert_rule(object, rule).unwrap()
                }
                olp_workload::Mutation::Retract { object, rule } => {
                    assert!(d.retract_rule(object, rule).unwrap());
                }
            }
        }
        d.save().unwrap();
        snapshots.push(std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap());
        std::fs::remove_dir_all(dir).ok();
    }
    assert_eq!(
        snapshots[0], snapshots[1],
        "same op stream produced different store states"
    );
}
