//! Realistic knowledge-base scenarios exercising the full stack through
//! the `olp-kb` API — the §1/§5 application claims of the paper, as
//! integration tests: default-deny security policy, role hierarchies
//! with revocations, and configuration versioning.

use ordered_logic::prelude::*;

/// Firewall policy: default deny, service allows, incident lockdown.
/// Policy layers are modules; more specific layers overrule.
#[test]
fn firewall_default_deny_with_overrides() {
    let mut b = KbBuilder::new();

    // Base layer: the inventory, the default-deny stance, and the
    // closed-world default for `compromised` (defaults live *above*
    // the layers whose facts override them — see docs/TUTORIAL.md §4).
    b.rules(
        "base",
        "host(web1). host(web2). host(db1). host(bastion).
         port(p22). port(p80). port(p443). port(p5432).
         -allow(H, P) :- host(H), port(P).
         -compromised(H) :- host(H).",
    )
    .unwrap();

    // Service layer (more specific): open the service ports.
    b.isa("services", "base");
    b.rules(
        "services",
        "webserver(web1). webserver(web2).
         allow(H, p80) :- webserver(H).
         allow(H, p443) :- webserver(H).
         allow(db1, p5432).
         allow(bastion, p22).",
    )
    .unwrap();

    // Incident layer (most specific): lock down web2 entirely.
    b.isa("incident", "services");
    b.rules(
        "incident",
        "compromised(web2).
         -allow(H, P) :- compromised(H), port(P).",
    )
    .unwrap();

    let mut kb = b.build(GroundStrategy::Smart).unwrap();

    // From the service layer: web traffic is open, everything else shut.
    assert_eq!(
        kb.truth("services", "allow(web1, p80)").unwrap(),
        Truth::True
    );
    assert_eq!(
        kb.truth("services", "allow(web1, p22)").unwrap(),
        Truth::False
    );
    assert_eq!(
        kb.truth("services", "allow(db1, p5432)").unwrap(),
        Truth::True
    );
    assert_eq!(
        kb.truth("services", "allow(web2, p443)").unwrap(),
        Truth::True
    );

    // From the incident layer: web2 is fully locked down, web1 intact.
    assert_eq!(
        kb.truth("incident", "allow(web2, p443)").unwrap(),
        Truth::False
    );
    assert_eq!(
        kb.truth("incident", "allow(web2, p80)").unwrap(),
        Truth::False
    );
    assert_eq!(
        kb.truth("incident", "allow(web1, p80)").unwrap(),
        Truth::True
    );

    // The whole allow surface from the incident view: exactly 4 grants.
    let grants = kb.query("incident", "allow(H, P)").unwrap();
    assert_eq!(
        grants,
        vec![
            "H=bastion, P=p22",
            "H=db1, P=p5432",
            "H=web1, P=p443",
            "H=web1, P=p80",
        ]
    );

    // Explanations point at the responsible layer.
    let why = kb.explain("incident", "allow(web2, p80)").unwrap();
    assert!(why.contains("overruled"), "{why}");
    assert!(why.contains("compromised(web2)"), "{why}");
}

/// Role hierarchy: employee < manager grants flow down; a targeted
/// revocation from an incomparable compliance module defeats rather
/// than silently losing.
#[test]
fn roles_grants_and_conflicting_revocation() {
    let mut b = KbBuilder::new();
    // Defaults above, facts below: the `manager(alice)` fact overrules
    // the non-manager default instead of defeating it.
    b.rules("defaults", "-manager(X) :- employee(X).").unwrap();
    b.isa("org", "defaults");
    b.rules(
        "org",
        "employee(alice). employee(bob). manager(alice).
         doc(handbook). doc(payroll).",
    )
    .unwrap();
    // HR policy and compliance policy are peers (incomparable).
    b.isa("hr", "org");
    b.rules(
        "hr",
        "read(X, handbook) :- employee(X).
         read(X, payroll) :- manager(X).",
    )
    .unwrap();
    b.isa("compliance", "org");
    b.rules("compliance", "-read(alice, payroll).").unwrap();
    // The access decision point sees both.
    b.isa("pdp", "hr");
    b.isa("pdp", "compliance");
    let mut kb = b.build(GroundStrategy::Smart).unwrap();

    // Uncontested grants flow through.
    assert_eq!(kb.truth("pdp", "read(bob, handbook)").unwrap(), Truth::True);
    assert_eq!(
        kb.truth("pdp", "read(alice, handbook)").unwrap(),
        Truth::True
    );
    // HR grants alice payroll; compliance revokes: incomparable modules
    // defeat — the PDP reports *undefined*, i.e. "needs escalation",
    // rather than picking a winner.
    assert_eq!(
        kb.truth("pdp", "read(alice, payroll)").unwrap(),
        Truth::Undefined
    );
    // Each policy module still holds its own opinion.
    assert_eq!(kb.truth("hr", "read(alice, payroll)").unwrap(), Truth::True);
    assert_eq!(
        kb.truth("compliance", "read(alice, payroll)").unwrap(),
        Truth::False
    );
    // The manager default was overruled for alice by the explicit fact
    // in the strictly-lower org module.
    assert_eq!(kb.truth("pdp", "manager(alice)").unwrap(), Truth::True);
    // bob is not a manager (the default fires unopposed).
    assert_eq!(kb.truth("pdp", "manager(bob)").unwrap(), Truth::False);
}

/// The same role KB with the CWA default moved *above* the facts: the
/// textbook fix for the same-module defeat in the previous scenario.
#[test]
fn roles_with_layered_cwa_resolve_cleanly() {
    let mut b = KbBuilder::new();
    b.rules("defaults", "-manager(X) :- employee(X).").unwrap();
    b.isa("org", "defaults");
    b.rules("org", "employee(alice). employee(bob). manager(alice).")
        .unwrap();
    let mut kb = b.build(GroundStrategy::Smart).unwrap();
    assert_eq!(kb.truth("org", "manager(alice)").unwrap(), Truth::True);
    assert_eq!(kb.truth("org", "manager(bob)").unwrap(), Truth::False);
}

/// Configuration versioning: each release is a module below its
/// predecessor; queries against any version answer from its own era.
#[test]
fn config_versioning_chain() {
    let mut b = KbBuilder::new();
    b.rules(
        "v1",
        "setting(timeout, 30). setting(retries, 3). feature(dark_mode).",
    )
    .unwrap();
    b.version_of("v2", "v1");
    b.rules("v2", "-setting(timeout, 30). setting(timeout, 60).")
        .unwrap();
    b.version_of("v3", "v2");
    b.rules(
        "v3",
        "-feature(dark_mode).
         feature(themes).
         -setting(retries, 3). setting(retries, 5).",
    )
    .unwrap();
    let mut kb = b.build(GroundStrategy::Smart).unwrap();

    // v1 semantics untouched by later versions.
    assert_eq!(kb.truth("v1", "setting(timeout, 30)").unwrap(), Truth::True);
    assert_eq!(kb.truth("v1", "feature(dark_mode)").unwrap(), Truth::True);
    // v2 overrides timeout only.
    assert_eq!(
        kb.truth("v2", "setting(timeout, 30)").unwrap(),
        Truth::False
    );
    assert_eq!(kb.truth("v2", "setting(timeout, 60)").unwrap(), Truth::True);
    assert_eq!(kb.truth("v2", "setting(retries, 3)").unwrap(), Truth::True);
    // v3 sees the whole chain with its own overrides.
    assert_eq!(kb.truth("v3", "setting(timeout, 60)").unwrap(), Truth::True);
    assert_eq!(kb.truth("v3", "setting(retries, 5)").unwrap(), Truth::True);
    assert_eq!(kb.truth("v3", "setting(retries, 3)").unwrap(), Truth::False);
    assert_eq!(kb.truth("v3", "feature(dark_mode)").unwrap(), Truth::False);
    assert_eq!(kb.truth("v3", "feature(themes)").unwrap(), Truth::True);

    // Hotfix flow: assert into v3 live.
    kb.assert_rule("v3", "setting(timeout, 90).").unwrap();
    kb.assert_rule("v3", "-setting(timeout, 60).").unwrap();
    assert_eq!(kb.truth("v3", "setting(timeout, 90)").unwrap(), Truth::True);
    assert_eq!(
        kb.truth("v3", "setting(timeout, 60)").unwrap(),
        Truth::False
    );
    // v2 untouched by the v3 hotfix.
    assert_eq!(kb.truth("v2", "setting(timeout, 60)").unwrap(), Truth::True);
}

/// Both grounding strategies agree on a non-trivial KB.
#[test]
fn strategies_agree_on_firewall() {
    let build = |strategy| {
        let mut b = KbBuilder::new();
        b.rules(
            "base",
            "host(w). host(d). port(p1). port(p2).
             -allow(H, P) :- host(H), port(P).",
        )
        .unwrap();
        b.isa("svc", "base");
        b.rules("svc", "allow(w, p1).").unwrap();
        b.build(strategy).unwrap()
    };
    let mut smart = build(GroundStrategy::Smart);
    let mut exhaustive = build(GroundStrategy::Exhaustive);
    for q in ["allow(w, p1)", "allow(w, p2)", "allow(d, p1)"] {
        assert_eq!(
            smart.truth("svc", q).unwrap(),
            exhaustive.truth("svc", q).unwrap(),
            "{q}"
        );
    }
}
