//! Differential fuzzing for analysis-guided fast paths.
//!
//! The `ProgramProfile` lets the KB skip machinery the analysis proved
//! unnecessary: definite (negation-free) components run the flat
//! fixpoint without blocked/overruled bookkeeping, and provably
//! single-model components answer `stable`/`skeptical` from the least
//! model without enumeration. None of that may ever change an answer:
//! this harness runs random ordered programs through random mutation
//! streams twice — once profile-guided (the default) and once with the
//! guidance disabled, i.e. the general engine — and demands
//! byte-identical renderings of the least model, the stable-model set,
//! and the skeptical consequences of every component after every step,
//! at 1 and 4 worker threads.
//!
//! A second property pins the cache: after any mutation stream, the
//! per-epoch cached profile must equal a from-scratch analysis of the
//! mutated program.
//!
//! Run with `PROPTEST_CASES=256` for the deep nightly configuration.

use olp_workload::{random_ordered, RandomCfg};
use ordered_logic::core::CompId;
use ordered_logic::prelude::*;
use proptest::prelude::*;

const N_ATOMS: usize = 6;
const N_COMPONENTS: usize = 3;

/// Same base distribution as `tests/incremental.rs`: small enough to
/// enumerate, contested enough that some components are unstratified
/// (multi-model) and some collapse to a single model — both sides of
/// every fast-path gate get exercised.
fn base_cfg() -> RandomCfg {
    RandomCfg {
        n_atoms: N_ATOMS,
        n_rules: 10,
        max_body: 3,
        neg_head_prob: 0.3,
        neg_body_prob: 0.4,
        n_components: N_COMPONENTS,
        edge_prob: 0.5,
    }
}

fn build_kb(seed: u64, guided: bool, threads: usize) -> Kb {
    let mut world = World::new();
    let prog = random_ordered(&mut world, &base_cfg(), seed);
    let mut kb = KbBuilder::from_parts(world, prog)
        .build_with(GroundStrategy::Smart, &GroundConfig::default())
        .expect("propositional programs always ground");
    kb.set_profile_guided(guided);
    kb.set_threads(threads);
    kb
}

/// One random propositional mutation (component, assert?, rule text).
fn mutation() -> impl Strategy<Value = (usize, bool, String)> {
    (
        0..N_COMPONENTS,
        any::<bool>(),
        (
            any::<bool>(),
            0..N_ATOMS,
            proptest::collection::vec((any::<bool>(), 0..N_ATOMS), 0..3),
        ),
    )
        .prop_map(|(comp, is_assert, (head_pos, head, body))| {
            let lit = |pos: bool, a: usize| format!("{}p{a}", if pos { "" } else { "-" });
            let head = lit(head_pos, head);
            let rule = if body.is_empty() {
                format!("{head}.")
            } else {
                let body: Vec<String> = body.iter().map(|&(s, a)| lit(s, a)).collect();
                format!("{head} :- {}.", body.join(", "))
            };
            (comp, is_assert, rule)
        })
}

fn render_model(kb: &mut Kb, obj: &str) -> String {
    let m = kb.model(obj).expect("known object").clone();
    kb.render(&m)
}

fn render_stable(kb: &mut Kb, obj: &str) -> Vec<String> {
    let mut v: Vec<String> = kb
        .stable(obj)
        .expect("known object")
        .iter()
        .map(|m| kb.render(m))
        .collect();
    v.sort();
    v
}

fn render_skeptical(kb: &mut Kb, obj: &str) -> String {
    let m = kb.skeptical(obj).expect("known object");
    kb.render(&m)
}

fn apply(kb: &mut Kb, obj: &str, is_assert: bool, rule: &str) -> bool {
    if is_assert {
        kb.assert_rule(obj, rule).expect("assert grounds");
        true
    } else {
        kb.retract_rule(obj, rule).expect("retract grounds")
    }
}

proptest! {
    /// Analysis-guided evaluation is byte-identical to the general
    /// engine across random programs, mutation streams, semantics, and
    /// thread counts.
    #[test]
    fn profile_fastpath_matches_general(
        seed in 0u64..300,
        steps in proptest::collection::vec(mutation(), 1..6),
    ) {
        for threads in [1usize, 4] {
            let mut guided = build_kb(seed, true, threads);
            let mut general = build_kb(seed, false, threads);
            prop_assert!(guided.profile_guided());
            prop_assert!(!general.profile_guided());
            for (step, (comp, is_assert, rule)) in steps.iter().enumerate() {
                let obj = format!("c{comp}");
                let a = apply(&mut guided, &obj, *is_assert, rule);
                let b = apply(&mut general, &obj, *is_assert, rule);
                prop_assert_eq!(a, b, "retract hit/miss diverged at step {}", step);
                for c in 0..N_COMPONENTS {
                    let obj = format!("c{c}");
                    prop_assert_eq!(
                        render_model(&mut guided, &obj),
                        render_model(&mut general, &obj),
                        "least models diverged in {} after step {} ({} into c{}, {} threads)",
                        obj, step, rule, comp, threads
                    );
                    prop_assert_eq!(
                        render_stable(&mut guided, &obj),
                        render_stable(&mut general, &obj),
                        "stable sets diverged in {} after step {} ({} threads)",
                        obj, step, threads
                    );
                    prop_assert_eq!(
                        render_skeptical(&mut guided, &obj),
                        render_skeptical(&mut general, &obj),
                        "skeptical sets diverged in {} after step {} ({} threads)",
                        obj, step, threads
                    );
                }
            }
        }
    }

    /// The per-epoch profile cache revalidates correctly: after any
    /// mutation stream, the cached profile of every component equals a
    /// from-scratch analysis of the mutated program.
    #[test]
    fn cached_profile_matches_scratch_analysis(
        seed in 0u64..300,
        steps in proptest::collection::vec(mutation(), 1..6),
    ) {
        let mut kb = build_kb(seed, true, 1);
        // Touch every profile up front so the mutation loop exercises
        // the stale-entry path, not just first computation.
        kb.warm_profiles();
        for (comp, is_assert, rule) in &steps {
            let obj = format!("c{comp}");
            apply(&mut kb, &obj, *is_assert, rule);
        }
        let order = kb.program().order().expect("order stays valid");
        for c in 0..N_COMPONENTS {
            let obj = format!("c{c}");
            let cached = kb
                .component_profile(&obj)
                .expect("known object")
                .expect("valid order");
            let fresh =
                ordered_logic::analyze::component_profile(kb.program(), &order, CompId(c as u32));
            prop_assert_eq!(
                &*cached, &fresh,
                "cached profile of {} diverged from scratch analysis", obj
            );
        }
    }
}
