//! Exhaustive-interleaving model checks for the two synchronization
//! protocols the engine actually relies on:
//!
//! 1. the morsel scheduler's publish/decrement handshake in
//!    `crates/semantics/src/flat_eval.rs` — a worker merges its local
//!    bits into the global set, then decrements each dependent's
//!    indegree with `AcqRel`; the worker that observes the decrement
//!    hit zero pushes the dependent, and the popping worker must see
//!    *every* predecessor's merge, not just the last decrementer's.
//!    The `stop`/interrupt-reason pair (reason slot written, then
//!    `stop.store(true, Release)`; workers poll with `Acquire`) is
//!    modeled alongside it.
//! 2. the server's publish cell in `crates/server/src/lib.rs` — the
//!    writer thread builds a snapshot and swaps the `Mutex<Arc<_>>`
//!    cell; readers clone under the lock and must observe both a
//!    monotone epoch and the snapshot contents that epoch promises.
//!
//! There is no loom in the vendored dependency set, so the checker is
//! hand-rolled: program state is a small `Clone + Hash` struct, each
//! thread is a program counter, and a DFS enumerates every interleaving
//! (memoized on full states, so the search is exhaustive and finite).
//! Weak memory is modeled with *views*: a bitmask of publication events
//! per thread. Plain writes only enter another thread's view through a
//! Release→Acquire edge on an atomic (or a mutex critical section);
//! `Relaxed` accesses move values but never views. A thread that reads
//! data whose publication event is missing from its view has observed
//! uninitialized/stale memory — the model reports it as a race.
//!
//! Every positive check is paired with a negative control: the same
//! protocol with the ordering deliberately weakened (`Relaxed`
//! decrement, `Relaxed` stop store, epoch published before the
//! snapshot is written) must make the checker report a violation.
//! That proves the search actually distinguishes the orderings and is
//! not vacuously green.

use std::collections::HashSet;
use std::hash::Hash;

/// DFS over every interleaving from `init`. `moves` lists the enabled
/// transitions of a state; `apply` executes one (returning `Err` on a
/// protocol violation); `at_end` checks terminal states (no enabled
/// moves). Returns the number of distinct states explored.
fn explore<S, M, FM, FA, FF>(init: S, moves: FM, apply: FA, at_end: FF) -> Result<usize, String>
where
    S: Clone + Eq + Hash,
    M: Clone,
    FM: Fn(&S) -> Vec<M>,
    FA: Fn(&S, &M) -> Result<S, String>,
    FF: Fn(&S) -> Result<(), String>,
{
    let mut visited: HashSet<S> = HashSet::new();
    visited.insert(init.clone());
    let mut stack = vec![init];
    while let Some(s) = stack.pop() {
        let ms = moves(&s);
        if ms.is_empty() {
            at_end(&s)?;
            continue;
        }
        for m in &ms {
            let next = apply(&s, m)?;
            if visited.insert(next.clone()) {
                stack.push(next);
            }
        }
    }
    Ok(visited.len())
}

/// An atomic location with an attached view: the set of publication
/// events released into it. `Relaxed` accesses touch `val` only.
#[derive(Clone, PartialEq, Eq, Hash)]
struct Cell {
    val: u32,
    view: u16,
}

impl Cell {
    fn new(val: u32) -> Self {
        Cell { val, view: 0 }
    }
}

// ---------------------------------------------------------------------
// Model 1: the morsel handshake.
//
// Dependency graph (a diamond with a tail — morsel 3 has TWO
// predecessors, which is the shape that distinguishes AcqRel from
// Relaxed: the last decrementer must hand over the other predecessor's
// merge, which it only holds if its own decrement acquired it):
//
//        m0
//       /  \
//      m1    m2
//       \  /
//        m3
//        |
//        m4
// ---------------------------------------------------------------------

const N_MORSELS: usize = 5;
const DEPENDENTS: [&[usize]; N_MORSELS] = [&[1, 2], &[3], &[3], &[4], &[]];
const PREDS: [&[usize]; N_MORSELS] = [&[], &[0], &[0], &[1, 2], &[3]];

fn merge_bit(m: usize) -> u16 {
    1 << m
}

/// One worker's program counter, mirroring the loop in
/// `least_model_morsel_definite`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Pc {
    /// Popping the queue / checking `remaining` for exit.
    Idle,
    /// Evaluating morsel `m`: reads the global set, merges local bits.
    Eval(usize),
    /// Decrementing `indegree[DEPENDENTS[m][i]]`.
    Dec(usize, usize),
    /// Decrementing `remaining`.
    DecRemaining,
    /// Returned.
    Exit,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct SchedState {
    indegree: Vec<Cell>,
    remaining: Cell,
    /// The injector + worker deques collapsed into one multiset; an
    /// entry carries the pusher's view (crossbeam's push→pop/steal
    /// edge is Release→Acquire, so a pop legitimately acquires it).
    queue: Vec<(usize, u16)>,
    pcs: Vec<Pc>,
    /// Per-thread views: which morsel merges this thread has observed.
    views: Vec<u16>,
    /// Ground truth, for the executed-exactly-once check.
    executed: u16,
}

#[derive(Clone)]
enum SchedMove {
    /// `Idle` thread pops queue index `idx`.
    Pop { tid: usize, idx: usize },
    /// Any other enabled step (or the empty-queue exit probe).
    Step { tid: usize },
}

fn sched_init(workers: usize) -> SchedState {
    let indegree: Vec<Cell> = PREDS
        .iter()
        .map(|p| Cell::new(u32::try_from(p.len()).unwrap()))
        .collect();
    let queue: Vec<(usize, u16)> = (0..N_MORSELS)
        .filter(|&m| PREDS[m].is_empty())
        .map(|m| (m, 0))
        .collect();
    SchedState {
        indegree,
        remaining: Cell::new(u32::try_from(N_MORSELS).unwrap()),
        queue,
        pcs: vec![Pc::Idle; workers],
        views: vec![0; workers],
        executed: 0,
    }
}

fn sched_moves(s: &SchedState) -> Vec<SchedMove> {
    let mut out = Vec::new();
    for (tid, pc) in s.pcs.iter().enumerate() {
        match pc {
            Pc::Idle => {
                if s.queue.is_empty() {
                    // Empty pop → fall through to the remaining check.
                    out.push(SchedMove::Step { tid });
                } else {
                    for idx in 0..s.queue.len() {
                        out.push(SchedMove::Pop { tid, idx });
                    }
                }
            }
            Pc::Exit => {}
            _ => out.push(SchedMove::Step { tid }),
        }
    }
    out
}

/// Executes one transition. `acqrel_dec` is the knob under test: when
/// false, the indegree decrement is modeled as `Relaxed` (value moves,
/// views don't) — the negative control.
fn sched_apply(s: &SchedState, mv: &SchedMove, acqrel_dec: bool) -> Result<SchedState, String> {
    let mut n = s.clone();
    match *mv {
        SchedMove::Pop { tid, idx } => {
            let (m, view) = n.queue.remove(idx);
            // Pop/steal acquires the push.
            n.views[tid] |= view;
            n.pcs[tid] = Pc::Eval(m);
        }
        SchedMove::Step { tid } => match s.pcs[tid] {
            Pc::Idle => {
                // Queue was empty: `remaining.load(Acquire)`.
                n.views[tid] |= s.remaining.view;
                if s.remaining.val == 0 {
                    n.pcs[tid] = Pc::Exit;
                }
            }
            Pc::Eval(m) => {
                let need: u16 = PREDS[m].iter().fold(0, |acc, &p| acc | merge_bit(p));
                if n.views[tid] & need != need {
                    return Err(format!(
                        "worker {tid} evaluated morsel {m} without every predecessor \
                         merge visible (view {:#07b}, need {need:#07b}) — it would read \
                         a global set missing derived literals",
                        n.views[tid]
                    ));
                }
                if n.executed & merge_bit(m) != 0 {
                    return Err(format!("morsel {m} executed twice"));
                }
                n.executed |= merge_bit(m);
                // The merge into the global set: a publication event,
                // in this thread's view from here on (program order).
                n.views[tid] |= merge_bit(m);
                n.pcs[tid] = if DEPENDENTS[m].is_empty() {
                    Pc::DecRemaining
                } else {
                    Pc::Dec(m, 0)
                };
            }
            Pc::Dec(m, i) => {
                let d = DEPENDENTS[m][i];
                if acqrel_dec {
                    // fetch_sub(1, AcqRel): acquire the views released
                    // by earlier decrementers, release ours.
                    n.views[tid] |= s.indegree[d].view;
                    n.indegree[d].view |= n.views[tid];
                } // Relaxed: the value moves, the views don't.
                n.indegree[d].val -= 1;
                if n.indegree[d].val == 0 {
                    n.queue.push((d, n.views[tid]));
                }
                n.pcs[tid] = if i + 1 < DEPENDENTS[m].len() {
                    Pc::Dec(m, i + 1)
                } else {
                    Pc::DecRemaining
                };
            }
            Pc::DecRemaining => {
                // Always AcqRel, as in the real scheduler.
                n.views[tid] |= s.remaining.view;
                n.remaining.view |= n.views[tid];
                n.remaining.val -= 1;
                n.pcs[tid] = Pc::Idle;
            }
            Pc::Exit => unreachable!("exited threads have no moves"),
        },
    }
    Ok(n)
}

fn sched_at_end(s: &SchedState) -> Result<(), String> {
    let all: u16 = (1 << N_MORSELS) - 1;
    if s.executed != all {
        return Err(format!(
            "scheduler terminated with morsels {:#07b} executed (want {all:#07b})",
            s.executed
        ));
    }
    if s.remaining.val != 0 || !s.queue.is_empty() {
        return Err(format!(
            "terminated with remaining={} and {} queued morsels",
            s.remaining.val,
            s.queue.len()
        ));
    }
    Ok(())
}

/// Every interleaving of two workers over the diamond graph runs every
/// morsel exactly once, and no worker ever evaluates a morsel without
/// all of its predecessors' merges visible — given the `AcqRel`
/// indegree decrement the real scheduler uses.
#[test]
fn morsel_handshake_is_race_free_under_acqrel() {
    for workers in [2, 3] {
        let states = explore(
            sched_init(workers),
            sched_moves,
            |s, m| sched_apply(s, m, true),
            sched_at_end,
        )
        .expect("no interleaving violates the handshake");
        println!("morsel model (AcqRel, {workers} workers): {states} states explored");
        assert!(states > 300, "model unexpectedly small: {states} states");
    }
}

/// Negative control: with the indegree decrement weakened to
/// `Relaxed`, some interleaving lets the last decrementer push a
/// morsel while holding only its *own* predecessor's merge — the
/// checker must find that schedule.
#[test]
fn morsel_handshake_relaxed_decrement_is_caught() {
    let err = explore(
        sched_init(2),
        sched_moves,
        |s, m| sched_apply(s, m, false),
        sched_at_end,
    )
    .expect_err("a Relaxed decrement must leak an unpublished merge");
    assert!(
        err.contains("without every predecessor merge visible"),
        "unexpected violation: {err}"
    );
}

// ---------------------------------------------------------------------
// Model 2: the stop/interrupt-reason pair. A failing worker stores the
// interrupt reason into the mutex slot, then raises `stop` with
// Release; pollers that observe `stop` with Acquire read the reason.
// ---------------------------------------------------------------------

#[derive(Clone, PartialEq, Eq, Hash)]
struct StopState {
    stop: Cell,
    /// pcs[0] is the failer (0 = write reason, 1 = raise stop);
    /// pcs[1..] are pollers (0 = polling, 1 = done).
    pcs: Vec<u8>,
    views: Vec<u16>,
}

const REASON_WRITTEN: u16 = 1;

fn stop_apply(s: &StopState, tid: usize, release_store: bool) -> Result<StopState, String> {
    let mut n = s.clone();
    if tid == 0 {
        match s.pcs[0] {
            0 => {
                n.views[0] |= REASON_WRITTEN;
                n.pcs[0] = 1;
            }
            _ => {
                n.stop.val = 1;
                if release_store {
                    n.stop.view |= n.views[0];
                }
                n.pcs[0] = 2;
            }
        }
    } else {
        // Poller observes stop == 1 (loads of 0 are no-op spins).
        n.views[tid] |= s.stop.view;
        if n.views[tid] & REASON_WRITTEN == 0 {
            return Err(format!(
                "poller {tid} acted on stop without the interrupt reason visible"
            ));
        }
        n.pcs[tid] = 1;
    }
    Ok(n)
}

fn stop_explore(release_store: bool) -> Result<usize, String> {
    let init = StopState {
        stop: Cell::new(0),
        pcs: vec![0, 0, 0],
        views: vec![0, 0, 0],
    };
    explore(
        init,
        |s: &StopState| {
            let mut out = Vec::new();
            if s.pcs[0] < 2 {
                out.push(0usize);
            }
            for tid in 1..s.pcs.len() {
                // A poller only takes a visible step once stop is up.
                if s.pcs[tid] == 0 && s.stop.val == 1 {
                    out.push(tid);
                }
            }
            out
        },
        |s, &tid| stop_apply(s, tid, release_store),
        |_| Ok(()),
    )
}

#[test]
fn stop_flag_publishes_interrupt_reason() {
    let states = stop_explore(true).expect("Release store publishes the reason");
    println!("stop model (Release): {states} states explored");
}

#[test]
fn stop_flag_relaxed_store_is_caught() {
    let err = stop_explore(false).expect_err("a Relaxed stop store must hide the reason");
    assert!(err.contains("without the interrupt reason"), "{err}");
}

// ---------------------------------------------------------------------
// Model 3: the server's publish cell. The writer builds snapshot
// contents for epoch e (a plain-memory event), then swaps the
// `Mutex<Arc<KbSnapshot>>` cell; readers clone under the same lock.
// The mutex critical section is an Acquire/Release pair, so a reader
// that sees epoch e must also see e's contents, and the epochs one
// reader observes can never go backwards.
// ---------------------------------------------------------------------

const N_EPOCHS: u8 = 3;

fn data_bit(epoch: u8) -> u16 {
    1 << epoch
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct PubState {
    /// The publish cell: (epoch, released view).
    cell: (u8, u16),
    /// Writer progress: (epoch being produced, step within it 0|1).
    writer: (u8, u8),
    /// The writer's view: snapshot contents it has produced so far.
    writer_view: u16,
    /// Per-reader (reads done, last epoch seen, view).
    readers: Vec<(u8, u8, u16)>,
}

/// `publish_first` swaps the writer's two per-epoch steps — the bug
/// where the new epoch number lands in the cell before the snapshot
/// contents it names exist.
fn pub_apply(s: &PubState, tid: usize, publish_first: bool) -> Result<PubState, String> {
    let mut n = s.clone();
    if tid == 0 {
        let (epoch, step) = s.writer;
        let writing = (step == 0) != publish_first;
        if writing {
            // Produce epoch `epoch`'s snapshot contents (plain memory).
            n.writer_view |= data_bit(epoch);
        } else {
            // Lock; swap the cell. The critical section is an
            // Acquire/Release pair: join views both ways.
            n.writer_view |= s.cell.1;
            n.cell = (epoch, s.cell.1 | n.writer_view);
        }
        n.writer = if step == 0 {
            (epoch, 1)
        } else {
            (epoch + 1, 0)
        };
    } else {
        let r = tid - 1;
        let (done, last, view) = s.readers[r];
        // Lock; clone the Arc: acquire the cell's released view.
        let view = view | s.cell.1;
        let e = s.cell.0;
        if e > 0 && view & data_bit(e) == 0 {
            return Err(format!(
                "reader {r} observed epoch {e} without its snapshot contents visible"
            ));
        }
        if e < last {
            return Err(format!("reader {r} saw epoch go backwards: {last} -> {e}"));
        }
        n.readers[r] = (done + 1, e, view);
    }
    Ok(n)
}

fn pub_explore(publish_first: bool) -> Result<usize, String> {
    let init = PubState {
        cell: (0, 0),
        writer: (1, 0),
        writer_view: 0,
        readers: vec![(0, 0, 0); 2],
    };
    explore(
        init,
        |s: &PubState| {
            let mut out = Vec::new();
            if s.writer.0 <= N_EPOCHS {
                out.push(0usize);
            }
            for (r, &(done, _, _)) in s.readers.iter().enumerate() {
                if done < 2 {
                    out.push(r + 1);
                }
            }
            out
        },
        |s, &tid| pub_apply(s, tid, publish_first),
        |_| Ok(()),
    )
}

#[test]
fn epoch_publish_is_monotone_and_complete() {
    let states = pub_explore(false).expect("mutex publish is race-free");
    println!("publish model: {states} states explored");
    assert!(states > 50, "model unexpectedly small: {states} states");
}

#[test]
fn epoch_published_before_contents_is_caught() {
    let err = pub_explore(true).expect_err("publishing the epoch before its contents must fail");
    assert!(err.contains("without its snapshot contents"), "{err}");
}
