//! Property-based validation of the paper's §2 theorems on random
//! ordered programs (experiments T1–T2 of DESIGN.md).
//!
//! Programs are small random propositional ordered programs from
//! `olp-workload`; each property is the literal statement of a lemma,
//! proposition or theorem.

use olp_workload::{random_ordered, RandomCfg};
use ordered_logic::prelude::*;
use ordered_logic::semantics::{
    enumerate_models, extend_to_exhaustive, greatest_assumption_set, has_no_assumption_set,
    is_exhaustive, least_model_naive, v_step,
};
use proptest::prelude::*;

fn small_cfg(n_atoms: usize, n_rules: usize, n_components: usize) -> RandomCfg {
    RandomCfg {
        n_atoms,
        n_rules,
        max_body: 3,
        neg_head_prob: 0.35,
        neg_body_prob: 0.4,
        n_components,
        edge_prob: 0.5,
    }
}

fn setup(seed: u64, cfg: &RandomCfg) -> (World, OrderedProgram, GroundProgram) {
    let mut w = World::new();
    let p = random_ordered(&mut w, cfg, seed);
    let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).expect("grounds");
    (w, p, g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 1: V is monotone — I ⊆ J ⇒ V(I) ⊆ V(J) — checked on the
    /// increasing Kleene chain and on random model pairs.
    #[test]
    fn lemma1_v_monotone_on_chain(seed in 0u64..10_000) {
        let cfg = small_cfg(5, 8, 3);
        let (_, p, g) = setup(seed, &cfg);
        for ci in 0..p.components.len() {
            let v = View::new(&g, CompId(ci as u32));
            let mut cur = Interpretation::new();
            for _ in 0..20 {
                let next = v_step(&v, &cur);
                prop_assert!(cur.is_subset(&next) || cur == next,
                    "Kleene chain must be increasing");
                if next == cur { break; }
                cur = next;
            }
        }
    }

    /// Lemma 1 again, on arbitrary ⊆-ordered pairs (not just the Kleene
    /// chain): take any model J and any subinterpretation I ⊆ J, then
    /// V(I) ⊆ V(J).
    #[test]
    fn lemma1_v_monotone_on_pairs(seed in 0u64..10_000) {
        let cfg = small_cfg(4, 7, 2);
        let (_, p, g) = setup(seed, &cfg);
        for ci in 0..p.components.len() {
            let v = View::new(&g, CompId(ci as u32));
            for j in enumerate_models(&v, g.n_atoms, None).into_iter().take(8) {
                // I = every-other-literal subset of J (deterministic).
                let mut i = Interpretation::new();
                for (k, lit) in j.literals().enumerate() {
                    if k % 2 == 0 {
                        i.insert(lit).expect("subset of a consistent set");
                    }
                }
                let vi = v_step(&v, &i);
                let vj = v_step(&v, &j);
                prop_assert!(vi.is_subset(&vj), "V not monotone");
            }
        }
    }

    /// Proposition 1 + Theorem 1b: the least fixpoint V^∞(∅) is a
    /// model, is assumption-free (both characterisations agree), and is
    /// contained in every model (= the intersection of all models).
    #[test]
    fn thm1b_lfp_is_least_assumption_free_model(seed in 0u64..10_000) {
        let cfg = small_cfg(4, 7, 3);
        let (_, p, g) = setup(seed, &cfg);
        for ci in 0..p.components.len() {
            let v = View::new(&g, CompId(ci as u32));
            let lm = least_model(&v);
            prop_assert_eq!(&lm, &least_model_naive(&v), "engines agree");
            prop_assert!(is_model(&v, &lm, g.n_atoms));
            prop_assert!(is_assumption_free(&v, &lm));
            prop_assert!(has_no_assumption_set(&v, &lm));
            for m in enumerate_models(&v, g.n_atoms, None) {
                prop_assert!(lm.is_subset(&m));
            }
        }
    }

    /// Theorem 1a vs the direct Definition 7 check: on every *model*,
    /// `T_{C^M}^∞(∅) = M` iff no subset of M is an assumption set.
    #[test]
    fn thm1a_equivalence_of_af_checks(seed in 0u64..10_000) {
        let cfg = small_cfg(4, 7, 2);
        let (_, p, g) = setup(seed, &cfg);
        for ci in 0..p.components.len() {
            let v = View::new(&g, CompId(ci as u32));
            for m in enumerate_models(&v, g.n_atoms, None) {
                prop_assert_eq!(
                    is_assumption_free(&v, &m),
                    has_no_assumption_set(&v, &m),
                    "characterisations disagree on a model"
                );
            }
        }
    }

    /// Proposition 2: every model is a subset of an exhaustive model.
    #[test]
    fn prop2_every_model_extends_to_exhaustive(seed in 0u64..10_000) {
        let cfg = small_cfg(3, 6, 2);
        let (_, p, g) = setup(seed, &cfg);
        for ci in 0..p.components.len() {
            let v = View::new(&g, CompId(ci as u32));
            for m in enumerate_models(&v, g.n_atoms, None) {
                let e = extend_to_exhaustive(&v, &m, g.n_atoms);
                prop_assert!(m.is_subset(&e));
                prop_assert!(is_exhaustive(&v, &e, g.n_atoms));
            }
        }
    }

    /// Definition 9 sanity: stable models are assumption-free models,
    /// pairwise ⊆-incomparable, contain the least model, and every
    /// assumption-free model is ⊆ some stable model.
    #[test]
    fn def9_stable_model_structure(seed in 0u64..10_000) {
        let cfg = small_cfg(4, 8, 3);
        let (_, p, g) = setup(seed, &cfg);
        for ci in 0..p.components.len() {
            let v = View::new(&g, CompId(ci as u32));
            let lm = least_model(&v);
            let af = ordered_logic::semantics::enumerate_assumption_free(&v, g.n_atoms);
            let stable = stable_models(&v, g.n_atoms);
            prop_assert!(!stable.is_empty(), "an AF model always exists (lfp)");
            for s in &stable {
                prop_assert!(is_model(&v, s, g.n_atoms));
                prop_assert!(is_assumption_free(&v, s));
                prop_assert!(lm.is_subset(s));
                for s2 in &stable {
                    prop_assert!(!s.is_proper_subset(s2));
                }
            }
            for m in &af {
                prop_assert!(
                    stable.iter().any(|s| m.is_subset(s)),
                    "AF model not below any stable model"
                );
            }
        }
    }

    /// The goal-directed prover agrees with the global least model on
    /// every literal of every component.
    #[test]
    fn prover_agrees_with_least_model(seed in 0u64..10_000) {
        use ordered_logic::semantics::prove;
        use ordered_logic::core::{AtomId, GLit, Sign};
        let cfg = small_cfg(5, 9, 3);
        let (_, p, g) = setup(seed, &cfg);
        for ci in 0..p.components.len() {
            let v = View::new(&g, CompId(ci as u32));
            let m = least_model(&v);
            for a in 0..g.n_atoms as u32 {
                for sign in [Sign::Pos, Sign::Neg] {
                    let q = GLit::new(sign, AtomId(a));
                    prop_assert_eq!(prove(&v, q), m.holds(q));
                }
            }
        }
    }

    /// The propagating stable solver is set-equal to the naive
    /// enumerator on random ordered programs.
    #[test]
    fn propagating_solver_agrees(seed in 0u64..10_000) {
        use ordered_logic::semantics::{
            enumerate_assumption_free, enumerate_assumption_free_propagating,
        };
        let cfg = small_cfg(5, 9, 3);
        let (w, p, g) = setup(seed, &cfg);
        for ci in 0..p.components.len() {
            let v = View::new(&g, CompId(ci as u32));
            let mut a: Vec<String> = enumerate_assumption_free(&v, g.n_atoms)
                .iter().map(|m| m.render(&w)).collect();
            let mut b: Vec<String> = enumerate_assumption_free_propagating(&v, g.n_atoms)
                .iter().map(|m| m.render(&w)).collect();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "solvers disagree (seed {}, comp {})", seed, ci);
        }
    }

    /// Component-wise evaluation (SCC-stratified fixpoint, product-form
    /// enumeration over independent rule groups) is set-equal to the
    /// monolithic engines on random ordered programs — the differential
    /// correctness gate for the decomposition.
    #[test]
    fn decomposed_engines_agree_with_monolithic(seed in 0u64..10_000) {
        use ordered_logic::semantics::{
            enumerate_assumption_free_decomposed, enumerate_assumption_free_propagating,
            least_model_monolithic, least_model_stratified, stable_models_decomposed,
            stable_models_monolithic_budgeted,
        };
        let cfg = small_cfg(5, 9, 3);
        let (w, p, g) = setup(seed, &cfg);
        for ci in 0..p.components.len() {
            let v = View::new(&g, CompId(ci as u32));
            prop_assert_eq!(
                least_model_stratified(&v), least_model_monolithic(&v),
                "stratified lfp differs (seed {}, comp {})", seed, ci);
            let mut a: Vec<String> = enumerate_assumption_free_propagating(&v, g.n_atoms)
                .iter().map(|m| m.render(&w)).collect();
            let mut b: Vec<String> = enumerate_assumption_free_decomposed(&v, g.n_atoms)
                .iter().map(|m| m.render(&w)).collect();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "AF sets differ (seed {}, comp {})", seed, ci);
            let mut sa: Vec<String> =
                stable_models_monolithic_budgeted(&v, g.n_atoms, &Budget::unlimited(), None)
                    .into_value().iter().map(|m| m.render(&w)).collect();
            let mut sb: Vec<String> = stable_models_decomposed(&v, g.n_atoms)
                .iter().map(|m| m.render(&w)).collect();
            sa.sort();
            sb.sort();
            prop_assert_eq!(sa, sb, "stable sets differ (seed {}, comp {})", seed, ci);
        }
    }

    /// Skeptical consequences sit between the least model and every
    /// stable model.
    #[test]
    fn skeptical_sandwich(seed in 0u64..10_000) {
        use ordered_logic::semantics::skeptical_consequences;
        let cfg = small_cfg(4, 8, 3);
        let (_, p, g) = setup(seed, &cfg);
        for ci in 0..p.components.len() {
            let v = View::new(&g, CompId(ci as u32));
            let lm = least_model(&v);
            let sk = skeptical_consequences(&v, g.n_atoms);
            prop_assert!(lm.is_subset(&sk));
            for s in stable_models(&v, g.n_atoms) {
                prop_assert!(sk.is_subset(&s));
            }
        }
    }

    /// Explanations: every literal of the least model has a proof tree
    /// whose internal structure is sound (each node's rule is applied
    /// and unattacked, premises match the rule body); every underived
    /// literal gets a refutation whose fates are accurate.
    #[test]
    fn explanations_are_sound(seed in 0u64..10_000) {
        use ordered_logic::semantics::{explain_in, Fate, Why};
        let cfg = small_cfg(5, 9, 3);
        let (_, p, g) = setup(seed, &cfg);
        for ci in 0..p.components.len() {
            let v = View::new(&g, CompId(ci as u32));
            let m = least_model(&v);
            for lit in m.literals() {
                match explain_in(&v, &m, lit) {
                    Why::Proved(proof) => {
                        // Walk the tree.
                        let mut stack = vec![&proof];
                        while let Some(node) = stack.pop() {
                            prop_assert!(m.holds(node.lit));
                            let rule = v.rule(node.rule);
                            prop_assert_eq!(rule.head, node.lit);
                            prop_assert!(v.applied(node.rule, &m));
                            prop_assert!(!v.overruled(node.rule, &m));
                            prop_assert!(!v.defeated(node.rule, &m));
                            prop_assert_eq!(rule.body.len(), node.premises.len());
                            stack.extend(node.premises.iter());
                        }
                    }
                    Why::NotProved(_) => prop_assert!(false, "derived literal unproved"),
                }
            }
            // Spot-check a few underived literals.
            for a in 0..g.n_atoms.min(4) as u32 {
                use ordered_logic::core::{AtomId, GLit};
                let q = GLit::pos(AtomId(a));
                if m.holds(q) {
                    continue;
                }
                match explain_in(&v, &m, q) {
                    Why::NotProved(fates) => {
                        prop_assert_eq!(fates.len(), v.rules_with_head(q).len());
                        for (li, fate) in fates {
                            match fate {
                                Fate::Blocked { on } =>
                                    prop_assert!(m.holds(on.complement())),
                                Fate::Overruled { by } =>
                                    prop_assert!(!v.blocked(by, &m)),
                                Fate::Defeated { by } =>
                                    prop_assert!(!v.blocked(by, &m)),
                                Fate::NotApplicable { missing } => {
                                    prop_assert!(!missing.is_empty());
                                    for l in missing {
                                        prop_assert!(!m.holds(l));
                                    }
                                }
                            }
                            let _ = li;
                        }
                    }
                    Why::Proved(_) => prop_assert!(false, "underived literal proved"),
                }
            }
        }
    }

    /// Lemma 2: for every model `M`, the `T` fixpoint of the enabled
    /// version is contained in `M`.
    #[test]
    fn lemma2_enabled_fixpoint_below_model(seed in 0u64..10_000) {
        use ordered_logic::semantics::{enabled_version, t_fixpoint};
        let cfg = small_cfg(4, 7, 2);
        let (_, p, g) = setup(seed, &cfg);
        for ci in 0..p.components.len() {
            let v = View::new(&g, CompId(ci as u32));
            for m in enumerate_models(&v, g.n_atoms, None).into_iter().take(20) {
                let t = t_fixpoint(&enabled_version(&v, &m));
                prop_assert!(t.is_subset(&m), "Lemma 2 violated");
            }
        }
    }

    /// Definition 5: every total model is exhaustive (the converse
    /// fails — pinned separately on Fig. 2's program).
    #[test]
    fn def5_total_implies_exhaustive(seed in 0u64..10_000) {
        use ordered_logic::semantics::is_exhaustive;
        let cfg = small_cfg(3, 6, 2);
        let (_, p, g) = setup(seed, &cfg);
        for ci in 0..p.components.len() {
            let v = View::new(&g, CompId(ci as u32));
            for m in enumerate_models(&v, g.n_atoms, None) {
                if m.is_total(g.n_atoms) {
                    prop_assert!(is_exhaustive(&v, &m, g.n_atoms));
                }
            }
        }
    }

    /// The greatest assumption set really is the union of all
    /// assumption sets: removing it from any interpretation leaves an
    /// interpretation with no assumption set w.r.t. the *original* I —
    /// checked via the characterisation that the remainder is exactly
    /// what iterated removal keeps supported.
    #[test]
    fn def6_greatest_assumption_set_is_idempotent(seed in 0u64..10_000) {
        let cfg = small_cfg(4, 7, 2);
        let (_, p, g) = setup(seed, &cfg);
        for ci in 0..p.components.len() {
            let v = View::new(&g, CompId(ci as u32));
            for m in enumerate_models(&v, g.n_atoms, None).into_iter().take(10) {
                let gas = greatest_assumption_set(&v, &m);
                // Idempotence: the GAS of (m minus gas) w.r.t. itself
                // need not be empty (statuses change), but the GAS
                // members must each be non-supported in m.
                for lit in &gas {
                    let supported = v.rules_with_head(*lit).iter().any(|&li| {
                        v.applicable(li, &m)
                            && !v.overruled(li, &m)
                            && !v.defeated(li, &m)
                            && v.rule(li).body.iter().all(|b| !gas.contains(b))
                    });
                    prop_assert!(!supported);
                }
            }
        }
    }
}

/// Regression: two syntactically disjoint copies of the Fig. 2 choice
/// program stay independent under decomposition — two rule groups, and
/// the stable set is the 2×2 cartesian product of the per-copy choices,
/// identical to the monolithic baseline.
#[test]
fn two_disjoint_fig2_copies_decompose_into_a_product() {
    use ordered_logic::semantics::{
        stable_models_decomposed, stable_models_monolithic_budgeted, Decomposition,
    };
    let mut w = World::new();
    let p = parse_program(
        &mut w,
        "module c2 { a1. b1. a2. b2. }
         module c1 < c2 { -a1 :- b1. -b1 :- a1. -a2 :- b2. -b2 :- a2. }",
    )
    .unwrap();
    let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).unwrap();
    let c1 = p.component_by_name(w.syms.get("c1").unwrap()).unwrap();
    let v = View::new(&g, c1);
    let d = Decomposition::new(&v);
    assert_eq!(d.groups().len(), 2, "disjoint copies → independent groups");
    let mut dec: Vec<String> = stable_models_decomposed(&v, g.n_atoms)
        .iter()
        .map(|m| m.render(&w))
        .collect();
    let mut mono: Vec<String> =
        stable_models_monolithic_budgeted(&v, g.n_atoms, &Budget::unlimited(), None)
            .into_value()
            .iter()
            .map(|m| m.render(&w))
            .collect();
    dec.sort();
    mono.sort();
    assert_eq!(dec.len(), 4, "2 choices × 2 choices");
    assert_eq!(dec, mono);
}
