//! Differential property tests for the parallel evaluation pipeline:
//!
//! * the batch-synchronous grounder emits a **byte-identical** ground
//!   program at every thread count (same `rules` vector, same render);
//! * the stratum-wavefront least model and the parallel assumption-free
//!   / stable enumerators agree with the sequential engines;
//! * the selectivity-driven join planner changes join *order* only —
//!   with it disabled the instance set, and hence every model, is
//!   identical;
//! * incremental mutations through a parallel delta grounder match a
//!   sequential KB mutation-for-mutation.
//!
//! No `with_cases` override here: the default (256 cases) is the
//! acceptance bar, and `PROPTEST_CASES` can scale it.

use olp_workload::{random_datalog, random_ordered, DatalogCfg, RandomCfg};
use ordered_logic::prelude::*;
use ordered_logic::semantics::{
    enumerate_assumption_free, enumerate_assumption_free_parallel, least_model_parallel,
    stable_models_parallel,
};
use proptest::prelude::*;

fn datalog_cfg() -> DatalogCfg {
    DatalogCfg {
        n_consts: 5,
        n_unary: 3,
        n_binary: 2,
        n_facts: 10,
        n_rules: 8,
        neg_head_prob: 0.25,
        neg_body_prob: 0.3,
        n_components: 2,
    }
}

/// Grounds the seeded workload in a **fresh world** (interning order
/// must be reproduced by the run under test, not inherited).
fn ground_at(seed: u64, threads: usize, plan: bool) -> (World, GroundProgram) {
    let mut w = World::new();
    let p = random_datalog(&mut w, &datalog_cfg(), seed);
    let cfg = GroundConfig {
        threads,
        plan,
        ..GroundConfig::default()
    };
    let g = ground_smart(&mut w, &p, &cfg).expect("bounded workloads ground");
    (w, g)
}

/// Renders a model set for order-insensitive comparison.
fn renders(w: &World, ms: &[Interpretation]) -> Vec<String> {
    let mut v: Vec<String> = ms.iter().map(|m| m.render(w)).collect();
    v.sort();
    v
}

proptest! {
    /// The ground program is bit-identical across thread counts: the
    /// BSP closure freezes its inputs per batch and commits in item
    /// order, so neither batch composition nor interning order can
    /// depend on scheduling.
    #[test]
    fn thread_count_is_invisible_in_the_ground_program(seed in 0u64..20_000) {
        let (w1, g1) = ground_at(seed, 1, true);
        for threads in [2usize, 8] {
            let (wt, gt) = ground_at(seed, threads, true);
            prop_assert!(
                g1.rules == gt.rules,
                "rule vectors differ at {} threads (seed {})", threads, seed
            );
            prop_assert_eq!(
                g1.render(&w1), gt.render(&wt),
                "rendered programs differ at {} threads (seed {})", threads, seed
            );
        }
    }

    /// Disabling the join planner (textual join order, unfiltered
    /// candidate scans) yields the same instance set and the same
    /// least model per component.
    #[test]
    fn planner_changes_join_order_not_results(seed in 0u64..20_000) {
        let (wp, gp) = ground_at(seed, 1, true);
        let (wn, gn) = ground_at(seed, 1, false);
        let lines = |w: &World, g: &GroundProgram| {
            let mut v: Vec<String> = g.render(w).lines().map(str::to_owned).collect();
            v.sort();
            v
        };
        prop_assert_eq!(
            lines(&wp, &gp), lines(&wn, &gn),
            "planned and unplanned instance sets differ (seed {})", seed
        );
        for ci in 0..gp.order.len() {
            let c = CompId(ci as u32);
            prop_assert_eq!(
                least_model(&View::new(&gp, c)).render(&wp),
                least_model(&View::new(&gn, c)).render(&wn),
                "least models differ with planner off in component {} (seed {})", ci, seed
            );
        }
    }

    /// Wavefront least models and parallel AF/stable enumerations agree
    /// with the sequential engines at 2 and 8 threads, per component.
    #[test]
    fn parallel_engines_agree_with_sequential(seed in 0u64..20_000) {
        let cfg = RandomCfg {
            n_atoms: 6,
            n_rules: 12,
            max_body: 3,
            neg_head_prob: 0.35,
            neg_body_prob: 0.4,
            n_components: 3,
            edge_prob: 0.5,
        };
        let mut w = World::new();
        let p = random_ordered(&mut w, &cfg, seed);
        let g = ground_smart(&mut w, &p, &GroundConfig::default()).unwrap();
        for ci in 0..p.components.len() {
            let c = CompId(ci as u32);
            let view = View::new(&g, c);
            let least_seq = least_model(&view);
            let af_seq = renders(&w, &enumerate_assumption_free(&view, g.n_atoms));
            let st_seq = renders(&w, &stable_models(&view, g.n_atoms));
            for threads in [2usize, 8] {
                prop_assert_eq!(
                    least_model_parallel(&view, threads).render(&w),
                    least_seq.render(&w),
                    "wavefront least model differs at {} threads (seed {})", threads, seed
                );
                prop_assert_eq!(
                    renders(&w, &enumerate_assumption_free_parallel(&view, g.n_atoms, threads)),
                    af_seq.clone(),
                    "parallel AF set differs at {} threads (seed {})", threads, seed
                );
                prop_assert_eq!(
                    renders(&w, &stable_models_parallel(&view, g.n_atoms, threads)),
                    st_seq.clone(),
                    "parallel stable set differs at {} threads (seed {})", threads, seed
                );
            }
        }
    }

    /// A KB whose grounding, delta maintenance, and queries all run at
    /// 8 threads answers every query identically to a `--threads 1` KB
    /// across a mutation script (parallel delta grounding is
    /// bit-deterministic too).
    #[test]
    fn parallel_kb_mutations_match_sequential(seed in 0u64..5_000) {
        use ordered_logic::kb::GroundStrategy;
        let build = |threads: usize| {
            let mut w = World::new();
            let p = random_datalog(&mut w, &datalog_cfg(), seed);
            let cfg = GroundConfig { threads, ..GroundConfig::default() };
            let mut kb = ordered_logic::kb::KbBuilder::from_parts(w, p)
                .build_with(GroundStrategy::Smart, &cfg)
                .expect("bounded workloads ground");
            kb.set_threads(threads);
            kb
        };
        let mut seq = build(1);
        let mut par = build(8);
        let script: &[(&str, bool)] = &[
            ("u0(k0).", true),
            ("b0(k0, k1).", true),
            ("u1(X) :- u0(X), b0(X, Y).", true),
            ("u0(k0).", false),
            ("u2(k9).", true),
        ];
        for &(rule, is_assert) in script {
            if is_assert {
                seq.assert_rule("c0", rule).unwrap();
                par.assert_rule("c0", rule).unwrap();
            } else {
                prop_assert_eq!(
                    seq.retract_rule("c0", rule).unwrap(),
                    par.retract_rule("c0", rule).unwrap()
                );
            }
            prop_assert_eq!(
                seq.ground_program().render(seq.world()),
                par.ground_program().render(par.world()),
                "ground programs diverged after `{}` (seed {})", rule, seed
            );
            let ms = seq.model("c0").unwrap().clone();
            let mp = par.model("c0").unwrap().clone();
            prop_assert_eq!(
                seq.render(&ms), par.render(&mp),
                "least models diverged after `{}` (seed {})", rule, seed
            );
        }
    }
}
