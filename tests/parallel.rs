//! Differential property tests for the parallel evaluation pipeline:
//!
//! * the batch-synchronous grounder emits a **byte-identical** ground
//!   program at every thread count (same `rules` vector, same render);
//! * the flat-arena least model (sequential and forced work-stealing
//!   morsel scheduling) and the parallel assumption-free / stable
//!   enumerators agree with the sequential interpretive engines;
//! * morsel partitioning tiles the flat rule range exactly, and
//!   budget cancellation under work stealing leaves a sound prefix;
//! * the selectivity-driven join planner changes join *order* only —
//!   with it disabled the instance set, and hence every model, is
//!   identical;
//! * incremental mutations through a parallel delta grounder match a
//!   sequential KB mutation-for-mutation.
//!
//! No `with_cases` override here: the default (256 cases) is the
//! acceptance bar, and `PROPTEST_CASES` can scale it.

use olp_workload::{random_datalog, random_ordered, DatalogCfg, RandomCfg};
use ordered_logic::prelude::*;
use ordered_logic::semantics::{
    enumerate_assumption_free, enumerate_assumption_free_parallel, flatten, least_model_flat,
    least_model_monolithic, least_model_morsel_forced, least_model_parallel,
    stable_models_parallel,
};
use proptest::prelude::*;

fn datalog_cfg() -> DatalogCfg {
    DatalogCfg {
        n_consts: 5,
        n_unary: 3,
        n_binary: 2,
        n_facts: 10,
        n_rules: 8,
        neg_head_prob: 0.25,
        neg_body_prob: 0.3,
        n_components: 2,
    }
}

/// Grounds the seeded workload in a **fresh world** (interning order
/// must be reproduced by the run under test, not inherited).
fn ground_at(seed: u64, threads: usize, plan: bool) -> (World, GroundProgram) {
    let mut w = World::new();
    let p = random_datalog(&mut w, &datalog_cfg(), seed);
    let cfg = GroundConfig {
        threads,
        plan,
        ..GroundConfig::default()
    };
    let g = ground_smart(&mut w, &p, &cfg).expect("bounded workloads ground");
    (w, g)
}

/// Renders a model set for order-insensitive comparison.
fn renders(w: &World, ms: &[Interpretation]) -> Vec<String> {
    let mut v: Vec<String> = ms.iter().map(|m| m.render(w)).collect();
    v.sort();
    v
}

proptest! {
    /// The ground program is bit-identical across thread counts: the
    /// BSP closure freezes its inputs per batch and commits in item
    /// order, so neither batch composition nor interning order can
    /// depend on scheduling.
    #[test]
    fn thread_count_is_invisible_in_the_ground_program(seed in 0u64..20_000) {
        let (w1, g1) = ground_at(seed, 1, true);
        for threads in [2usize, 8] {
            let (wt, gt) = ground_at(seed, threads, true);
            prop_assert!(
                g1.rules == gt.rules,
                "rule vectors differ at {} threads (seed {})", threads, seed
            );
            prop_assert_eq!(
                g1.render(&w1), gt.render(&wt),
                "rendered programs differ at {} threads (seed {})", threads, seed
            );
        }
    }

    /// Disabling the join planner (textual join order, unfiltered
    /// candidate scans) yields the same instance set and the same
    /// least model per component.
    #[test]
    fn planner_changes_join_order_not_results(seed in 0u64..20_000) {
        let (wp, gp) = ground_at(seed, 1, true);
        let (wn, gn) = ground_at(seed, 1, false);
        let lines = |w: &World, g: &GroundProgram| {
            let mut v: Vec<String> = g.render(w).lines().map(str::to_owned).collect();
            v.sort();
            v
        };
        prop_assert_eq!(
            lines(&wp, &gp), lines(&wn, &gn),
            "planned and unplanned instance sets differ (seed {})", seed
        );
        for ci in 0..gp.order.len() {
            let c = CompId(ci as u32);
            prop_assert_eq!(
                least_model(&View::new(&gp, c)).render(&wp),
                least_model(&View::new(&gn, c)).render(&wn),
                "least models differ with planner off in component {} (seed {})", ci, seed
            );
        }
    }

    /// Wavefront least models and parallel AF/stable enumerations agree
    /// with the sequential engines at 2 and 8 threads, per component.
    #[test]
    fn parallel_engines_agree_with_sequential(seed in 0u64..20_000) {
        let cfg = RandomCfg {
            n_atoms: 6,
            n_rules: 12,
            max_body: 3,
            neg_head_prob: 0.35,
            neg_body_prob: 0.4,
            n_components: 3,
            edge_prob: 0.5,
        };
        let mut w = World::new();
        let p = random_ordered(&mut w, &cfg, seed);
        let g = ground_smart(&mut w, &p, &GroundConfig::default()).unwrap();
        for ci in 0..p.components.len() {
            let c = CompId(ci as u32);
            let view = View::new(&g, c);
            let least_seq = least_model(&view);
            let af_seq = renders(&w, &enumerate_assumption_free(&view, g.n_atoms));
            let st_seq = renders(&w, &stable_models(&view, g.n_atoms));
            for threads in [2usize, 8] {
                prop_assert_eq!(
                    least_model_parallel(&view, threads).render(&w),
                    least_seq.render(&w),
                    "wavefront least model differs at {} threads (seed {})", threads, seed
                );
                prop_assert_eq!(
                    renders(&w, &enumerate_assumption_free_parallel(&view, g.n_atoms, threads)),
                    af_seq.clone(),
                    "parallel AF set differs at {} threads (seed {})", threads, seed
                );
                prop_assert_eq!(
                    renders(&w, &stable_models_parallel(&view, g.n_atoms, threads)),
                    st_seq.clone(),
                    "parallel stable set differs at {} threads (seed {})", threads, seed
                );
            }
        }
    }

    /// A KB whose grounding, delta maintenance, and queries all run at
    /// 8 threads answers every query identically to a `--threads 1` KB
    /// across a mutation script (parallel delta grounding is
    /// bit-deterministic too).
    #[test]
    fn parallel_kb_mutations_match_sequential(seed in 0u64..5_000) {
        use ordered_logic::kb::GroundStrategy;
        let build = |threads: usize| {
            let mut w = World::new();
            let p = random_datalog(&mut w, &datalog_cfg(), seed);
            let cfg = GroundConfig { threads, ..GroundConfig::default() };
            let mut kb = ordered_logic::kb::KbBuilder::from_parts(w, p)
                .build_with(GroundStrategy::Smart, &cfg)
                .expect("bounded workloads ground");
            kb.set_threads(threads);
            kb
        };
        let mut seq = build(1);
        let mut par = build(8);
        let script: &[(&str, bool)] = &[
            ("u0(k0).", true),
            ("b0(k0, k1).", true),
            ("u1(X) :- u0(X), b0(X, Y).", true),
            ("u0(k0).", false),
            ("u2(k9).", true),
        ];
        for &(rule, is_assert) in script {
            if is_assert {
                seq.assert_rule("c0", rule).unwrap();
                par.assert_rule("c0", rule).unwrap();
            } else {
                prop_assert_eq!(
                    seq.retract_rule("c0", rule).unwrap(),
                    par.retract_rule("c0", rule).unwrap()
                );
            }
            prop_assert_eq!(
                seq.ground_program().render(seq.world()),
                par.ground_program().render(par.world()),
                "ground programs diverged after `{}` (seed {})", rule, seed
            );
            let ms = seq.model("c0").unwrap().clone();
            let mp = par.model("c0").unwrap().clone();
            prop_assert_eq!(
                seq.render(&ms), par.render(&mp),
                "least models diverged after `{}` (seed {})", rule, seed
            );
        }
    }

    /// The flat arena engine and the work-stealing morsel scheduler are
    /// byte-identical to the interpretive monolithic engine on random
    /// *ordered* programs (overruling + defeat), per component. The
    /// morsel path is **forced** — bypassing the small-program
    /// sequential fallback — at the finest possible granularity (one
    /// stratum per morsel), the worst case for publish/merge bugs.
    #[test]
    fn flat_and_morsel_match_interpretive(seed in 0u64..20_000) {
        let cfg = RandomCfg {
            n_atoms: 6,
            n_rules: 12,
            max_body: 3,
            neg_head_prob: 0.35,
            neg_body_prob: 0.4,
            n_components: 3,
            edge_prob: 0.5,
        };
        let mut w = World::new();
        let p = random_ordered(&mut w, &cfg, seed);
        let g = ground_smart(&mut w, &p, &GroundConfig::default()).unwrap();
        for ci in 0..p.components.len() {
            let c = CompId(ci as u32);
            let view = View::new(&g, c);
            let reference = least_model_monolithic(&view).render(&w);
            let fv = flatten(&view);
            prop_assert_eq!(
                least_model_flat(&fv).render(&w), reference.clone(),
                "flat engine differs from interpretive in component {} (seed {})", ci, seed
            );
            let morsels = fv.morsels(1);
            for threads in [2usize, 4, 8] {
                let ev = least_model_morsel_forced(&fv, &morsels, threads, &Budget::unlimited());
                prop_assert!(
                    ev.reason().is_none(),
                    "unlimited morsel run interrupted (seed {})", seed
                );
                prop_assert_eq!(
                    ev.value().render(&w), reference.clone(),
                    "forced morsel engine differs at {} threads in component {} (seed {})",
                    threads, ci, seed
                );
            }
        }
    }

    /// Morsel partitioning tiles the flat rule range exactly at every
    /// target weight: every rule and every stratum lands in exactly one
    /// morsel (nothing dropped, nothing duplicated), morsels never
    /// split a stratum, and never span dependency levels.
    #[test]
    fn morsels_partition_rules_exactly(seed in 0u64..20_000, target in 1u64..5_000) {
        let cfg = RandomCfg {
            n_atoms: 6,
            n_rules: 12,
            max_body: 3,
            neg_head_prob: 0.35,
            neg_body_prob: 0.4,
            n_components: 3,
            edge_prob: 0.5,
        };
        let mut w = World::new();
        let p = random_ordered(&mut w, &cfg, seed);
        let g = ground_smart(&mut w, &p, &GroundConfig::default()).unwrap();
        for ci in 0..p.components.len() {
            let c = CompId(ci as u32);
            let fv = flatten(&View::new(&g, c));
            let ms = fv.morsels(target);
            if fv.is_empty() {
                prop_assert!(ms.is_empty(), "empty view produced morsels (seed {})", seed);
                continue;
            }
            let mut next_rule = 0u32;
            let mut next_stratum = 0u32;
            for m in &ms {
                prop_assert_eq!(
                    m.rule_lo, next_rule,
                    "rule gap or overlap before morsel (seed {}, target {})", seed, target
                );
                prop_assert_eq!(
                    m.stratum_lo, next_stratum,
                    "stratum gap or overlap before morsel (seed {}, target {})", seed, target
                );
                prop_assert!(m.stratum_hi > m.stratum_lo, "empty morsel (seed {})", seed);
                // Morsel boundaries coincide with stratum boundaries
                // (a split stratum would break the sequential-worklist
                // invariant inside eval_strata).
                prop_assert_eq!(fv.stratum(m.stratum_lo as usize).0, m.rule_lo);
                prop_assert_eq!(fv.stratum(m.stratum_hi as usize - 1).1, m.rule_hi);
                // All contained strata share the morsel's level.
                let (slo, shi) = fv.level(m.level as usize);
                prop_assert!(
                    slo <= m.stratum_lo && m.stratum_hi <= shi,
                    "morsel spans levels (seed {}, target {})", seed, target
                );
                next_rule = m.rule_hi;
                next_stratum = m.stratum_hi;
            }
            prop_assert_eq!(
                next_rule as usize, fv.len(),
                "morsels do not cover all rules (seed {}, target {})", seed, target
            );
            prop_assert_eq!(
                next_stratum as usize, fv.n_strata(),
                "morsels do not cover all strata (seed {}, target {})", seed, target
            );
        }
    }

    /// Cancellation under work stealing: a step budget that trips
    /// mid-run leaves a **sound monotone prefix** — every literal in
    /// the partial result also holds in the full least model — and
    /// never a crash, hang, or over-claimed literal, regardless of
    /// which worker hits the limit first.
    #[test]
    fn morsel_cancellation_leaves_sound_prefix(seed in 0u64..5_000, max_steps in 1u64..40) {
        let cfg = RandomCfg {
            n_atoms: 6,
            n_rules: 12,
            max_body: 3,
            neg_head_prob: 0.35,
            neg_body_prob: 0.4,
            n_components: 3,
            edge_prob: 0.5,
        };
        let mut w = World::new();
        let p = random_ordered(&mut w, &cfg, seed);
        let g = ground_smart(&mut w, &p, &GroundConfig::default()).unwrap();
        for ci in 0..p.components.len() {
            let c = CompId(ci as u32);
            let fv = flatten(&View::new(&g, c));
            if fv.is_empty() {
                continue;
            }
            let full = least_model_flat(&fv);
            let morsels = fv.morsels(1);
            let budget = Budget::limited(Some(max_steps), None);
            let ev = least_model_morsel_forced(&fv, &morsels, 4, &budget);
            let partial = ev.value();
            for lit in partial.literals() {
                prop_assert!(
                    full.holds(lit),
                    "interrupted run over-claimed {} (seed {}, steps {})",
                    w.glit_str(lit), seed, max_steps
                );
            }
            if ev.reason().is_none() {
                prop_assert_eq!(
                    partial.render(&w), full.render(&w),
                    "uninterrupted run differs from full model (seed {})", seed
                );
            }
        }
    }
}
