//! Integration battery for `olp serve`: protocol goldens over real TCP
//! against the real binary, malformed-frame fuzzing, per-request and
//! per-connection resource limits (the JSON twin of the CLI's PARTIAL
//! banner), admission control, a snapshot-isolation differential
//! property test (concurrent readers must see exactly the sequential
//! model of the epoch each response reports), a writer-stall test
//! (`OLP_SERVE_WRITE_DELAY_MS` must never block readers), and
//! crash-recovery-under-traffic (`kill -9` a `--db` server mid-stream,
//! restart, and the recovered KB must resume from its logged sequence
//! number with models identical to a never-crashed survivor).

use ordered_logic::kb::{GroundStrategy, Kb, KbBuilder};
use ordered_logic::server::{ServeKb, Server, ServerConfig, MAX_LINE};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// The paper's Fig.1 penguin program: `c1` sees the exception, `c2`
/// does not, and every literal is defined (the default
/// `-ground_animal` rule makes the least model total).
const PENGUIN: &str = "module c2 {\n\
                         bird(tweety). bird(pengu).\n\
                         fly(X) :- bird(X).\n\
                         -ground_animal(X) :- bird(X).\n\
                       }\n\
                       module c1 < c2 {\n\
                         ground_animal(pengu).\n\
                         -fly(X) :- ground_animal(X).\n\
                       }\n";

fn scratch(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("olp_server_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    let _ = std::fs::remove_file(&d);
    d
}

fn write_program(name: &str, src: &str) -> PathBuf {
    let p = scratch(name).with_extension("olp");
    std::fs::write(&p, src).expect("program file written");
    p
}

/// A spawned `olp serve` child plus the address it bound. Killed on
/// drop so a failing test never leaks a listener.
struct ServerProc {
    child: Child,
    addr: SocketAddr,
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns the real binary with `serve <args> --listen 127.0.0.1:0` and
/// parses the bound address off stdout (skipping recovery/creation
/// lines a `--db` start prints first).
fn spawn_serve(args: &[&str], envs: &[(&str, &str)]) -> ServerProc {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_olp"));
    cmd.arg("serve")
        .args(args)
        .args(["--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("olp serve spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(a) = line.strip_prefix("listening on ") {
                    break a.trim().parse().expect("listen address parses");
                }
            }
            _ => panic!("server exited before printing its listen address"),
        }
    };
    std::thread::spawn(move || for _ in lines {});
    ServerProc { child, addr }
}

/// One protocol connection: send a request line, read the response
/// line.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_nodelay(true).ok();
        Client {
            reader: BufReader::new(stream.try_clone().expect("clones")),
            writer: stream,
        }
    }

    fn send(&mut self, req: &str) -> String {
        self.writer.write_all(req.as_bytes()).expect("request sent");
        self.writer.write_all(b"\n").expect("newline sent");
        self.read_line().expect("response line")
    }

    /// Reads one response line; `None` on EOF.
    fn read_line(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            Err(_) => None,
        }
    }
}

/// Extracts `"key":N` from a single-line JSON response.
fn field_u64(resp: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = resp.find(&needle)? + needle.len();
    let rest = &resp[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key":"..."` (the rendered-model case: the value never
/// contains escapes).
fn field_str<'a>(resp: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let at = resp.find(&needle)? + needle.len();
    let rest = &resp[at..];
    Some(&rest[..rest.find('"')?])
}

// ------------------------------------------------------------ goldens

#[test]
fn golden_protocol_over_tcp() {
    let program = write_program("golden", PENGUIN);
    let server = spawn_serve(&[program.to_str().unwrap()], &[]);
    let mut c = Client::connect(server.addr);

    assert_eq!(c.send(r#"{"cmd":"ping"}"#), r#"{"ok":true,"epoch":0}"#);
    assert_eq!(
        c.send(r#"{"cmd":"truth","object":"c1","query":"fly(pengu)"}"#),
        r#"{"ok":true,"epoch":0,"truth":"false"}"#
    );
    assert_eq!(
        c.send(r#"{"cmd":"truth","object":"c2","query":"fly(pengu)"}"#),
        r#"{"ok":true,"epoch":0,"truth":"true"}"#
    );
    assert_eq!(
        c.send(r#"{"cmd":"query","object":"c1","pattern":"fly(X)"}"#),
        r#"{"ok":true,"epoch":0,"answers":["X=tweety"]}"#
    );

    // Full-model and multi-semantics reads: structural checks (the
    // exact interpretation render is the KB layer's contract).
    let model = c.send(r#"{"cmd":"query","object":"c1"}"#);
    assert!(
        model.starts_with(r#"{"ok":true,"epoch":0,"model":"#),
        "{model}"
    );
    assert!(model.contains("-fly(pengu)"), "{model}");
    let stable = c.send(r#"{"cmd":"query","object":"c1","semantics":"stable"}"#);
    assert!(stable.contains(r#""models":["#), "{stable}");
    let skep = c.send(r#"{"cmd":"query","object":"c1","semantics":"skeptical"}"#);
    assert!(skep.contains(r#""model":"#), "{skep}");
    let cred = c.send(r#"{"cmd":"query","object":"c1","semantics":"credulous"}"#);
    assert!(cred.contains(r#""literals":["#), "{cred}");
    let why = c.send(r#"{"cmd":"why","object":"c1","query":"fly(pengu)"}"#);
    assert!(why.starts_with(r#"{"ok":true,"epoch":0,"text":"#), "{why}");

    // Mutations bump the epoch; a no-match retract does not.
    assert_eq!(
        c.send(r#"{"cmd":"assert","object":"c2","rule":"bird(robin)."}"#),
        r#"{"ok":true,"epoch":1,"seq":null}"#
    );
    let after = c.send(r#"{"cmd":"query","object":"c1","pattern":"fly(X)"}"#);
    assert!(after.starts_with(r#"{"ok":true,"epoch":1,"#), "{after}");
    assert!(after.contains("X=robin"), "{after}");
    assert_eq!(
        c.send(r#"{"cmd":"retract","object":"c2","rule":"bird(robin)."}"#),
        r#"{"ok":true,"epoch":2,"removed":true,"seq":null}"#
    );
    assert_eq!(
        c.send(r#"{"cmd":"retract","object":"c2","rule":"bird(robin)."}"#),
        r#"{"ok":true,"epoch":2,"removed":false,"seq":null}"#
    );

    // Error surface, each still reporting the epoch it observed.
    assert_eq!(
        c.send(r#"{"cmd":"save"}"#),
        r#"{"ok":false,"error":"no durable store attached (start with --db)","epoch":2}"#
    );
    let unknown = c.send(r#"{"cmd":"truth","object":"mars","query":"fly(pengu)"}"#);
    assert!(unknown.contains("unknown object"), "{unknown}");
    let nonground = c.send(r#"{"cmd":"truth","object":"c1","query":"fly(X)"}"#);
    assert!(nonground.contains("not ground"), "{nonground}");
    assert_eq!(
        c.send(r#"{"cmd":"bogus"}"#),
        r#"{"ok":false,"error":"unknown cmd `bogus`","epoch":2}"#
    );
    assert_eq!(
        c.send("[1,2,3]"),
        r#"{"ok":false,"error":"request must be a json object","epoch":2}"#
    );
    assert_eq!(
        c.send(r#"{"nope":1}"#),
        r#"{"ok":false,"error":"missing string field `cmd`","epoch":2}"#
    );

    let stats = c.send(r#"{"cmd":"stats"}"#);
    assert!(stats.contains(r#""objects":2"#), "{stats}");
    assert!(stats.contains(r#""seq":null"#), "{stats}");
    assert_eq!(field_u64(&stats, "epoch"), Some(2));
    // The writer publishes each component's analysis profile with the
    // snapshot; the penguin program is stratified and order-relevant
    // in c1 (the engine's single-model fast path applies).
    assert!(stats.contains(r#""profiles":{"#), "{stats}");
    assert!(
        stats.contains(r#""c1":"strat=stratified order=relevant"#),
        "{stats}"
    );
    assert!(stats.contains("single-model=yes"), "{stats}");

    // Graceful protocol shutdown: acknowledged, then EOF, exit 0.
    assert_eq!(c.send(r#"{"cmd":"shutdown"}"#), r#"{"ok":true,"epoch":2}"#);
    assert_eq!(c.read_line(), None);
    let mut server = server;
    let status = server.child.wait().expect("server reaped");
    assert!(status.success(), "server exited {status:?}");
    std::fs::remove_file(&program).ok();
}

// ----------------------------------------------------- malformed fuzz

#[test]
fn malformed_frames_never_wedge_the_accept_loop() {
    let program = write_program("fuzz", PENGUIN);
    let mut server = spawn_serve(&[program.to_str().unwrap()], &[]);
    let mut rng = StdRng::seed_from_u64(0xBAD_F00D);

    // Random byte garbage (including invalid UTF-8): each frame must
    // get an error response and leave the connection usable.
    for _ in 0..40 {
        let mut c = Client::connect(server.addr);
        let n = rng.gen_range(1usize..200);
        let mut bytes: Vec<u8> = (0..n).map(|_| rng.gen_range(0u16..256) as u8).collect();
        bytes.retain(|&b| b != b'\n' && b != b'\r');
        if bytes.is_empty() {
            // A blank line is legitimately skipped, not answered.
            bytes.push(b'{');
        }
        bytes.push(b'\n');
        c.writer.write_all(&bytes).expect("garbage sent");
        let resp = c.read_line().expect("error response");
        assert!(resp.starts_with(r#"{"ok":false,"error":""#), "{resp}");
        assert_eq!(c.send(r#"{"cmd":"ping"}"#), r#"{"ok":true,"epoch":0}"#);
    }

    // Mid-frame disconnects: a partial request with no newline, then
    // the client vanishes. The server must just reap the connection.
    for i in 0..20 {
        let mut c = Client::connect(server.addr);
        let partial = &r#"{"cmd":"ping"#[..4 + (i % 9)];
        c.writer
            .write_all(partial.as_bytes())
            .expect("partial sent");
        drop(c);
    }

    // An oversized line is rejected with a diagnostic, then the
    // connection is closed — without disturbing anyone else.
    {
        let mut c = Client::connect(server.addr);
        let big = vec![b'a'; MAX_LINE + 4096];
        c.writer.write_all(&big).expect("oversized frame sent");
        let resp = c.read_line().expect("error response before close");
        assert!(resp.contains("line too long"), "{resp}");
        assert_eq!(c.read_line(), None, "connection closes after overflow");
    }

    // Pipelined frames and CRLF both work.
    {
        let mut c = Client::connect(server.addr);
        c.writer
            .write_all(b"{\"cmd\":\"ping\"}\r\n\r\n{\"cmd\":\"ping\"}\n")
            .expect("pipelined frames sent");
        assert_eq!(c.read_line().as_deref(), Some(r#"{"ok":true,"epoch":0}"#));
        assert_eq!(c.read_line().as_deref(), Some(r#"{"ok":true,"epoch":0}"#));
    }

    // After all the abuse the server is still alive and serving.
    assert!(
        server.child.try_wait().expect("probe").is_none(),
        "server died during the fuzz run"
    );
    let mut c = Client::connect(server.addr);
    assert_eq!(
        c.send(r#"{"cmd":"truth","object":"c1","query":"fly(tweety)"}"#),
        r#"{"ok":true,"epoch":0,"truth":"true"}"#
    );
    c.send(r#"{"cmd":"shutdown"}"#);
    std::fs::remove_file(&program).ok();
}

// ------------------------------------------------- limits and partial

/// `n` mutually defeating pairs in an incomparable layout: 2^n stable
/// models, enough to outlast any small budget (the CLI suite's
/// `big_choice`, served).
fn big_choice_src(n: usize) -> String {
    let mut src = String::from("module c2 {\n");
    for i in 0..n {
        src.push_str(&format!("  a{i}. b{i}.\n"));
    }
    src.push_str("}\nmodule c1 < c2 {\n");
    for i in 0..n {
        src.push_str(&format!("  -a{i} :- b{i}.\n  -b{i} :- a{i}.\n"));
    }
    src.push_str("}\n");
    src
}

#[test]
fn exhausted_budgets_answer_partial_json_not_failure() {
    let program = write_program("limits", &big_choice_src(16));
    let server = spawn_serve(&[program.to_str().unwrap()], &[]);
    let mut c = Client::connect(server.addr);

    // Per-request deadline on a 2^16-model enumeration: the JSON twin
    // of the CLI's PARTIAL banner — ok:true, partial:true, a reason,
    // and whatever sound prefix was enumerated.
    let resp = c.send(r#"{"cmd":"query","object":"c1","semantics":"stable","timeout_ms":20}"#);
    assert!(
        resp.starts_with(r#"{"ok":true,"epoch":0,"partial":true,"#),
        "{resp}"
    );
    assert!(resp.contains(r#""reason":"deadline exceeded""#), "{resp}");
    assert!(resp.contains(r#""models":["#), "{resp}");

    // A model cap interrupts deterministically with exactly that many
    // models in the partial payload.
    let resp = c.send(r#"{"cmd":"query","object":"c1","semantics":"stable","max_models":3}"#);
    assert!(resp.contains(r#""reason":"model cap reached""#), "{resp}");
    // Each rendered model in the partial payload is a `"{...}"` string:
    // a sound, non-empty prefix never exceeding the cap (under parallel
    // enumeration the exact count at the interrupt point can be lower).
    let n_models = resp.matches("\"{").count();
    assert!((1..=3).contains(&n_models), "{resp}");

    // Connection-level default via `set`: later requests inherit it.
    assert_eq!(
        c.send(r#"{"cmd":"set","timeout_ms":20}"#),
        r#"{"ok":true,"epoch":0}"#
    );
    let resp = c.send(r#"{"cmd":"query","object":"c1","semantics":"stable"}"#);
    assert!(resp.contains(r#""partial":true"#), "{resp}");
    // ...and a per-request 0 lifts it again (unlimited), so a cheap
    // read completes.
    let resp = c.send(r#"{"cmd":"truth","object":"c1","query":"a0","timeout_ms":0}"#);
    assert_eq!(resp, r#"{"ok":true,"epoch":0,"truth":"undefined"}"#);

    // An interrupted WRITE is not applied: the epoch must not move and
    // the error is explicit.
    let resp = c.send(r#"{"cmd":"assert","object":"c2","rule":"c0.","max_steps":1}"#);
    assert!(
        resp.starts_with(r#"{"ok":false,"error":"interrupted","reason":""#),
        "{resp}"
    );
    assert_eq!(c.send(r#"{"cmd":"ping"}"#), r#"{"ok":true,"epoch":0}"#);
    // Without the budget the same mutation applies.
    assert_eq!(
        c.send(r#"{"cmd":"assert","object":"c2","rule":"c0."}"#),
        r#"{"ok":true,"epoch":1,"seq":null}"#
    );

    c.send(r#"{"cmd":"shutdown"}"#);
    std::fs::remove_file(&program).ok();
}

// ------------------------------------------------- admission control

#[test]
fn admission_control_refuses_excess_connections_cleanly() {
    let mut b = KbBuilder::new();
    b.rules("main", "p.").expect("parses");
    let kb = b.build(GroundStrategy::Smart).expect("grounds");
    let server = Server::bind(
        ServerConfig {
            listen: "127.0.0.1:0".into(),
            max_conns: 2,
            max_queries: 8,
            default_timeout: None,
        },
        ServeKb::Plain(Box::new(kb)),
    )
    .expect("binds");
    let addr = server.local_addr().expect("bound address");
    let handle = std::thread::spawn(move || server.run());

    let mut c1 = Client::connect(addr);
    let mut c2 = Client::connect(addr);
    assert!(c1.send(r#"{"cmd":"ping"}"#).contains("true"));
    assert!(c2.send(r#"{"cmd":"ping"}"#).contains("true"));

    // The third connection is refused with a protocol-level busy line,
    // not a hang and not a silent reset.
    let mut c3 = Client::connect(addr);
    let resp = c3.read_line().expect("busy line");
    assert_eq!(resp, r#"{"ok":false,"error":"busy","epoch":0}"#);
    assert_eq!(c3.read_line(), None);

    // Freeing a slot readmits new clients (the worker notices the EOF
    // within its poll interval).
    drop(c1);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut c = Client::connect(addr);
        if let Some(resp) = c.read_line_after_ping() {
            if resp.contains(r#""ok":true"#) {
                c.send(r#"{"cmd":"shutdown"}"#);
                break;
            }
        }
        assert!(Instant::now() < deadline, "slot never freed");
        std::thread::sleep(Duration::from_millis(25));
    }
    drop(c2);
    handle.join().expect("server thread").expect("clean exit");
}

impl Client {
    /// Sends a ping and reads one line, tolerating a connection the
    /// server refused (returns the busy line) or reset (`None`).
    fn read_line_after_ping(&mut self) -> Option<String> {
        if self.writer.write_all(b"{\"cmd\":\"ping\"}\n").is_err() {
            return None;
        }
        self.read_line()
    }
}

// ------------------------------------- snapshot isolation (proptest)

/// Starts an in-process server on an ephemeral port serving a
/// mutation-stream base program over object `main`.
fn start_inproc(
    base: &str,
    max_conns: usize,
) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let mut b = KbBuilder::new();
    b.rules("main", base).expect("base parses");
    let kb = b.build(GroundStrategy::Smart).expect("base grounds");
    let server = Server::bind(
        ServerConfig {
            listen: "127.0.0.1:0".into(),
            max_conns,
            max_queries: 16,
            default_timeout: None,
        },
        ServeKb::Plain(Box::new(kb)),
    )
    .expect("binds");
    let addr = server.local_addr().expect("bound address");
    (addr, std::thread::spawn(move || server.run()))
}

/// Sequentially replays `ops` on a fresh KB and records the rendered
/// least model after every prefix: `models[e]` is the unique correct
/// answer at epoch `e`.
fn sequential_models(base: &str, ops: &[olp_workload::Mutation]) -> Vec<String> {
    let mut b = KbBuilder::new();
    b.rules("main", base).expect("base parses");
    let mut kb: Kb = b.build(GroundStrategy::Smart).expect("base grounds");
    let render = |kb: &mut Kb| {
        let m = kb.model("main").expect("least model").clone();
        kb.render(&m)
    };
    let mut out = vec![render(&mut kb)];
    for op in ops {
        match op {
            olp_workload::Mutation::Assert { object, rule } => {
                kb.assert_rule(object, rule).expect("assert applies")
            }
            olp_workload::Mutation::Retract { object, rule } => {
                assert!(kb.retract_rule(object, rule).expect("retract applies"));
            }
        }
        out.push(render(&mut kb));
    }
    out
}

proptest! {
    // Scaled by PROPTEST_CASES (the deep-fuzz CI job sets 256).
    #![proptest_config(ProptestConfig::default())]

    /// Readers racing a writer must each see EXACTLY the sequential
    /// model of the epoch their response reports — byte-identical, at
    /// every interleaving. Epochs must also never run backwards on one
    /// connection.
    #[test]
    fn concurrent_reads_match_sequential_replay_at_reported_epoch(
        seed in 0u64..10_000,
        n_ops in 4usize..14,
    ) {
        let cfg = olp_workload::MutationCfg {
            n_base: 10,
            n_mutations: n_ops,
            ..olp_workload::MutationCfg::default()
        };
        let (base, ops) = olp_workload::mutation_stream(&cfg, seed);
        let (addr, handle) = start_inproc(&base, 4);

        let done = AtomicBool::new(false);
        let observed: Vec<(u64, String)> = std::thread::scope(|s| {
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let done = &done;
                    s.spawn(move || {
                        let mut c = Client::connect(addr);
                        let mut seen = Vec::new();
                        let mut last = 0u64;
                        while !done.load(Ordering::SeqCst) {
                            let resp = c.send(r#"{"cmd":"query","object":"main"}"#);
                            let epoch = field_u64(&resp, "epoch").expect("epoch field");
                            assert!(epoch >= last, "epoch ran backwards: {last} -> {epoch}");
                            last = epoch;
                            let model = field_str(&resp, "model").expect("model field");
                            seen.push((epoch, model.to_string()));
                        }
                        seen
                    })
                })
                .collect();

            // The writer: one op at a time, tiny jitter so responses
            // land at many different epochs.
            let mut w = Client::connect(addr);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
            for (i, op) in ops.iter().enumerate() {
                let (cmd, object, rule) = match op {
                    olp_workload::Mutation::Assert { object, rule } => ("assert", object, rule),
                    olp_workload::Mutation::Retract { object, rule } => ("retract", object, rule),
                };
                let resp = w.send(&format!(
                    r#"{{"cmd":"{cmd}","object":"{object}","rule":"{rule}"}}"#
                ));
                assert!(resp.starts_with(r#"{"ok":true"#), "write {i} failed: {resp}");
                assert_eq!(field_u64(&resp, "epoch"), Some(i as u64 + 1), "{resp}");
                if rng.gen_bool(0.5) {
                    std::thread::sleep(Duration::from_micros(rng.gen_range(0u64..1500)));
                }
            }
            done.store(true, Ordering::SeqCst);
            let mut all = Vec::new();
            for r in readers {
                all.extend(r.join().expect("reader thread"));
            }
            w.send(r#"{"cmd":"shutdown"}"#);
            all
        });
        handle.join().expect("server thread").expect("clean exit");

        let reference = sequential_models(&base, &ops);
        for (epoch, model) in &observed {
            prop_assert_eq!(
                model,
                &reference[*epoch as usize],
                "response at epoch {} diverged from the sequential replay (seed {})",
                epoch,
                seed
            );
        }
    }
}

// ------------------------------------------------------ writer stall

#[test]
fn slow_writer_never_blocks_readers() {
    let program = write_program("stall", PENGUIN);
    let server = spawn_serve(
        &[program.to_str().unwrap()],
        &[("OLP_SERVE_WRITE_DELAY_MS", "400")],
    );
    let addr = server.addr;

    std::thread::scope(|s| {
        let writer = s.spawn(move || {
            let mut w = Client::connect(addr);
            let t = Instant::now();
            let resp = w.send(r#"{"cmd":"assert","object":"c2","rule":"bird(robin)."}"#);
            (resp, t.elapsed())
        });
        // Give the write a moment to reach the stalled writer thread,
        // then hammer reads: each must come back immediately off the
        // still-published previous snapshot.
        std::thread::sleep(Duration::from_millis(60));
        let mut r = Client::connect(addr);
        for _ in 0..8 {
            let t = Instant::now();
            let resp = r.send(r#"{"cmd":"truth","object":"c1","query":"fly(tweety)"}"#);
            let lat = t.elapsed();
            assert!(resp.contains(r#""truth":"true""#), "{resp}");
            assert!(
                lat < Duration::from_millis(300),
                "read stalled {lat:?} behind a slow writer"
            );
        }
        let (resp, took) = writer.join().expect("writer thread");
        assert_eq!(resp, r#"{"ok":true,"epoch":1,"seq":null}"#);
        assert!(
            took >= Duration::from_millis(400),
            "stall env ignored ({took:?})"
        );
        let mut c = Client::connect(addr);
        c.send(r#"{"cmd":"shutdown"}"#);
    });
    std::fs::remove_file(&program).ok();
}

// --------------------------------------- crash recovery under traffic

#[test]
fn kill9_under_traffic_recovers_and_resumes_from_logged_seq() {
    const SEED: u64 = 0xC0FFEE ^ 9;
    const N_OPS: usize = 80;
    let cfg = olp_workload::MutationCfg {
        n_base: 32,
        n_mutations: N_OPS,
        ..olp_workload::MutationCfg::default()
    };
    let (base, ops) = olp_workload::mutation_stream(&cfg, SEED);
    let program = write_program("crash", &format!("module main {{\n{base}}}\n"));
    let db = scratch("crashdb");
    let db_arg = db.to_str().unwrap().to_string();

    // Round 1: serve --db, apply the stream over TCP with reader
    // traffic racing it, and kill -9 mid-stream.
    let mut server = spawn_serve(&[program.to_str().unwrap(), "--db", &db_arg], &[]);
    let addr = server.addr;
    let stop = AtomicBool::new(false);
    let acked = std::thread::scope(|s| {
        let stop_ref = &stop;
        let reader = s.spawn(move || {
            // Background read traffic; the connection dying when the
            // server is killed is expected, not an error.
            let mut c = Client::connect(addr);
            let mut n = 0u64;
            while !stop_ref.load(Ordering::SeqCst) {
                if c.read_line_after_ping().is_none() {
                    break;
                }
                n += 1;
            }
            n
        });
        let mut w = Client::connect(addr);
        let kill_at = N_OPS / 2;
        let mut applied = 0usize;
        for op in ops.iter().take(kill_at) {
            let (cmd, object, rule) = match op {
                olp_workload::Mutation::Assert { object, rule } => ("assert", object, rule),
                olp_workload::Mutation::Retract { object, rule } => ("retract", object, rule),
            };
            let resp = w.send(&format!(
                r#"{{"cmd":"{cmd}","object":"{object}","rule":"{rule}"}}"#
            ));
            assert!(resp.starts_with(r#"{"ok":true"#), "write failed: {resp}");
            assert_eq!(field_u64(&resp, "seq"), Some(applied as u64 + 1), "{resp}");
            applied += 1;
        }
        server.child.kill().expect("SIGKILL delivered");
        let _ = server.child.wait();
        stop.store(true, Ordering::SeqCst);
        let reads = reader.join().expect("reader thread");
        assert!(reads > 0, "reader never got a response before the kill");
        applied
    });
    drop(server);

    // Round 2: restart on the same database. Recovery must land
    // exactly at the acknowledged sequence number — every acked op
    // durable, no op applied twice (the kill landed between ops here,
    // so there is no in-flight ambiguity).
    let server = spawn_serve(&[program.to_str().unwrap(), "--db", &db_arg], &[]);
    let mut c = Client::connect(server.addr);
    let stats = c.send(r#"{"cmd":"stats"}"#);
    let recovered_seq = field_u64(&stats, "seq").expect("seq field") as usize;
    assert_eq!(
        recovered_seq, acked,
        "recovery lost or duplicated acked ops: {stats}"
    );

    // Resume the stream from where the log says we are.
    for op in ops.iter().skip(recovered_seq) {
        let (cmd, object, rule) = match op {
            olp_workload::Mutation::Assert { object, rule } => ("assert", object, rule),
            olp_workload::Mutation::Retract { object, rule } => ("retract", object, rule),
        };
        let resp = c.send(&format!(
            r#"{{"cmd":"{cmd}","object":"{object}","rule":"{rule}"}}"#
        ));
        assert!(
            resp.starts_with(r#"{"ok":true"#),
            "resumed write failed: {resp}"
        );
        if cmd == "retract" {
            assert!(resp.contains(r#""removed":true"#), "{resp}");
        }
    }
    let stats = c.send(r#"{"cmd":"stats"}"#);
    assert_eq!(field_u64(&stats, "seq"), Some(N_OPS as u64), "{stats}");

    // The served model must be byte-identical to a survivor that
    // applied the whole stream in-process without ever crashing.
    let resp = c.send(r#"{"cmd":"query","object":"main"}"#);
    let served = field_str(&resp, "model").expect("model field").to_string();
    let survivor = {
        let mut b = KbBuilder::new();
        b.rules("main", &base).expect("base parses");
        let mut kb = b.build(GroundStrategy::Smart).expect("base grounds");
        for op in &ops {
            match op {
                olp_workload::Mutation::Assert { object, rule } => {
                    kb.assert_rule(object, rule).expect("assert applies")
                }
                olp_workload::Mutation::Retract { object, rule } => {
                    assert!(kb.retract_rule(object, rule).expect("retract applies"));
                }
            }
        }
        let m = kb.model("main").expect("least model").clone();
        kb.render(&m)
    };
    assert_eq!(
        served, survivor,
        "recovered server diverged from the survivor"
    );

    c.send(r#"{"cmd":"shutdown"}"#);
    std::fs::remove_file(&program).ok();
    std::fs::remove_dir_all(&db).ok();
}
