//! Knowledge-base-level analyzer wiring: `Kb::analyze`,
//! `KbBuilder::build_checked`, the `QueryOptions::deny_warnings` knob on
//! mutations, and span-table alignment across live retraction.

use ordered_logic::analyze::Code;
use ordered_logic::kb::KbError;
use ordered_logic::prelude::*;

#[test]
fn kb_analyze_reports_findings_without_spans() {
    let mut b = KbBuilder::new();
    b.rules("main", "q(a). p(X) :- q(a).").unwrap();
    let kb = b.build(GroundStrategy::Smart).unwrap();
    let diags = kb.analyze();
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, Code::UnsafeRule);
    // Builder-assembled programs carry no source spans...
    assert!(diags[0].pos.is_none());
    // ...but still pinpoint the rule structurally.
    assert_eq!(diags[0].rule, Some(1));
}

#[test]
fn build_checked_accepts_clean_and_rejects_warned_programs() {
    let mut b = KbBuilder::new();
    b.rules("main", "q(a). p(X) :- q(X).").unwrap();
    assert!(b.build_checked(GroundStrategy::Smart).is_ok());

    let mut b = KbBuilder::new();
    b.rules("main", "q(a). p(X) :- q(a).").unwrap();
    match b.build_checked(GroundStrategy::Smart) {
        Err(KbError::Rejected(diags)) => {
            assert_eq!(diags[0].code, Code::UnsafeRule);
            let rendered = KbError::Rejected(diags).to_string();
            assert!(rendered.contains("W01"), "{rendered}");
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
}

#[test]
fn deny_warnings_rejects_asserts_that_introduce_findings() {
    let mut b = KbBuilder::new();
    b.rules("main", "q(a). p(X) :- q(X).").unwrap();
    let mut kb = b.build(GroundStrategy::Smart).unwrap();
    let deny = QueryOptions::new().deny_warnings();

    // `t` is undefined: the new rule brings a W02 with it.
    match kb.assert_rule_with("main", "s(X) :- t(X).", &deny) {
        Err(KbError::Rejected(diags)) => {
            assert!(diags.iter().any(|d| d.code == Code::UndefinedPredicate));
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    // Rolled back: the program is unchanged and still clean.
    assert!(kb.analyze().is_empty());
    assert_eq!(kb.truth("main", "p(a)").unwrap(), Truth::True);

    // A benign assert passes the same gate and is applied.
    kb.assert_rule_with("main", "q(b).", &deny)
        .unwrap()
        .expect_complete("unlimited");
    assert_eq!(kb.truth("main", "p(b)").unwrap(), Truth::True);

    // Without the knob the warned assert is accepted (back-compat).
    kb.assert_rule("main", "s(X) :- t(X).").unwrap();
    assert!(!kb.analyze().is_empty());
}

#[test]
fn deny_warnings_rejects_retracts_that_orphan_dependents() {
    let mut b = KbBuilder::new();
    b.rules("main", "q(a). p(a) :- q(a).").unwrap();
    let mut kb = b.build(GroundStrategy::Smart).unwrap();
    let deny = QueryOptions::new().deny_warnings();

    // Removing the only `q` definition makes `p`'s body undefined.
    match kb.retract_rule_with("main", "q(a).", &deny) {
        Err(KbError::Rejected(diags)) => {
            assert!(diags.iter().any(|d| d.code == Code::UndefinedPredicate));
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    assert_eq!(kb.truth("main", "q(a)").unwrap(), Truth::True, "unchanged");

    // Plain options still allow it.
    let removed = kb.retract_rule("main", "q(a).").unwrap();
    assert!(removed);
    assert_eq!(kb.truth("main", "q(a)").unwrap(), Truth::Undefined);
}

#[test]
fn spans_stay_aligned_across_live_retraction() {
    // Load through the parser so the span table is populated, retract a
    // *middle* rule, and check the surviving finding still points at
    // its original source line.
    let src = "q(a).\nr(a).\np(X) :- q(X), q(Y).\n";
    let mut world = World::new();
    let prog = parse_program(&mut world, src).unwrap();
    let mut kb = KbBuilder::from_parts(world, prog)
        .build(GroundStrategy::Smart)
        .unwrap();

    let before = kb.analyze();
    assert_eq!(before.len(), 1, "{before:?}");
    assert_eq!(before[0].code, Code::SingletonVariable);
    assert_eq!(before[0].pos.unwrap().line, 3);

    let removed = kb.retract_rule("main", "r(a).").unwrap();
    assert!(removed);

    let after = kb.analyze();
    assert_eq!(after.len(), 1, "{after:?}");
    assert_eq!(after[0].code, Code::SingletonVariable);
    assert_eq!(
        after[0].pos.unwrap().line,
        3,
        "span must survive removal of an earlier rule"
    );
    assert_eq!(after[0].rule, Some(1), "rule index shifted down with it");
}

#[test]
fn exhaustive_strategy_takes_the_same_gates() {
    let mut b = KbBuilder::new();
    b.rules("main", "q(a). p(a) :- q(a).").unwrap();
    let mut kb = b.build(GroundStrategy::Exhaustive).unwrap();
    let deny = QueryOptions::new().deny_warnings();
    assert!(matches!(
        kb.retract_rule_with("main", "q(a).", &deny),
        Err(KbError::Rejected(_))
    ));
    kb.assert_rule_with("main", "q(b).", &deny)
        .unwrap()
        .expect_complete("unlimited");
    assert_eq!(kb.truth("main", "p(a)").unwrap(), Truth::True);
}
