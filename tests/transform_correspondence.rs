//! Mechanical validation of the paper's §3–§4 correspondence results
//! (experiments E8, E9, T3–T5 of DESIGN.md) on random programs:
//!
//! * Prop. 3 — every model of `OV(C)` in `C` is a 3-valued model of `C`
//!   (converse fails: Example 7).
//! * Prop. 4 — assumption-free models of `OV(C)` = founded 3-valued
//!   models of `C` (Saccà–Zaniolo).
//! * Cor. 1 — stable models of `OV(C)` = partial stable models of `C`;
//!   the total ones are exactly the Gelfond–Lifschitz stable models.
//! * Prop. 5 — `EV(C)` captures *all* 3-valued models (a), its
//!   assumption-free models sandwich `OV`'s (b, c), and its stable
//!   models coincide with `OV`'s (d).
//! * Thm. 2 — for negative programs, Definition 10 (3-level semantics)
//!   = Definition 11 (direct semantics).

use olp_core::{BitSet, GLit, Rule};
use olp_workload::{random_negative, random_seminegative, RandomCfg};
use ordered_logic::classic::{
    founded_models, is_3valued_model, partial_stable_models, stable_models_total, NafProgram,
};
use ordered_logic::prelude::*;
use ordered_logic::semantics::{enumerate_assumption_free, enumerate_models};
use ordered_logic::transform::{
    assumption_free_models_direct, is_assumption_free_direct, is_model_direct, stable_models_direct,
};
use proptest::prelude::*;

fn cfg(n_atoms: usize, n_rules: usize) -> RandomCfg {
    RandomCfg {
        n_atoms,
        n_rules,
        max_body: 2,
        neg_head_prob: 0.4, // only used by random_negative
        neg_body_prob: 0.5,
        n_components: 1,
        edge_prob: 0.0,
    }
}

/// Grounds the flat program `rules` (as its own single-component
/// program) and its OV / EV versions in one shared world, so atom ids
/// agree everywhere. Returns (world, flat ground rules, NafProgram,
/// ov ground + comp, ev ground + comp, n_atoms).
struct Setup {
    w: World,
    naf: NafProgram,
    ov: GroundProgram,
    ov_c: CompId,
    ev: GroundProgram,
    ev_c: CompId,
    n_atoms: usize,
}

fn setup_seminegative(seed: u64, c: &RandomCfg) -> Setup {
    let mut w = World::new();
    let flat = random_seminegative(&mut w, c, seed);
    let rules: Vec<Rule> = flat.components[0].rules.clone();
    let gc = GroundConfig::default();
    let flat_ground = ground_exhaustive(&mut w, &flat, &gc).unwrap();
    let (ov_prog, ov_c) = ordered_version(&mut w, &rules);
    let ov = ground_exhaustive(&mut w, &ov_prog, &gc).unwrap();
    let (ev_prog, ev_c) = extended_version(&mut w, &rules);
    let ev = ground_exhaustive(&mut w, &ev_prog, &gc).unwrap();
    let n_atoms = w.atoms.len();
    let mut naf = NafProgram::from_ground(&flat_ground).unwrap();
    naf.n_atoms = n_atoms;
    Setup {
        w,
        naf,
        ov,
        ov_c,
        ev,
        ev_c,
        n_atoms,
    }
}

/// All 3-valued interpretations over `0..n` atoms (3^n; keep n small).
fn all_interpretations(n: usize) -> Vec<Interpretation> {
    let mut out = vec![Interpretation::new()];
    for a in 0..n {
        let mut next = Vec::with_capacity(out.len() * 3);
        for i in out {
            next.push(i.clone());
            let mut t = i.clone();
            t.insert(GLit::pos(olp_core::AtomId(a as u32))).unwrap();
            next.push(t);
            let mut f = i;
            f.insert(GLit::neg(olp_core::AtomId(a as u32))).unwrap();
            next.push(f);
        }
        out = next;
    }
    out
}

fn sorted_renders(w: &World, ms: &[Interpretation]) -> Vec<String> {
    let mut v: Vec<String> = ms.iter().map(|m| m.render(w)).collect();
    v.sort();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A correspondence the paper does not state but which follows from
    /// its constructions (derived and proved in this reproduction): the
    /// least model of OV(C) in C equals the Fitting (Kripke–Kleene)
    /// model of C — the CWA facts fire exactly under Φ's falsity
    /// condition, the program rules exactly under its truth condition.
    #[test]
    fn new_correspondence_ov_lfp_is_fitting(seed in 0u64..10_000) {
        let s = setup_seminegative(seed, &cfg(5, 8));
        let v = View::new(&s.ov, s.ov_c);
        let lfp = least_model(&v);
        let fitting = ordered_logic::classic::fitting_model(&s.naf);
        prop_assert_eq!(
            lfp.render(&s.w),
            fitting.render(&s.w),
            "V∞(OV) ≠ Fitting (seed {})", seed
        );
    }

    /// WFS ⊆ skeptical stable consequences of OV(C): the well-founded
    /// model is contained in every partial stable model [P3], which by
    /// Cor. 1 are exactly the stable models of OV(C) — so it survives
    /// the intersection. (This is the containment direction of the §5
    /// future-work "ordered well-founded semantics"; see
    /// `olp_semantics::skeptical`.)
    #[test]
    fn wfs_below_ov_skeptical(seed in 0u64..10_000) {
        let s = setup_seminegative(seed, &cfg(4, 6));
        let v = View::new(&s.ov, s.ov_c);
        let sk = ordered_logic::semantics::skeptical_consequences(&v, s.n_atoms);
        let wfm = ordered_logic::classic::well_founded_model(&s.naf);
        prop_assert!(
            wfm.is_subset(&sk),
            "WFS ⊄ skeptical(OV) (seed {}): wfs {} sk {}",
            seed, wfm.render(&s.w), sk.render(&s.w)
        );
    }

    /// The OV↔Fitting correspondence also holds at the non-ground
    /// level: random safe Datalog programs with variables, grounded
    /// through the full pipeline.
    #[test]
    fn ov_lfp_is_fitting_nonground(seed in 0u64..5_000) {
        use olp_workload::{random_datalog, DatalogCfg};
        let dcfg = DatalogCfg {
            neg_head_prob: 0.0,
            n_components: 1,
            ..DatalogCfg::default()
        };
        let mut w = World::new();
        let flat = random_datalog(&mut w, &dcfg, seed);
        let rules: Vec<Rule> = flat.components[0].rules.clone();
        let gc = GroundConfig::default();
        let flat_ground = ground_exhaustive(&mut w, &flat, &gc).unwrap();
        let (ov, c) = ordered_version(&mut w, &rules);
        let ovg = ground_exhaustive(&mut w, &ov, &gc).unwrap();
        let n_atoms = w.atoms.len();
        let mut naf = NafProgram::from_ground(&flat_ground).unwrap();
        naf.n_atoms = n_atoms;
        let lfp = least_model(&View::new(&ovg, c));
        let fitting = ordered_logic::classic::fitting_model(&naf);
        prop_assert_eq!(
            lfp.render(&w),
            fitting.render(&w),
            "non-ground OV ≠ Fitting (seed {})", seed
        );
    }

    /// Prop. 3: every model of OV(C) in C is a 3-valued model of C.
    #[test]
    fn prop3_ov_models_are_3valued(seed in 0u64..10_000) {
        let s = setup_seminegative(seed, &cfg(4, 6));
        let v = View::new(&s.ov, s.ov_c);
        for m in enumerate_models(&v, s.n_atoms, None) {
            prop_assert!(
                is_3valued_model(&s.naf, &m),
                "OV model {} is not a 3-valued model", m.render(&s.w)
            );
        }
    }

    /// Prop. 4: assumption-free models of OV(C) in C == founded
    /// 3-valued models of C, as sets.
    #[test]
    fn prop4_ov_assumption_free_eq_founded(seed in 0u64..10_000) {
        let s = setup_seminegative(seed, &cfg(4, 6));
        let v = View::new(&s.ov, s.ov_c);
        let af = enumerate_assumption_free(&v, s.n_atoms);
        // The AF enumeration restricts to derivable atoms; founded
        // models are enumerated over everything — but foundedness
        // forces undefinedness outside the derivable set, so the sets
        // must match exactly.
        let founded = founded_models(&s.naf);
        prop_assert_eq!(
            sorted_renders(&s.w, &af),
            sorted_renders(&s.w, &founded),
            "Prop 4 mismatch (seed {})", seed
        );
    }

    /// Cor. 1: stable models of OV(C) in C == partial stable models of
    /// C; their total members are exactly the GL stable models.
    #[test]
    fn cor1_ov_stable_eq_partial_stable(seed in 0u64..10_000) {
        let s = setup_seminegative(seed, &cfg(4, 6));
        let v = View::new(&s.ov, s.ov_c);
        let ov_stable = stable_models(&v, s.n_atoms);
        let ps = partial_stable_models(&s.naf);
        prop_assert_eq!(
            sorted_renders(&s.w, &ov_stable),
            sorted_renders(&s.w, &ps),
            "Cor 1 mismatch (seed {})", seed
        );
        // Total members ↔ GL stable sets.
        let gl = stable_models_total(&s.naf);
        let total_stable: Vec<BitSet> = ov_stable
            .iter()
            .filter(|m| m.is_total(s.n_atoms))
            .map(|m| m.pos_atoms().map(|a| a.index()).collect())
            .collect();
        let mut a: Vec<String> = total_stable
            .iter()
            .map(|b| NafProgram::render_atoms(&s.w, b))
            .collect();
        a.sort();
        let mut b: Vec<String> = gl
            .iter()
            .map(|b| NafProgram::render_atoms(&s.w, b))
            .collect();
        b.sort();
        prop_assert_eq!(a, b, "total stable ≠ GL stable (seed {})", seed);
    }

    /// Prop. 5a: M is a 3-valued model of C iff M is a model of EV(C)
    /// in C — over ALL interpretations.
    #[test]
    fn prop5a_ev_models_eq_3valued(seed in 0u64..10_000) {
        let s = setup_seminegative(seed, &cfg(3, 5));
        let v = View::new(&s.ev, s.ev_c);
        for m in all_interpretations(s.n_atoms) {
            prop_assert_eq!(
                is_model(&v, &m, s.n_atoms),
                is_3valued_model(&s.naf, &m),
                "Prop 5a mismatch on {} (seed {})", m.render(&s.w), seed
            );
        }
    }

    /// Prop. 5b + 5c: AF(OV) ⊆ AF(EV), and every AF(EV) model is ⊆
    /// some AF(OV) model.
    #[test]
    fn prop5bc_af_sandwich(seed in 0u64..10_000) {
        let s = setup_seminegative(seed, &cfg(4, 6));
        let ov_v = View::new(&s.ov, s.ov_c);
        let ev_v = View::new(&s.ev, s.ev_c);
        let af_ov = enumerate_assumption_free(&ov_v, s.n_atoms);
        let af_ev = enumerate_assumption_free(&ev_v, s.n_atoms);
        for m in &af_ov {
            prop_assert!(af_ev.contains(m), "5b violated (seed {})", seed);
        }
        for m in &af_ev {
            prop_assert!(
                af_ov.iter().any(|n| m.is_subset(n)),
                "5c violated (seed {})", seed
            );
        }
    }

    /// Prop. 5d: stable(OV) == stable(EV).
    #[test]
    fn prop5d_stable_coincide(seed in 0u64..10_000) {
        let s = setup_seminegative(seed, &cfg(4, 6));
        let ov_v = View::new(&s.ov, s.ov_c);
        let ev_v = View::new(&s.ev, s.ev_c);
        prop_assert_eq!(
            sorted_renders(&s.w, &stable_models(&ov_v, s.n_atoms)),
            sorted_renders(&s.w, &stable_models(&ev_v, s.n_atoms)),
            "Prop 5d mismatch (seed {})", seed
        );
    }

    /// Theorem 2: Definition 10 (3-level semantics) == Definition 11
    /// (direct semantics) for negative programs — models,
    /// assumption-free models, and stable models.
    #[test]
    fn thm2_direct_equals_three_level(seed in 0u64..10_000) {
        let mut w = World::new();
        let flat = random_negative(&mut w, &cfg(3, 5), seed);
        let rules: Vec<Rule> = flat.components[0].rules.clone();
        let gcfg = GroundConfig::default();
        let flat_ground = ground_exhaustive(&mut w, &flat, &gcfg).unwrap();
        let (tv_prog, cminus) = three_level_version(&mut w, &rules);
        let tv = ground_exhaustive(&mut w, &tv_prog, &gcfg).unwrap();
        let n_atoms = w.atoms.len();
        let v = View::new(&tv, cminus);

        // (a) models agree over all interpretations.
        for m in all_interpretations(n_atoms) {
            prop_assert_eq!(
                is_model(&v, &m, n_atoms),
                is_model_direct(&flat_ground.rules, &m),
                "Thm 2 (models) mismatch on {} (seed {})", m.render(&w), seed
            );
        }
        // (b) assumption-free models agree.
        let af_tv = enumerate_assumption_free(&v, n_atoms);
        let af_direct = assumption_free_models_direct(&flat_ground.rules, n_atoms);
        prop_assert_eq!(
            sorted_renders(&w, &af_tv),
            sorted_renders(&w, &af_direct),
            "Thm 2 (AF) mismatch (seed {})", seed
        );
        // (c) stable models agree.
        prop_assert_eq!(
            sorted_renders(&w, &stable_models(&v, n_atoms)),
            sorted_renders(&w, &stable_models_direct(&flat_ground.rules, n_atoms)),
            "Thm 2 (stable) mismatch (seed {})", seed
        );
        // Sanity: AF checks agree pointwise on models.
        for m in &af_tv {
            prop_assert!(is_assumption_free_direct(&flat_ground.rules, m));
        }
    }
}

/// Regression (seed 2128 of the negative-program soak): `¬p2` held
/// only by an *overruled* closed-world default. The literal Def. 11(b)
/// (assumption sets over I⁺ only) calls the model assumption-free; the
/// 3-level semantics rightly does not — negative literals need support
/// too. Pinned against both reconstructed checkers.
#[test]
fn thm2_negative_literals_need_support() {
    let mut w = World::new();
    let flat = parse_program(
        &mut w,
        "-p0 :- -p1, p2.
         p0 :- -p1.
         -p2 :- -p1, -p2.
         -p1 :- -p1.
         p2 :- -p2.",
    )
    .unwrap();
    let rules: Vec<Rule> = flat.components[0].rules.clone();
    let gcfg = GroundConfig::default();
    let flat_ground = ground_exhaustive(&mut w, &flat, &gcfg).unwrap();
    let (tv_prog, cminus) = three_level_version(&mut w, &rules);
    let tv = ground_exhaustive(&mut w, &tv_prog, &gcfg).unwrap();
    let n_atoms = w.atoms.len();
    let v = View::new(&tv, cminus);

    let m = Interpretation::from_literals(
        ["-p1", "-p2", "p0"]
            .iter()
            .map(|s| parse_ground_literal(&mut w, s).unwrap()),
    )
    .unwrap();
    // It IS a model on both sides…
    assert!(is_model(&v, &m, n_atoms));
    assert!(is_model_direct(&flat_ground.rules, &m));
    // …but not assumption-free on either: ¬p2's only non-circular
    // support is the CWA default, which the non-blocked rule
    // `p2 ← ¬p2` overrules.
    assert!(!ordered_logic::semantics::is_assumption_free(&v, &m));
    assert!(!is_assumption_free_direct(&flat_ground.rules, &m));
}

/// Example 7 (the Prop. 3 converse failure), pinned as a unit test:
/// {p} is a 3-valued model of {p ← ¬p} but not a model of OV in C.
#[test]
fn example7_converse_of_prop3_fails() {
    let mut w = World::new();
    let flat = parse_program(&mut w, "p :- -p.").unwrap();
    let rules = flat.components[0].rules.clone();
    let gc = GroundConfig::default();
    let flat_ground = ground_exhaustive(&mut w, &flat, &gc).unwrap();
    let naf = NafProgram::from_ground(&flat_ground).unwrap();
    let (ov_prog, c) = ordered_version(&mut w, &rules);
    let ov = ground_exhaustive(&mut w, &ov_prog, &gc).unwrap();
    let p = parse_ground_literal(&mut w, "p").unwrap();
    let m = Interpretation::from_literals([p]).unwrap();
    assert!(is_3valued_model(&naf, &m));
    assert!(!is_model(&View::new(&ov, c), &m, ov.n_atoms));
}

/// Example 6 pinned: the OV of the ancestor program computes the CWA
/// completion of transitive closure.
#[test]
fn example6_ancestor_ov_total() {
    let mut w = World::new();
    let flat = parse_program(
        &mut w,
        "parent(a,b). parent(b,c).
         anc(X,Y) :- parent(X,Y).
         anc(X,Y) :- parent(X,Z), anc(Z,Y).",
    )
    .unwrap();
    let rules = flat.components[0].rules.clone();
    let (ov_prog, c) = ordered_version(&mut w, &rules);
    let ov = ground_exhaustive(&mut w, &ov_prog, &GroundConfig::default()).unwrap();
    let m = least_model(&View::new(&ov, c));
    assert!(m.is_total(ov.n_atoms));
    assert!(m.holds(parse_ground_literal(&mut w, "anc(a,c)").unwrap()));
    assert!(m.holds(parse_ground_literal(&mut w, "-anc(b,a)").unwrap()));
    // And it agrees with the classical least-model + CWA of the
    // positive program.
    let flat_ground = {
        let flat2 = parse_program(
            &mut w,
            "module dup { parent(a,b). parent(b,c).
             anc(X,Y) :- parent(X,Y).
             anc(X,Y) :- parent(X,Z), anc(Z,Y). }",
        )
        .unwrap();
        ground_exhaustive(&mut w, &flat2, &GroundConfig::default()).unwrap()
    };
    let naf = NafProgram::from_ground(&flat_ground).unwrap();
    let lm = ordered_logic::classic::least_model_positive(&naf);
    for a in 0..flat_ground.n_atoms {
        let atom = olp_core::AtomId(a as u32);
        assert_eq!(
            m.holds(GLit::pos(atom)),
            lm.contains(a),
            "positive parts agree"
        );
    }
}
