//! Every figure and worked example of the paper, verified end to end
//! through the public facade (experiments E1–E10 of DESIGN.md).
//!
//! Each test states the paper's claim in its comment and checks it
//! mechanically. Section/figure references are to Laenens, Saccà &
//! Vermeir, "Extending Logic Programming", SIGMOD 1990.

use ordered_logic::prelude::*;
use ordered_logic::semantics::{enumerate_assumption_free, enumerate_models, has_total_model};

fn setup(src: &str) -> (World, OrderedProgram, GroundProgram) {
    let mut w = World::new();
    let p = parse_program(&mut w, src).expect("parses");
    let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).expect("grounds");
    (w, p, g)
}

fn comp(w: &World, p: &OrderedProgram, name: &str) -> CompId {
    p.component_by_name(w.syms.get(name).expect("component name interned"))
        .expect("component exists")
}

fn interp(w: &mut World, lits: &[&str]) -> Interpretation {
    Interpretation::from_literals(lits.iter().map(|s| parse_ground_literal(w, s).unwrap())).unwrap()
}

const FIG1: &str = "module c2 {
    bird(penguin). bird(pigeon).
    fly(X) :- bird(X).
    -ground_animal(X) :- bird(X).
 }
 module c1 < c2 {
    ground_animal(penguin).
    -fly(X) :- ground_animal(X).
 }";

const FIG1_COLLAPSED: &str = "bird(penguin). bird(pigeon).
 fly(X) :- bird(X).
 -ground_animal(X) :- bird(X).
 ground_animal(penguin).
 -fly(X) :- ground_animal(X).";

const FIG2: &str = "module c3 { rich(mimmo). -poor(X) :- rich(X). }
 module c2 { poor(mimmo). -rich(X) :- poor(X). }
 module c1 < c2, c3 { free_ticket(X) :- poor(X). }";

// ---------------------------------------------------------------- E1

/// Fig. 1 / Example 1: "the penguin does not fly since some rules in C2
/// are overruled in C1", while "C1 can inherit a rule from C2 to infer
/// that the pigeon flies".
#[test]
fn e1_fig1_overruling() {
    let (mut w, p, g) = setup(FIG1);
    let c1 = comp(&w, &p, "c1");
    let m = least_model(&View::new(&g, c1));
    let i1 = interp(
        &mut w,
        &[
            "bird(pigeon)",
            "bird(penguin)",
            "ground_animal(penguin)",
            "-ground_animal(pigeon)",
            "fly(pigeon)",
            "-fly(penguin)",
        ],
    );
    // The least model is exactly the paper's I1 (Example 2), which is
    // total, a model, and the unique stable model.
    assert_eq!(m, i1);
    assert!(m.is_total(g.n_atoms));
    assert!(is_model(&View::new(&g, c1), &m, g.n_atoms));
    let stable = stable_models(&View::new(&g, c1), g.n_atoms);
    assert_eq!(stable, vec![i1]);
}

/// E1 continued: from C2's own point of view, "to the best of the
/// knowledge of C2 the penguin is not a ground animal and flies".
#[test]
fn e1_fig1_view_from_c2() {
    let (mut w, p, g) = setup(FIG1);
    let c2 = comp(&w, &p, "c2");
    let m = least_model(&View::new(&g, c2));
    assert!(m.holds(parse_ground_literal(&mut w, "fly(penguin)").unwrap()));
    assert!(m.holds(parse_ground_literal(&mut w, "-ground_animal(penguin)").unwrap()));
}

// ---------------------------------------------------------------- E2

/// Example 2/3 on P̂1 (all of Fig. 1 collapsed into one component):
/// overruling becomes defeating, I1 is no longer a model, and the
/// least model Î1 leaves fly(penguin) and ground_animal(penguin)
/// undefined.
#[test]
fn e2_fig1_collapsed_defeating() {
    let (mut w, p, g) = setup(FIG1_COLLAPSED);
    let c = comp(&w, &p, "main");
    let v = View::new(&g, c);
    let i1 = interp(
        &mut w,
        &[
            "bird(pigeon)",
            "bird(penguin)",
            "ground_animal(penguin)",
            "-ground_animal(pigeon)",
            "fly(pigeon)",
            "-fly(penguin)",
        ],
    );
    assert!(!is_model(&v, &i1, g.n_atoms));
    let i1_hat = interp(
        &mut w,
        &[
            "bird(pigeon)",
            "bird(penguin)",
            "fly(pigeon)",
            "-ground_animal(pigeon)",
        ],
    );
    assert!(is_model(&v, &i1_hat, g.n_atoms));
    assert_eq!(least_model(&v), i1_hat);
    assert!(is_assumption_free(&v, &i1_hat));
}

// ---------------------------------------------------------------- E3

/// Fig. 2 / Examples 2–4: rich and poor defeat each other; "we cannot
/// establish whether mimmo is to receive a free ticket"; no total model
/// exists for P2 in C1; the empty set is the (only) assumption-free
/// model.
#[test]
fn e3_fig2_defeating() {
    let (mut w, p, g) = setup(FIG2);
    let c1 = comp(&w, &p, "c1");
    let v = View::new(&g, c1);
    let m = least_model(&v);
    assert!(m.is_empty());
    assert!(!has_total_model(&v, g.n_atoms));
    let af = enumerate_assumption_free(&v, g.n_atoms);
    assert_eq!(af.len(), 1);
    assert!(af[0].is_empty());
    // I2 = {rich(mimmo), poor(mimmo)} is an interpretation but not a
    // model (Example 3).
    let i2 = interp(&mut w, &["rich(mimmo)", "poor(mimmo)"]);
    assert!(!is_model(&v, &i2, g.n_atoms));
}

/// E3 continued: in C3's and C2's own views the verdicts are opposite
/// and total — the program means different things to different
/// components.
#[test]
fn e3_fig2_local_views() {
    let (mut w, p, g) = setup(FIG2);
    let rich = parse_ground_literal(&mut w, "rich(mimmo)").unwrap();
    let m3 = least_model(&View::new(&g, comp(&w, &p, "c3")));
    assert!(m3.holds(rich));
    let m2 = least_model(&View::new(&g, comp(&w, &p, "c2")));
    assert!(m2.holds(rich.complement()));
}

// ---------------------------------------------------------------- E4

/// Fig. 3 + §1: the loan program's three scenarios.
#[test]
fn e4_loan_scenarios() {
    let run = |facts: &str| {
        let src = format!(
            "module expert2 {{ take_loan :- inflation(X), X > 11. }}
             module expert4 {{ -take_loan :- loan_rate(X), X > 14. }}
             module expert3 < expert4 {{
                 take_loan :- inflation(X), loan_rate(Y), X > Y + 2.
             }}
             module myself < expert2, expert3 {{ {facts} }}"
        );
        let (mut w, p, g) = setup(&src);
        let myself = comp(&w, &p, "myself");
        let m = least_model(&View::new(&g, myself));
        let t = parse_ground_literal(&mut w, "take_loan").unwrap();
        (m.holds(t), m.holds(t.complement()))
    };
    // "as no rule can be actually fired, no inference is possible".
    assert_eq!(run(""), (false, false));
    // "it is possible to infer from Expert2 that take_loan is true".
    assert_eq!(run("inflation(12)."), (true, false));
    // "both pieces of information are defeated and nothing can be said".
    assert_eq!(run("inflation(12). loan_rate(16)."), (false, false));
    // "the rule of Expert4 is overruled by the rule of Expert3 …
    //  take_loan is inferred at myself level".
    assert_eq!(run("inflation(19). loan_rate(16)."), (true, false));
}

// ---------------------------------------------------------------- E5

/// Example 3, P3 = {a ← b, ¬a ← b}: the models are exactly
/// {b}, {¬b}, {a,¬b}, {¬a,¬b} and ∅ — in particular the Herbrand base
/// is not a model, unlike traditional logic programming.
#[test]
fn e5_p3_model_lattice() {
    let (w, p, g) = setup("a :- b. -a :- b.");
    let c = comp(&w, &p, "main");
    let v = View::new(&g, c);
    let models = enumerate_models(&v, g.n_atoms, None);
    let mut renders: Vec<String> = models.iter().map(|m| m.render(&w)).collect();
    renders.sort();
    let mut expected: Vec<String> = ["{}", "{b}", "{-b}", "{-b, a}", "{-a, -b}"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    expected.sort();
    assert_eq!(renders, expected);
    // The empty set is the only assumption-free model of P3.
    let af = enumerate_assumption_free(&v, g.n_atoms);
    assert_eq!(af.len(), 1);
    assert!(af[0].is_empty());
}

// ---------------------------------------------------------------- E6

/// Example 4, P4 = {a ← b}: only ∅ is assumption-free ("no ground
/// literal is true without making some assumption"); {¬a,¬b} is a model
/// but not assumption-free; adding the CWA component C2 = {¬a., ¬b.}
/// above makes {¬a,¬b} the only… an assumption-free model.
#[test]
fn e6_p4_and_cwa_component() {
    let (mut w, p, g) = setup("a :- b.");
    let c = comp(&w, &p, "main");
    let v = View::new(&g, c);
    let af = enumerate_assumption_free(&v, g.n_atoms);
    assert_eq!(af.len(), 1);
    assert!(af[0].is_empty());
    let nn = interp(&mut w, &["-a", "-b"]);
    assert!(is_model(&v, &nn, g.n_atoms));
    assert!(!is_assumption_free(&v, &nn));

    let (mut w2, p2, g2) = setup("module c2 { -a. -b. } module c1 < c2 { a :- b. }");
    let c1 = comp(&w2, &p2, "c1");
    let v2 = View::new(&g2, c1);
    let nn2 = interp(&mut w2, &["-a", "-b"]);
    assert!(is_model(&v2, &nn2, g2.n_atoms));
    assert!(is_assumption_free(&v2, &nn2));
    // It is in fact the unique stable model now.
    let stable = stable_models(&v2, g2.n_atoms);
    assert_eq!(stable, vec![nn2]);
}

// ---------------------------------------------------------------- E7

/// Example 5, P5: {a,¬b,c} and {¬a,b,c} are the two stable models in
/// C1, while {c} is assumption-free but not stable — stable models are
/// not unique.
#[test]
fn e7_p5_two_stable_models() {
    let (mut w, p, g) = setup(
        "module c2 { a. b. c. }
         module c1 < c2 { -a :- b, c. -b :- a. -b :- -b. }",
    );
    let c1 = comp(&w, &p, "c1");
    let v = View::new(&g, c1);
    let m1 = interp(&mut w, &["a", "-b", "c"]);
    let m2 = interp(&mut w, &["-a", "b", "c"]);
    let just_c = interp(&mut w, &["c"]);
    let mut stable = stable_models(&v, g.n_atoms);
    stable.sort_by_key(|m| m.render(&w));
    let mut expected = vec![m1, m2];
    expected.sort_by_key(|m| m.render(&w));
    assert_eq!(stable, expected);
    let af = enumerate_assumption_free(&v, g.n_atoms);
    assert!(af.contains(&just_c));
    assert!(!stable.contains(&just_c));
    // And the least model is exactly {c}: the intersection of all
    // models (Theorem 1b).
    assert_eq!(least_model(&v), just_c);
}

// ---------------------------------------------------------------- E10

/// Examples 8–9: a negative program under the 3-level semantics. The
/// negative rule acts as an exception: "every ground animal which is
/// also a bird does not fly" — while ordinary birds keep flying.
#[test]
fn e10_three_level_exceptions() {
    let mut w = World::new();
    let flat = parse_program(
        &mut w,
        "bird(tweety). ground_animal(tweety). bird(robin).
         fly(X) :- bird(X).
         -fly(X) :- ground_animal(X).",
    )
    .unwrap();
    let rules = flat.components.into_iter().next().unwrap().rules;
    let (tv, cminus) = three_level_version(&mut w, &rules);
    let g = ground_exhaustive(&mut w, &tv, &GroundConfig::default()).unwrap();
    let stable = stable_models(&View::new(&g, cminus), g.n_atoms);
    assert_eq!(stable.len(), 1);
    let m = &stable[0];
    assert!(m.holds(parse_ground_literal(&mut w, "-fly(tweety)").unwrap()));
    assert!(m.holds(parse_ground_literal(&mut w, "fly(robin)").unwrap()));
    assert!(m.holds(parse_ground_literal(&mut w, "-ground_animal(robin)").unwrap()));
}

/// Example 8: the same program under the *two-level* semantics (OV) is
/// "rather poor": nothing can be said about the flying capabilities of
/// a bird that is also a ground animal — and the general rule is
/// defeated rather than overruled.
#[test]
fn e10_two_level_is_poor() {
    let mut w = World::new();
    let flat = parse_program(
        &mut w,
        "bird(tweety). ground_animal(tweety).
         fly(X) :- bird(X).
         -fly(X) :- ground_animal(X).",
    )
    .unwrap();
    let rules = flat.components.into_iter().next().unwrap().rules;
    let (ov, c) = ordered_version(&mut w, &rules);
    let g = ground_exhaustive(&mut w, &ov, &GroundConfig::default()).unwrap();
    let m = least_model(&View::new(&g, c));
    let fly = parse_ground_literal(&mut w, "fly(tweety)").unwrap();
    assert!(!m.holds(fly) && !m.holds(fly.complement()));
}

/// §2 after Definition 5: "it may happen that there exists a non-total
/// exhaustive model even when there is a total one" — P3 witnesses
/// this: {b} is exhaustive (its only candidate extensions violate
/// condition (a)) yet leaves `a` undefined, while {a,¬b} is total.
#[test]
fn def5_nontotal_exhaustive_coexists_with_total_on_p3() {
    use ordered_logic::semantics::is_exhaustive;
    let (mut w, p, g) = setup("a :- b. -a :- b.");
    let c = comp(&w, &p, "main");
    let v = View::new(&g, c);
    let just_b = interp(&mut w, &["b"]);
    assert!(is_model(&v, &just_b, g.n_atoms));
    assert!(is_exhaustive(&v, &just_b, g.n_atoms));
    assert!(!just_b.is_total(g.n_atoms));
    let total = interp(&mut w, &["a", "-b"]);
    assert!(is_model(&v, &total, g.n_atoms));
    assert!(total.is_total(g.n_atoms));
}

/// Definition 5 footnote: an exhaustive model need not be total — on
/// P2 no total model exists, yet exhaustive models do (Prop. 2 says
/// every model extends to one).
#[test]
fn def5_exhaustive_without_total_on_fig2() {
    use ordered_logic::semantics::{extend_to_exhaustive, is_exhaustive};
    let (w, p, g) = setup(FIG2);
    let c1 = comp(&w, &p, "c1");
    let v = View::new(&g, c1);
    assert!(!has_total_model(&v, g.n_atoms));
    let e = extend_to_exhaustive(&v, &Interpretation::new(), g.n_atoms);
    assert!(is_exhaustive(&v, &e, g.n_atoms));
    assert!(!e.is_total(g.n_atoms));
}

// ------------------------------------------------ general invariants

/// Lemma 1 / Prop. 1 / Thm. 1b across every paper program: the V
/// fixpoint is a model, assumption-free, and ⊆ every model.
#[test]
fn fixpoint_invariants_on_all_paper_programs() {
    for src in [
        FIG1,
        FIG1_COLLAPSED,
        FIG2,
        "a :- b. -a :- b.",
        "a :- b.",
        "module c2 { a. b. c. } module c1 < c2 { -a :- b, c. -b :- a. -b :- -b. }",
    ] {
        let (_, p, g) = setup(src);
        for ci in 0..p.components.len() {
            let v = View::new(&g, CompId(ci as u32));
            let lm = least_model(&v);
            assert!(is_model(&v, &lm, g.n_atoms), "{src}");
            assert!(is_assumption_free(&v, &lm), "{src}");
            for m in enumerate_models(&v, g.n_atoms, None) {
                assert!(lm.is_subset(&m), "lfp not least for {src}");
            }
        }
    }
}
