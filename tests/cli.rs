//! End-to-end tests of the `olp` command-line binary against the
//! shipped sample programs (`examples/programs/*.olp`).

use std::process::Command;

fn olp(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_olp"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn sample(name: &str) -> String {
    format!("{}/examples/programs/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn check_reports_structure() {
    let (out, _, ok) = olp(&["check", &sample("penguin.olp")]);
    assert!(ok);
    assert!(out.contains("2 components"));
    assert!(out.contains("inherits from c2"));
    assert!(out.contains("overrule"));
}

#[test]
fn models_least_default() {
    let (out, _, ok) = olp(&["models", &sample("penguin.olp"), "c1"]);
    assert!(ok);
    assert!(out.contains("-fly(penguin)"));
    assert!(out.contains("fly(pigeon)"));
}

#[test]
fn models_stable_on_p5() {
    let (out, _, ok) = olp(&["models", &sample("p5.olp"), "c1", "--stable"]);
    assert!(ok, "{out}");
    assert!(out.contains("{-b, a, c} (total)"));
    assert!(out.contains("{-a, b, c} (total)"));
}

#[test]
fn models_skeptical_on_p5() {
    let (out, _, ok) = olp(&["models", &sample("p5.olp"), "c1", "--skeptical"]);
    assert!(ok);
    assert!(out.contains("skeptical: {c}"));
}

#[test]
fn models_credulous_on_p5() {
    let (out, _, ok) = olp(&["models", &sample("p5.olp"), "c1", "--credulous"]);
    assert!(ok);
    assert!(out.contains("credulous: {a, -a, b, -b, c}"), "{out}");
}

#[test]
fn query_ground_with_explanation() {
    let (out, _, ok) = olp(&[
        "query",
        &sample("penguin.olp"),
        "c1",
        "fly(penguin)",
        "--explain",
    ]);
    assert!(ok);
    assert!(out.contains("false"));
    assert!(out.contains("overruled by"));
}

#[test]
fn query_pattern_enumerates() {
    let (out, _, ok) = olp(&["query", &sample("penguin.olp"), "c1", "fly(X)"]);
    assert!(ok);
    assert!(out.contains("X = pigeon"));
    assert!(out.contains("(1 answers)"));
}

#[test]
fn loan_scenario_resolves() {
    let (out, _, ok) = olp(&["query", &sample("loan.olp"), "myself", "take_loan"]);
    assert!(ok);
    assert!(out.contains("true"), "{out}");
}

#[test]
fn unknown_component_is_a_clean_error() {
    let (_, err, ok) = olp(&["query", &sample("penguin.olp"), "nobody", "fly(X)"]);
    assert!(!ok);
    assert!(err.contains("unknown component"));
    assert!(err.contains("c1"), "suggests existing names: {err}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let (_, err, ok) = olp(&["check", "/nonexistent.olp"]);
    assert!(!ok);
    assert!(err.contains("cannot read"));
}

#[test]
fn bad_usage_prints_usage() {
    let (_, err, ok) = olp(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("usage:"));
}

#[test]
fn check_warns_on_unsafe_rules() {
    let dir = std::env::temp_dir().join("olp_cli_unsafe.olp");
    std::fs::write(&dir, "q(a).
p(X) :- q(Y).
").unwrap();
    let (out, _, ok) = olp(&["check", dir.to_str().unwrap()]);
    assert!(ok);
    assert!(out.contains("warning: unsafe rule"), "{out}");
    assert!(out.contains("p(X) :- q(Y)."));
}

#[test]
fn exhaustive_flag_accepted() {
    let (out, _, ok) = olp(&["check", &sample("p5.olp"), "--exhaustive"]);
    assert!(ok);
    assert!(out.contains("OK"));
}
