//! End-to-end tests of the `olp` command-line binary against the
//! shipped sample programs (`examples/programs/*.olp`).

use std::process::Command;

fn olp(args: &[&str]) -> (String, String, bool) {
    let (out, err, code) = olp_code(args);
    (out, err, code == 0)
}

/// Like [`olp`] but exposes the exact exit code, needed by the
/// resource-limit tests (124 = exhausted, 2 = usage, 1 = error).
fn olp_code(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_olp"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().expect("not killed by signal"),
    )
}

/// A program whose stable-model enumeration is combinatorial: `n`
/// mutually defeating pairs in an incomparable layout give 2^n stable
/// models, enough to outlast any small budget.
fn big_choice(n: usize) -> String {
    let dir = std::env::temp_dir().join(format!("olp_cli_big_choice_{n}.olp"));
    let mut src = String::from("module c2 {\n");
    for i in 0..n {
        src.push_str(&format!("  a{i}. b{i}.\n"));
    }
    src.push_str("}\nmodule c1 < c2 {\n");
    for i in 0..n {
        src.push_str(&format!("  -a{i} :- b{i}.\n  -b{i} :- a{i}.\n"));
    }
    src.push_str("}\n");
    std::fs::write(&dir, src).unwrap();
    dir.to_str().unwrap().to_owned()
}

fn sample(name: &str) -> String {
    format!("{}/examples/programs/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn check_reports_structure() {
    let (out, _, ok) = olp(&["check", &sample("penguin.olp")]);
    assert!(ok);
    assert!(out.contains("2 components"));
    assert!(out.contains("inherits from c2"));
    assert!(out.contains("overrule"));
}

#[test]
fn models_least_default() {
    let (out, _, ok) = olp(&["models", &sample("penguin.olp"), "c1"]);
    assert!(ok);
    assert!(out.contains("-fly(penguin)"));
    assert!(out.contains("fly(pigeon)"));
}

#[test]
fn models_stable_on_p5() {
    let (out, _, ok) = olp(&["models", &sample("p5.olp"), "c1", "--stable"]);
    assert!(ok, "{out}");
    assert!(out.contains("{-b, a, c} (total)"));
    assert!(out.contains("{-a, b, c} (total)"));
}

#[test]
fn models_skeptical_on_p5() {
    let (out, _, ok) = olp(&["models", &sample("p5.olp"), "c1", "--skeptical"]);
    assert!(ok);
    assert!(out.contains("skeptical: {c}"));
}

#[test]
fn models_credulous_on_p5() {
    let (out, _, ok) = olp(&["models", &sample("p5.olp"), "c1", "--credulous"]);
    assert!(ok);
    assert!(out.contains("credulous: {a, -a, b, -b, c}"), "{out}");
}

#[test]
fn query_ground_with_explanation() {
    let (out, _, ok) = olp(&[
        "query",
        &sample("penguin.olp"),
        "c1",
        "fly(penguin)",
        "--explain",
    ]);
    assert!(ok);
    assert!(out.contains("false"));
    assert!(out.contains("overruled by"));
}

#[test]
fn query_pattern_enumerates() {
    let (out, _, ok) = olp(&["query", &sample("penguin.olp"), "c1", "fly(X)"]);
    assert!(ok);
    assert!(out.contains("X = pigeon"));
    assert!(out.contains("(1 answers)"));
}

#[test]
fn loan_scenario_resolves() {
    let (out, _, ok) = olp(&["query", &sample("loan.olp"), "myself", "take_loan"]);
    assert!(ok);
    assert!(out.contains("true"), "{out}");
}

#[test]
fn unknown_component_is_a_clean_error() {
    let (_, err, ok) = olp(&["query", &sample("penguin.olp"), "nobody", "fly(X)"]);
    assert!(!ok);
    assert!(err.contains("unknown component"));
    assert!(err.contains("c1"), "suggests existing names: {err}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let (_, err, ok) = olp(&["check", "/nonexistent.olp"]);
    assert!(!ok);
    assert!(err.contains("cannot read"));
}

#[test]
fn bad_usage_prints_usage() {
    let (_, err, ok) = olp(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("usage:"));
}

#[test]
fn check_warns_on_unsafe_rules() {
    let dir = std::env::temp_dir().join("olp_cli_unsafe.olp");
    std::fs::write(
        &dir,
        "q(a).
p(X) :- q(Y).
",
    )
    .unwrap();
    let (out, _, ok) = olp(&["check", dir.to_str().unwrap()]);
    assert!(ok, "warnings alone must not change the exit code: {out}");
    assert!(out.contains("warning[W01]"), "{out}");
    assert!(out.contains("unsafe rule"), "{out}");
    assert!(out.contains("p(X) :- q(Y)."));
    // The diagnostic carries the position of the offending rule.
    assert!(out.contains(":2:1:"), "span for line 2, col 1: {out}");
}

#[test]
fn check_deny_warnings_gates_the_exit_code() {
    // penguin.olp ships with an intentional W05 (the Fig. 1 shadowed
    // rule), so the gate must trip there and stay quiet on loan.olp.
    let (out, err, code) = olp_code(&["check", &sample("penguin.olp"), "--deny", "warnings"]);
    assert_eq!(code, 1, "{out}{err}");
    assert!(out.contains("warning[W05]"), "{out}");
    assert!(err.contains("denied"), "{err}");
    let (out, _, code) = olp_code(&["check", &sample("loan.olp"), "--deny", "warnings"]);
    assert_eq!(code, 0, "loan.olp lints clean: {out}");
}

#[test]
fn check_format_json_emits_positioned_diagnostics() {
    let (out, _, code) = olp_code(&["check", &sample("penguin.olp"), "--format", "json"]);
    assert_eq!(code, 0);
    assert!(out.trim_start().starts_with('['), "{out}");
    assert!(out.contains("\"code\":\"W05\""), "{out}");
    assert!(out.contains("\"line\":5,\"col\":5"), "{out}");
    assert!(
        !out.contains("components"),
        "json mode suppresses the human report: {out}"
    );
    // p5 carries the W09 profile note (Info severity, exit still 0).
    let (out, _, code) = olp_code(&["check", &sample("p5.olp"), "--format", "json"]);
    assert_eq!(code, 0);
    assert!(out.contains("\"code\":\"W09\""), "{out}");
    assert!(out.contains("\"severity\":\"info\""), "{out}");
    // A clean program yields an empty array.
    let clean = std::env::temp_dir().join("olp_cli_clean.olp");
    std::fs::write(&clean, "p(a). q(X) :- p(X), p(X).\n").unwrap();
    let (out, _, code) = olp_code(&["check", clean.to_str().unwrap(), "--format", "json"]);
    assert_eq!(code, 0);
    assert_eq!(out.trim(), "[]");
}

#[test]
fn check_rejects_bad_deny_and_format_values() {
    let (_, err, code) = olp_code(&["check", &sample("p5.olp"), "--deny", "everything"]);
    assert_eq!(code, 2);
    assert!(err.contains("--deny"), "{err}");
    let (_, err, code) = olp_code(&["check", &sample("p5.olp"), "--format", "xml"]);
    assert_eq!(code, 2);
    assert!(err.contains("--format"), "{err}");
}

#[test]
fn check_order_cycle_is_an_error_even_without_deny() {
    let dir = std::env::temp_dir().join("olp_cli_cycle.olp");
    std::fs::write(
        &dir,
        "module a { p. }\nmodule b { q. }\norder a < b.\norder b < a.\n",
    )
    .unwrap();
    let (out, err, code) = olp_code(&["check", dir.to_str().unwrap()]);
    assert_eq!(code, 1, "{out}{err}");
    assert!(out.contains("error[E01]"), "{out}");
    assert!(out.contains("cyclic"), "{out}");
}

#[test]
fn exhaustive_flag_accepted() {
    let (out, _, ok) = olp(&["check", &sample("p5.olp"), "--exhaustive"]);
    assert!(ok);
    assert!(out.contains("OK"));
}

/// Runs the repl with the given stdin script and returns stdout.
fn repl(args: &[&str], script: &str) -> String {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_olp"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{:?}", out);
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn repl_live_updates_assert_and_retract() {
    let out = repl(
        &["repl", &sample("penguin.olp")],
        "fly(sparrow)\nassert bird(sparrow).\nfly(sparrow)\nretract bird(sparrow).\nfly(sparrow)\nretract bird(dodo).\nquit\n",
    );
    assert!(out.contains("asserted into `c2`"), "{out}");
    assert!(out.contains("epoch 1"), "timing/epoch line expected: {out}");
    assert!(out.contains("retracted from `c2`"), "{out}");
    assert!(out.contains("nothing retracted"), "{out}");
    // Verdict flips with the mutations: undefined -> true -> undefined.
    let verdicts: Vec<&str> = out
        .lines()
        .filter(|l| l.contains("fly(sparrow) in `c2`:"))
        .collect();
    assert_eq!(verdicts.len(), 3, "{out}");
    assert!(verdicts[0].contains("undefined"));
    assert!(verdicts[1].contains("true"));
    assert!(verdicts[2].contains("undefined"));
}

#[test]
fn interactive_flag_is_a_repl_alias() {
    let out = repl(&["--interactive", &sample("penguin.olp")], "models\nquit\n");
    assert!(out.contains("least model:"), "{out}");
    assert!(out.contains("fly(pigeon)"), "{out}");
}

// ---- resource limits ------------------------------------------------

#[test]
fn timeout_exits_124_promptly_with_partial_banner() {
    let file = big_choice(24);
    let start = std::time::Instant::now();
    let (out, _, code) = olp_code(&["models", &file, "c1", "--stable", "--timeout", "0.5"]);
    let elapsed = start.elapsed();
    assert_eq!(code, 124, "{out}");
    assert!(out.contains("PARTIAL"), "banner expected: {out}");
    assert!(out.contains("deadline exceeded"), "{out}");
    assert!(
        elapsed < std::time::Duration::from_secs(10),
        "deadline must stop a 2^24-model enumeration quickly, took {elapsed:?}"
    );
}

#[test]
fn max_steps_exits_124() {
    let (out, err, code) = olp_code(&["models", &sample("penguin.olp"), "c1", "--max-steps", "1"]);
    assert_eq!(code, 124, "out: {out} err: {err}");
    // With a 1-step budget even grounding trips; either message is a
    // legitimate exhaustion report.
    assert!(
        out.contains("PARTIAL") || err.contains("interrupted"),
        "out: {out} err: {err}"
    );
}

#[test]
fn max_models_truncates_stable_enumeration() {
    let (out, _, code) = olp_code(&[
        "models",
        &sample("p5.olp"),
        "c1",
        "--stable",
        "--max-models",
        "1",
    ]);
    assert_eq!(code, 124, "{out}");
    assert!(out.contains("PARTIAL"), "{out}");
    assert!(out.contains("model cap reached"), "{out}");
}

#[test]
fn generous_limits_leave_results_exact() {
    // Same invocation as `models_stable_on_p5`, but budgeted: ample
    // limits must not change the answer or the exit code.
    let (out, _, code) = olp_code(&[
        "models",
        &sample("p5.olp"),
        "c1",
        "--stable",
        "--timeout=30",
        "--max-steps=100000000",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("{-b, a, c} (total)"));
    assert!(out.contains("{-a, b, c} (total)"));
    assert!(!out.contains("PARTIAL"), "{out}");
}

#[test]
fn budgeted_query_marks_partial_verdicts() {
    // Sweep the step budget from starvation to completion: every
    // under-budget run must exit 124 with a diagnosed interruption, and
    // somewhere between "grounding trips" and "enough" the query itself
    // must get interrupted and flag its verdict `(partial)`.
    let mut saw_partial_verdict = false;
    let mut completed = false;
    for k in 1..=200u32 {
        let (out, err, code) = olp_code(&[
            "query",
            &sample("loan.olp"),
            "myself",
            "take_loan",
            "--max-steps",
            &k.to_string(),
        ]);
        match code {
            0 => {
                assert!(out.contains("true"), "k={k}: {out}");
                completed = true;
                break;
            }
            124 => {
                assert!(
                    out.contains("(partial)") || err.contains("interrupted"),
                    "k={k}: out: {out} err: {err}"
                );
                saw_partial_verdict |= out.contains("(partial)");
            }
            other => panic!("k={k}: unexpected exit {other}: {out} {err}"),
        }
    }
    assert!(completed, "budget of 200 steps should suffice for loan.olp");
    assert!(
        saw_partial_verdict,
        "some budget should interrupt the query after grounding succeeds"
    );
}

#[test]
fn bad_limit_value_is_a_usage_error() {
    for args in [
        ["check", "x.olp", "--timeout", "banana"],
        ["check", "x.olp", "--max-steps", "-3"],
        ["check", "x.olp", "--timeout", "-1"],
    ] {
        let (_, err, code) = olp_code(&args);
        assert_eq!(code, 2, "{args:?}");
        assert!(err.contains("error:"), "{args:?}: {err}");
    }
}

/// Runs the binary with `input` piped to stdin (REPL sessions).
fn olp_stdin(args: &[&str], input: &str) -> (String, String, i32) {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_olp"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    // Error-path sessions exit before reading stdin; the broken pipe
    // is expected there.
    let _ = child.stdin.take().unwrap().write_all(input.as_bytes());
    let out = child.wait_with_output().expect("binary exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().expect("not killed by signal"),
    )
}

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("olp_cli_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn repl_db_create_mutate_reopen() {
    let db = scratch_dir("db_roundtrip");
    let db = db.to_str().unwrap();
    let (out, err, code) = olp_stdin(
        &["repl", &sample("penguin.olp"), "--db", db],
        "assert bird(sparrow).\nfly(sparrow)\nquit\n",
    );
    assert_eq!(code, 0, "out: {out} err: {err}");
    assert!(out.contains(&format!("created database {db}")), "{out}");
    assert!(out.contains("logged seq 1"), "{out}");
    assert!(out.contains("fly(sparrow) in `c2`: true"), "{out}");

    // Reopen with no FILE: the snapshot + WAL replay restore the state.
    let (out, err, code) = olp_stdin(&["repl", "--db", db], "fly(sparrow)\nquit\n");
    assert_eq!(code, 0, "out: {out} err: {err}");
    assert!(out.contains("seq 1, 1 op replayed"), "{out}");
    assert!(out.contains("fly(sparrow) in `c2`: true"), "{out}");
    std::fs::remove_dir_all(db).ok();
}

#[test]
fn repl_db_corrupt_is_a_clean_error() {
    let db = scratch_dir("db_corrupt");
    std::fs::create_dir_all(&db).unwrap();
    std::fs::write(db.join("snapshot.olps"), b"this is not a snapshot").unwrap();
    let db = db.to_str().unwrap();
    let (out, err, code) = olp_stdin(&["repl", "--db", db], "quit\n");
    assert_eq!(code, 1, "out: {out} err: {err}");
    assert!(
        err.contains(&format!("error: cannot open database {db}")),
        "{err}"
    );
    assert!(err.contains("not an olp snapshot"), "{err}");
    assert!(!err.contains("panicked"), "{err}");
    std::fs::remove_dir_all(db).ok();
}

#[test]
fn repl_db_truncated_snapshot_is_a_clean_error() {
    // Build a valid database, then chop the snapshot mid-frame: the
    // checksum layer must reject it with a positioned corruption
    // message rather than load garbage.
    let db = scratch_dir("db_truncated");
    let dbs = db.to_str().unwrap();
    let (_, _, code) = olp_stdin(&["repl", &sample("penguin.olp"), "--db", dbs], "quit\n");
    assert_eq!(code, 0);
    let snap = db.join("snapshot.olps");
    let bytes = std::fs::read(&snap).unwrap();
    std::fs::write(&snap, &bytes[..bytes.len() / 2]).unwrap();
    let (out, err, code) = olp_stdin(&["repl", "--db", dbs], "quit\n");
    assert_eq!(code, 1, "out: {out} err: {err}");
    assert!(err.contains("error: cannot open database"), "{err}");
    assert!(!err.contains("panicked"), "{err}");
    std::fs::remove_dir_all(&db).ok();
}

#[test]
fn repl_db_missing_without_file_is_an_error() {
    let db = scratch_dir("db_missing");
    let (out, err, code) = olp_stdin(&["repl", "--db", db.to_str().unwrap()], "quit\n");
    assert_eq!(code, 1, "out: {out} err: {err}");
    assert!(err.contains("no database there"), "{err}");
}

#[test]
fn repl_db_bad_durability_is_a_usage_error() {
    let (_, err, code) = olp_code(&["repl", "--db", "whatever", "--durability", "paranoid"]);
    assert_eq!(code, 2);
    assert!(err.contains("--durability"), "{err}");
}

#[test]
fn repl_save_without_db_reports_error_and_save_dir_works() {
    let copy = scratch_dir("db_savecopy");
    let copys = copy.to_str().unwrap();
    let (out, _, code) = olp_stdin(
        &["repl", &sample("penguin.olp")],
        &format!("save\nsave {copys}\nquit\n"),
    );
    assert_eq!(code, 0);
    assert!(out.contains("error: no database attached"), "{out}");
    assert!(
        out.contains(&format!("database written to {copys}")),
        "{out}"
    );
    // The copy is a complete, openable database.
    let (out, err, code) = olp_stdin(&["repl", "--db", copys], "models\nquit\n");
    assert_eq!(code, 0, "out: {out} err: {err}");
    assert!(out.contains("least model:"), "{out}");
    std::fs::remove_dir_all(&copy).ok();
}
