//! Demand-driven grounding agrees with full grounding on the query's
//! predicates (semantics-level verification of `olp_ground::demand`).

use olp_workload::{random_datalog, DatalogCfg};
use ordered_logic::ground::ground_smart_for;
use ordered_logic::prelude::*;
use proptest::prelude::*;

const TWO_ISLANDS: &str = "module up {
    bird(tweety). fly(X) :- bird(X).
    edge(a,b). edge(b,c). edge(c,d).
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- edge(X,Z), path(Z,Y).
 }
 module down < up {
    -fly(X) :- heavy(X).
    heavy(tweety).
 }";

#[test]
fn demand_grounding_is_smaller_and_agrees() {
    let cfg = GroundConfig::default();

    let mut w_full = World::new();
    let p_full = parse_program(&mut w_full, TWO_ISLANDS).unwrap();
    let g_full = ground_smart(&mut w_full, &p_full, &cfg).unwrap();

    let mut w = World::new();
    let p = parse_program(&mut w, TWO_ISLANDS).unwrap();
    let fly = w.pred("fly", 1);
    let g = ground_smart_for(&mut w, &p, &cfg, fly).unwrap();
    assert!(
        g.len() < g_full.len(),
        "demand {} < full {}",
        g.len(),
        g_full.len()
    );

    for comp in [CompId(0), CompId(1)] {
        let m_full = least_model(&View::new(&g_full, comp));
        let m = least_model(&View::new(&g, comp));
        for s in ["fly(tweety)", "-fly(tweety)"] {
            let q_full = parse_ground_literal(&mut w_full, s).unwrap();
            let q = parse_ground_literal(&mut w, s).unwrap();
            assert_eq!(m_full.holds(q_full), m.holds(q), "{s} in comp {comp:?}");
        }
    }
}

/// Regression (seed 3247 of the random-Datalog soak): a constant that
/// occurs only in rules *outside* the predicate cone (`k1`, in a
/// dropped `b0` fact) still names a never-blockable attacker instance
/// of a kept rule. Demand grounding must seed the full program's
/// constants into the active domain or the attacker disappears and the
/// query flips.
#[test]
fn dropped_rule_constants_still_feed_attackers() {
    use olp_workload::{random_datalog, DatalogCfg};
    let dcfg = DatalogCfg::default();
    let gcfg = GroundConfig::default();

    let mut w_full = World::new();
    let p_full = random_datalog(&mut w_full, &dcfg, 3247);
    let g_full = ground_smart(&mut w_full, &p_full, &gcfg).unwrap();
    let m_full = least_model(&View::new(&g_full, CompId(0)));
    let q_full = parse_ground_literal(&mut w_full, "u0(k3)").unwrap();

    let mut w = World::new();
    let p = random_datalog(&mut w, &dcfg, 3247);
    let qpred = w.pred("u0", 1);
    let g = ground_smart_for(&mut w, &p, &gcfg, qpred).unwrap();
    let m = least_model(&View::new(&g, CompId(0)));
    let q = parse_ground_literal(&mut w, "u0(k3)").unwrap();

    assert!(
        !m_full.holds(q_full),
        "u0(k3) is suppressed in the full program"
    );
    assert_eq!(m_full.holds(q_full), m.holds(q));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On random non-ground programs, demand grounding for each query
    /// predicate answers every ground query on that predicate exactly
    /// like full grounding.
    #[test]
    fn demand_agrees_on_random_datalog(seed in 0u64..20_000) {
        let dcfg = DatalogCfg::default();
        let gcfg = GroundConfig::default();

        let mut w_full = World::new();
        let p_full = random_datalog(&mut w_full, &dcfg, seed);
        let g_full = ground_smart(&mut w_full, &p_full, &gcfg).unwrap();

        // Query predicate: u0/1 (always exists in the generator).
        let mut w = World::new();
        let p = random_datalog(&mut w, &dcfg, seed);
        let qpred = w.pred("u0", 1);
        let g = ground_smart_for(&mut w, &p, &gcfg, qpred).unwrap();

        for ci in 0..p.components.len() {
            let c = CompId(ci as u32);
            let m_full = least_model(&View::new(&g_full, c));
            let m = least_model(&View::new(&g, c));
            // Compare verdicts on every u0 atom of the full world.
            let full_pred = w_full.pred("u0", 1);
            let atoms_full: Vec<_> = w_full.atoms.of_pred(full_pred).to_vec();
            for a in atoms_full {
                let rendered = w_full.atom_str(a);
                let q_full = parse_ground_literal(&mut w_full, &rendered).unwrap();
                let q = parse_ground_literal(&mut w, &rendered).unwrap();
                prop_assert_eq!(
                    m_full.holds(q_full), m.holds(q),
                    "{} (seed {}, comp {})", rendered, seed, ci
                );
                prop_assert_eq!(
                    m_full.holds(q_full.complement()), m.holds(q.complement()),
                    "-{} (seed {}, comp {})", rendered, seed, ci
                );
            }
        }
    }
}
