//! Differential mutation fuzzing for incremental KB maintenance.
//!
//! Random assert/retract sequences run against two knowledge bases
//! built from the same seeded `random_ordered` program:
//!
//! * the **system under test** — Smart-grounded, incremental
//!   maintenance on (delta grounding, stratum-local cache
//!   revalidation, stable-group memoisation);
//! * the **oracle** — Exhaustive-grounded, every mutation a full
//!   rebuild from scratch.
//!
//! After *every* step the two must agree on the least model and the
//! stable-model set of every component (compared rendered, the worlds
//! are independent), and retraction must report the same hit/miss. At
//! the end of each sequence the paper-level oracle runs on the small
//! instance: Theorem 1b (the least model is the intersection of *all*
//! models, enumerated per Definition 3) and stable ⊆ models.
//!
//! Run with `PROPTEST_CASES=256` for the deep nightly configuration.

use olp_workload::{random_ordered, RandomCfg};
use ordered_logic::core::CompId;
use ordered_logic::ground::FlatView;
use ordered_logic::prelude::*;
use ordered_logic::semantics::{enumerate_models, interp_intersection, least_model_flat, View};
use proptest::prelude::*;

const N_ATOMS: usize = 6;
const N_COMPONENTS: usize = 3;

/// The generator config for the base program: small enough for the
/// 3^n model-enumeration oracle, contested enough to exercise
/// overruling and defeating on every path.
fn base_cfg() -> RandomCfg {
    RandomCfg {
        n_atoms: N_ATOMS,
        n_rules: 10,
        max_body: 3,
        neg_head_prob: 0.3,
        neg_body_prob: 0.4,
        n_components: N_COMPONENTS,
        edge_prob: 0.5,
    }
}

fn build_kb(seed: u64, strategy: GroundStrategy) -> Kb {
    let mut world = World::new();
    let prog = random_ordered(&mut world, &base_cfg(), seed);
    KbBuilder::from_parts(world, prog)
        .build_with(strategy, &GroundConfig::default())
        .expect("propositional programs always ground")
}

/// One random mutation: target component, assert-vs-retract, and a
/// propositional rule in surface syntax over the generator's atom
/// names (`p0`…). Retract texts are drawn from the same distribution,
/// so they sometimes hit an earlier assert (or even a base rule) and
/// sometimes miss — both KBs must agree either way.
fn mutation() -> impl Strategy<Value = (usize, bool, String)> {
    (
        0..N_COMPONENTS,
        any::<bool>(),
        (
            any::<bool>(),
            0..N_ATOMS,
            proptest::collection::vec((any::<bool>(), 0..N_ATOMS), 0..3),
        ),
    )
        .prop_map(|(comp, is_assert, (head_pos, head, body))| {
            let lit = |pos: bool, a: usize| format!("{}p{a}", if pos { "" } else { "-" });
            let head = lit(head_pos, head);
            let rule = if body.is_empty() {
                format!("{head}.")
            } else {
                let body: Vec<String> = body.iter().map(|&(s, a)| lit(s, a)).collect();
                format!("{head} :- {}.", body.join(", "))
            };
            (comp, is_assert, rule)
        })
}

/// Rendered least model of one object.
fn render_model(kb: &mut Kb, obj: &str) -> String {
    let m = kb.model(obj).expect("known object").clone();
    kb.render(&m)
}

/// Rendered stable models of one object, sorted for set comparison.
fn render_stable(kb: &mut Kb, obj: &str) -> Vec<String> {
    let mut v: Vec<String> = kb
        .stable(obj)
        .expect("known object")
        .iter()
        .map(|m| kb.render(m))
        .collect();
    v.sort();
    v
}

proptest! {
    #[test]
    fn incremental_kb_matches_full_rebuild(
        seed in 0u64..300,
        steps in proptest::collection::vec(mutation(), 1..6),
    ) {
        let mut inc = build_kb(seed, GroundStrategy::Smart);
        let mut full = build_kb(seed, GroundStrategy::Exhaustive);
        full.set_incremental(false);
        prop_assert!(inc.is_incremental());
        prop_assert!(!full.is_incremental());
        for (step, (comp, is_assert, rule)) in steps.iter().enumerate() {
            let obj = format!("c{comp}");
            if *is_assert {
                inc.assert_rule(&obj, rule).expect("assert grounds");
                full.assert_rule(&obj, rule).expect("assert grounds");
            } else {
                let a = inc.retract_rule(&obj, rule).expect("retract grounds");
                let b = full.retract_rule(&obj, rule).expect("retract grounds");
                prop_assert_eq!(
                    a, b,
                    "retract hit/miss diverged at step {} ({} {})", step, obj, rule
                );
            }
            for c in 0..N_COMPONENTS {
                let obj = format!("c{c}");
                prop_assert_eq!(
                    render_model(&mut inc, &obj),
                    render_model(&mut full, &obj),
                    "least models diverged in {} after step {} ({} into {})",
                    obj, step, rule, comp
                );
                prop_assert_eq!(
                    render_stable(&mut inc, &obj),
                    render_stable(&mut full, &obj),
                    "stable models diverged in {} after step {}",
                    obj, step
                );
            }
        }
        // Paper-level oracle on the final state (small instance): the
        // least model is the intersection of all models (Thm 1b), and
        // every stable model is a model (Def. 9 via Def. 3).
        for c in 0..N_COMPONENTS {
            let obj = format!("c{c}");
            let least = render_model(&mut full, &obj);
            let stable = render_stable(&mut full, &obj);
            let view = View::new(full.ground_program(), CompId(c as u32));
            let n_atoms = full.ground_program().n_atoms;
            let models = enumerate_models(&view, n_atoms, None);
            prop_assert!(!models.is_empty(), "the least model is always a model");
            let meet = interp_intersection(&models);
            prop_assert_eq!(
                full.render(&meet), least,
                "Thm 1b violated in {}", obj
            );
            let rendered: Vec<String> = models.iter().map(|m| full.render(m)).collect();
            for s in &stable {
                prop_assert!(
                    rendered.contains(s),
                    "stable model {} of {} is not a model", s, obj
                );
            }
        }
    }

    /// The incremental ground program itself stays exact: after any
    /// mutation sequence it renders identically to grounding the
    /// mutated program from scratch with the same (smart) grounder.
    #[test]
    fn incremental_grounding_matches_scratch_rebuild(
        seed in 0u64..300,
        steps in proptest::collection::vec(mutation(), 1..6),
    ) {
        let mut inc = build_kb(seed, GroundStrategy::Smart);
        let mut scratch = build_kb(seed, GroundStrategy::Smart);
        scratch.set_incremental(false);
        for (comp, is_assert, rule) in &steps {
            let obj = format!("c{comp}");
            if *is_assert {
                inc.assert_rule(&obj, rule).expect("assert grounds");
                scratch.assert_rule(&obj, rule).expect("assert grounds");
            } else {
                prop_assert_eq!(
                    inc.retract_rule(&obj, rule).expect("retract grounds"),
                    scratch.retract_rule(&obj, rule).expect("retract grounds")
                );
            }
            prop_assert_eq!(
                inc.ground_program().render(inc.world()),
                scratch.ground_program().render(scratch.world())
            );
        }
    }

    /// The flat mutation path end to end: after **every** step of a
    /// random mutation script, the incremental KB's stale-cache
    /// revalidation — [`least_model_delta_flat`] over arenas maintained
    /// by `FlatView::apply_delta` inside `Kb::commit` — must render
    /// byte-identically to a from-scratch reground of the mutated
    /// program evaluated with [`least_model_flat`] on a freshly
    /// compiled arena, at 1 and 4 worker threads.
    ///
    /// The model caches are warmed before each mutation, so every
    /// post-step query takes the stale → delta path (not a fresh
    /// computation), and the arenas it runs over are the
    /// patched-or-rebuilt ones the commit left behind.
    ///
    /// [`least_model_delta_flat`]: ordered_logic::semantics::least_model_delta_flat
    /// [`least_model_flat`]: ordered_logic::semantics::least_model_flat
    #[test]
    fn flat_delta_revalidation_matches_scratch_flat(
        seed in 0u64..300,
        steps in proptest::collection::vec(mutation(), 1..6),
    ) {
        for threads in [1usize, 4] {
            let mut inc = build_kb(seed, GroundStrategy::Smart);
            inc.set_threads(threads);
            for c in 0..N_COMPONENTS {
                let _ = render_model(&mut inc, &format!("c{c}"));
            }
            for (step, (comp, is_assert, rule)) in steps.iter().enumerate() {
                let obj = format!("c{comp}");
                if *is_assert {
                    inc.assert_rule(&obj, rule).expect("assert grounds");
                } else {
                    inc.retract_rule(&obj, rule).expect("retract grounds");
                }
                let scratch = KbBuilder::from_parts(inc.world().clone(), inc.program().clone())
                    .build_with(GroundStrategy::Smart, &GroundConfig::default())
                    .expect("propositional programs always ground");
                for c in 0..N_COMPONENTS {
                    let obj = format!("c{c}");
                    let fv = FlatView::new(scratch.ground_program(), CompId(c as u32));
                    let reference = scratch.render(&least_model_flat(&fv));
                    prop_assert_eq!(
                        render_model(&mut inc, &obj),
                        reference,
                        "flat delta path diverged in {} after step {} ({} into c{}, {} threads)",
                        obj, step, rule, comp, threads
                    );
                }
            }
        }
    }
}
