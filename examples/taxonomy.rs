//! A knowledge base with extensional relations, multi-level defaults
//! and versioning — the §1/§5 "knowledge base system" pitch.
//!
//! Run with: `cargo run --example taxonomy`
//!
//! Three levels of specialisation: animals (defaults) → birds
//! (override: birds fly) → penguins (override the override). Species
//! membership comes from an EDB relation, and a *versioned* module
//! revises a classification without touching the original.

use ordered_logic::prelude::*;

fn main() {
    let mut b = KbBuilder::new();

    // Extensional data: species and their classes.
    let mut is_bird = Relation::new("bird", 1);
    for s in ["pigeon", "eagle", "penguin", "ostrich"] {
        is_bird.insert_consts(b.world_mut(), &[s]).unwrap();
    }
    let mut is_mammal = Relation::new("mammal", 1);
    for s in ["dog", "bat", "whale"] {
        is_mammal.insert_consts(b.world_mut(), &[s]).unwrap();
    }

    // Level 3 (most general): animal-wide defaults. Defaults —
    // including the closed-world ones (`-bird(X) :- mammal(X)`,
    // `-grounded(X) :- …`) — must sit *above* the facts that override
    // them: rules in the same component would mutually defeat, and an
    // exception rule whose body could never be refuted would overrule
    // the flying default forever (§3's point: assumptions must be
    // declared, and they live upstairs).
    b.rules(
        "animal",
        "-fly(X) :- animal(X).
         walks(X) :- animal(X).
         -bird(X) :- mammal(X).
         -mammal(X) :- bird(X).
         -grounded(X) :- bird(X).
         -grounded(X) :- mammal(X).",
    )
    .unwrap();

    // Level 2: birds are animals; birds fly (overrides the default);
    // bats fly too (fact-level exception to the mammal default).
    b.isa("birds", "animal");
    b.load_relation("birds", &is_bird);
    b.load_relation("birds", &is_mammal);
    b.rules(
        "birds",
        "animal(X) :- bird(X).
         animal(X) :- mammal(X).
         fly(X) :- bird(X).
         fly(bat).",
    )
    .unwrap();

    // Level 1 (most specific): flightless birds — the `grounded` facts
    // overrule the inherited `-grounded` default, and the exception
    // rule overrules the inherited flying rule.
    b.isa("flightless", "birds");
    b.rules(
        "flightless",
        "grounded(penguin). grounded(ostrich).
         -fly(X) :- grounded(X).",
    )
    .unwrap();

    let mut kb = b.build(GroundStrategy::Smart).expect("grounds");

    println!("=== Taxonomy with defaults and exceptions ===\n");
    println!("{:<10} {:>12} {:>12}", "species", "fly?", "walks?");
    for s in [
        "pigeon", "eagle", "penguin", "ostrich", "dog", "bat", "whale",
    ] {
        let fly = format!(
            "{:?}",
            kb.truth("flightless", &format!("fly({s})")).unwrap()
        );
        let walks = format!(
            "{:?}",
            kb.truth("flightless", &format!("walks({s})")).unwrap()
        );
        println!("{s:<10} {fly:>12} {walks:>12}");
    }

    // The same questions one level up: penguins fly there.
    println!("\nFrom the `birds` module (exceptions invisible):");
    println!(
        "  fly(penguin) → {:?}",
        kb.truth("birds", "fly(penguin)").unwrap()
    );

    println!("\nAll flyers according to `flightless`:");
    for a in kb.query_pred("flightless", "fly", 1).unwrap() {
        println!("  {a}");
    }

    // Versioning: revise the classification without touching the base.
    let mut b2 = KbBuilder::new();
    b2.rules(
        "zoo_v1",
        "exhibit(penguin). exhibit(lion). ticket_price(10).",
    )
    .unwrap();
    b2.version_of("zoo_v2", "zoo_v1");
    b2.rules(
        "zoo_v2",
        "-exhibit(lion). exhibit(otter).
         -ticket_price(10). ticket_price(12).",
    )
    .unwrap();
    let mut zoo = b2.build(GroundStrategy::Smart).expect("grounds");
    println!("\n=== Versioning (a version is a more specific module) ===");
    for v in ["zoo_v1", "zoo_v2"] {
        println!(
            "{v}: exhibits = {:?}, price(10) = {:?}, price(12) = {:?}",
            zoo.query_pred(v, "exhibit", 1).unwrap(),
            zoo.truth(v, "ticket_price(10)").unwrap(),
            zoo.truth(v, "ticket_price(12)").unwrap(),
        );
    }
    println!("\nsemantic changelog v1 → v2:");
    for change in zoo.diff("zoo_v1", "zoo_v2").unwrap() {
        println!("  {change}");
    }
}
