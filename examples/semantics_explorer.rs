//! Interactive-ish semantics explorer: load an ordered program (from a
//! file argument, or a built-in demo) and print, for every component,
//! its least model, its assumption-free models, and its stable models.
//!
//! Run with:
//! `cargo run --example semantics_explorer [program.olp]`

use ordered_logic::prelude::*;
use ordered_logic::semantics::enumerate_models;

const DEMO: &str = "
% Example 5 of the paper: multiple stable models.
module c2 { a. b. c. }
module c1 < c2 {
    -a :- b, c.
    -b :- a.
    -b :- -b.
}
";

fn main() {
    let dump = std::env::args().any(|a| a == "--dump");
    let src = match std::env::args().filter(|a| a != "--dump").nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => {
            println!("(no file given — exploring the built-in Example 5 program)\n");
            DEMO.to_string()
        }
    };

    let mut world = World::new();
    let prog = match parse_program(&mut world, &src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };
    let ground = match ground_exhaustive(&mut world, &prog, &GroundConfig::default()) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("grounding error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "program: {} components, {} rules, {} ground instances, {} atoms\n",
        prog.components.len(),
        prog.rule_count(),
        ground.len(),
        ground.n_atoms
    );
    if dump {
        println!("── ground program ──\n{}", ground.render(&world));
    }

    for (ci, comp) in prog.components.iter().enumerate() {
        let c = CompId(ci as u32);
        let name = world.syms.name(comp.name);
        let view = View::new(&ground, c);
        println!("── component `{name}` (sees {} rules) ──", view.len());

        let lm = least_model(&view);
        println!("  least model          : {}", lm.render(&world));

        let af = enumerate_assumption_free(&view, ground.n_atoms);
        println!("  assumption-free ({:>2}) :", af.len());
        for m in &af {
            println!("      {}", m.render(&world));
        }

        let stable = stable_models(&view, ground.n_atoms);
        println!("  stable ({:>2})          :", stable.len());
        for m in &stable {
            let total = if m.is_total(ground.n_atoms) {
                " (total)"
            } else {
                ""
            };
            println!("      {}{total}", m.render(&world));
        }

        // For small programs also report whether a total model exists at
        // all (Definition 5a) — this is exponential, so guard on size.
        if ground.n_atoms <= 12 {
            let any_total = enumerate_models(&view, ground.n_atoms, None)
                .iter()
                .any(|m| m.is_total(ground.n_atoms));
            println!("  total model exists   : {any_total}");
        }
        println!();
    }
}
