//! Negative programs as general rules + exceptions (§4, Examples 8–9).
//!
//! Run with: `cargo run --example color_choice`
//!
//! A *negative program* has rules with negated heads but no component
//! structure. The paper gives it meaning through the 3-level version
//! `3V(C)` — negative rules become exceptions sitting below the general
//! rules — and proves (Theorem 2) this equals a direct semantics stated
//! in classical terms. This example runs both on the flying-birds and
//! colour-choice programs and shows they agree.

use ordered_logic::prelude::*;
use ordered_logic::transform::{is_model_direct, stable_models_direct};

fn flat_rules(world: &mut World, src: &str) -> Vec<Rule> {
    let p = parse_program(world, src).expect("valid program");
    assert_eq!(p.components.len(), 1, "negative programs are flat");
    p.components.into_iter().next().unwrap().rules
}

fn main() {
    // --- Example 8/9: flying birds -----------------------------------
    let src_birds = "bird(tweety). ground_animal(tweety). bird(robin).
         fly(X) :- bird(X).
         -fly(X) :- ground_animal(X).";

    println!("=== Example 8/9: flying birds as a negative program ===\n");

    // Two-level semantics (OV): too weak — fly(tweety) is defeated.
    let mut w1 = World::new();
    let rules = flat_rules(&mut w1, src_birds);
    let (ov, c) = ordered_version(&mut w1, &rules);
    let g = ground_exhaustive(&mut w1, &ov, &GroundConfig::default()).unwrap();
    let m = least_model(&View::new(&g, c));
    let fly_t = parse_ground_literal(&mut w1, "fly(tweety)").unwrap();
    println!(
        "two-level OV(C):  fly(tweety) = {:?}  (negative rules only defeat)",
        if m.holds(fly_t) {
            "True"
        } else if m.holds(fly_t.complement()) {
            "False"
        } else {
            "Undefined"
        }
    );

    // Three-level semantics: the exception wins for tweety, robin flies.
    let mut w2 = World::new();
    let rules = flat_rules(&mut w2, src_birds);
    let (tv, cminus) = three_level_version(&mut w2, &rules);
    let g2 = ground_exhaustive(&mut w2, &tv, &GroundConfig::default()).unwrap();
    let stable = stable_models(&View::new(&g2, cminus), g2.n_atoms);
    println!("three-level 3V(C) stable models ({}):", stable.len());
    for s in &stable {
        println!("  {}", s.render(&w2));
    }

    // --- Example 9: colour choice ------------------------------------
    println!("\n=== Example 9: colour choice (direct semantics) ===\n");
    let src_colors = "color(red). color(blue).
         colored(X) :- color(X), -colored(Y), X != Y.";
    let mut w3 = World::new();
    let prog = parse_program(&mut w3, src_colors).unwrap();
    let g3 = ground_exhaustive(&mut w3, &prog, &GroundConfig::default()).unwrap();
    let stable = stable_models_direct(&g3.rules, g3.n_atoms);
    println!("stable models of the choice program ({}):", stable.len());
    for s in &stable {
        println!("  {}", s.render(&w3));
    }
    println!("→ each stable model selects exactly one colour.\n");

    // With an ugly colour, the exception forcibly un-colours it.
    let src_ugly = "color(red). color(blue). color(grey).
         ugly_color(grey).
         colored(X) :- color(X), -colored(Y), X != Y.
         -colored(X) :- ugly_color(X).";
    let mut w4 = World::new();
    let prog4 = parse_program(&mut w4, src_ugly).unwrap();
    let g4 = ground_exhaustive(&mut w4, &prog4, &GroundConfig::default()).unwrap();
    let stable4 = stable_models_direct(&g4.rules, g4.n_atoms);
    println!("with ugly grey, stable models ({}):", stable4.len());
    for s in &stable4 {
        println!("  {}", s.render(&w4));
        assert!(is_model_direct(&g4.rules, s));
    }
    println!(
        "→ the exception -colored(grey) is forced, and anchors the \
         choice rule for every other colour."
    );
}
