//! Legal reasoning: statutes, exceptions, amendments and lex specialis.
//!
//! Run with: `cargo run --example legal_reasoning`
//!
//! Law is the textbook non-monotonic domain the paper's machinery was
//! built for (§1: "represent uncertain knowledge as required in
//! advanced knowledge base applications"):
//!
//! * a general statute grants a default (contracts are enforceable);
//! * specific provisions carve out exceptions (unsigned contracts are
//!   not), and exceptions have exceptions (… unless performance has
//!   already begun);
//! * an amendment is a more specific module that *overrules* the
//!   provision it amends without textually deleting it — exactly the
//!   paper's versioning reading of the isa hierarchy;
//! * conflicting doctrines from incomparable sources **defeat** each
//!   other, leaving the question open rather than picking a side.

use ordered_logic::prelude::*;

fn main() {
    let mut b = KbBuilder::new();

    // The case file: extensional facts.
    b.rules(
        "case_facts",
        "contract(c1). contract(c2). contract(c3).
         signed(c1). signed(c3).
         performance_begun(c2).
         consumer_deal(c3).",
    )
    .unwrap();

    // Statute (most general): contracts are enforceable; closed-world
    // defaults for the case-file predicates live here so lower facts
    // can overrule them.
    b.isa("case_facts", "statute"); // facts are the most specific layer
    b.rules(
        "statute",
        "enforceable(X) :- contract(X).
         -signed(X) :- contract(X).
         -performance_begun(X) :- contract(X).
         -consumer_deal(X) :- contract(X).",
    )
    .unwrap();

    // Provision 12(b): unsigned contracts are not enforceable.
    // More specific than the statute, more general than the case facts.
    b.isa("provision_12b", "statute");
    b.isa("case_facts", "provision_12b");
    b.rules(
        "provision_12b",
        "-enforceable(X) :- contract(X), -signed(X).",
    )
    .unwrap();

    // Amendment 3 (later law, lex posterior): even an unsigned contract
    // is enforceable once performance has begun. Sits below 12(b) so it
    // overrules it where both apply.
    b.isa("amendment_3", "provision_12b");
    b.isa("case_facts", "amendment_3");
    b.rules(
        "amendment_3",
        "enforceable(X) :- contract(X), performance_begun(X).",
    )
    .unwrap();

    let mut kb = b.build(GroundStrategy::Smart).expect("grounds");

    println!("=== Contract enforceability (view: case_facts) ===\n");
    for c in ["c1", "c2", "c3"] {
        let verdict = kb
            .truth("case_facts", &format!("enforceable({c})"))
            .unwrap();
        let why = kb
            .explain("case_facts", &format!("enforceable({c})"))
            .unwrap();
        println!("contract {c}: {verdict:?}");
        for line in why.lines() {
            println!("    {line}");
        }
    }
    println!(
        "c1: signed → the statute applies.\n\
         c2: unsigned, but performance began → amendment 3 overrules 12(b).\n\
         c3: signed consumer deal → enforceable by the statute.\n"
    );

    // Two incomparable doctrines disagree about punitive damages in
    // consumer deals: neither outranks the other, so from the court's
    // view the claims defeat each other — the question stays open.
    let mut b2 = KbBuilder::new();
    b2.rules("facts", "consumer_deal(c3). breach(c3).").unwrap();
    b2.isa("facts", "doctrine_a");
    b2.isa("facts", "doctrine_b");
    b2.rules(
        "doctrine_a",
        "punitive_damages(X) :- consumer_deal(X), breach(X).",
    )
    .unwrap();
    b2.rules(
        "doctrine_b",
        "-punitive_damages(X) :- consumer_deal(X), breach(X).",
    )
    .unwrap();
    let mut court = b2.build(GroundStrategy::Smart).expect("grounds");
    println!("=== Conflicting doctrines (defeating) ===\n");
    let v = court.truth("facts", "punitive_damages(c3)").unwrap();
    println!("punitive_damages(c3) from the court's view: {v:?}");
    println!(
        "{}",
        court.explain("facts", "punitive_damages(c3)").unwrap()
    );
    println!(
        "Each doctrine keeps its own opinion (query their modules to see \
         it) — the combined view refuses to decide. That refusal, not an \
         arbitrary tie-break, is the paper's semantics of conflict."
    );
}
