//! The paper's loan program (Fig. 3) with the three §1 scenarios.
//!
//! Run with: `cargo run --example loan_advisor`
//!
//! `myself` consults three experts. Expert2's advice is independent;
//! Expert3 refines Expert4 (sits *below* it in the hierarchy, so its
//! rule overrules Expert4's). Depending on the economic indicators the
//! advice is inferred, defeated (conflicting experts cancel out), or
//! resolved by refinement.

use ordered_logic::prelude::*;

/// Builds the Fig. 3 program with the given facts at `myself` level.
fn loan_program(world: &mut World, facts: &str) -> OrderedProgram {
    let src = format!(
        "module expert2 {{ take_loan :- inflation(X), X > 11. }}
         module expert4 {{ -take_loan :- loan_rate(X), X > 14. }}
         module expert3 < expert4 {{
             take_loan :- inflation(X), loan_rate(Y), X > Y + 2.
         }}
         module myself < expert2, expert3 {{ {facts} }}"
    );
    parse_program(world, &src).expect("valid program")
}

fn advise(facts: &str) -> (&'static str, String) {
    let mut world = World::new();
    let prog = loan_program(&mut world, facts);
    let ground = ground_exhaustive(&mut world, &prog, &GroundConfig::default()).expect("grounds");
    let myself = prog
        .component_by_name(world.syms.get("myself").unwrap())
        .unwrap();
    let model = least_model(&View::new(&ground, myself));
    let take = parse_ground_literal(&mut world, "take_loan").unwrap();
    let verdict = if model.holds(take) {
        "TAKE the loan"
    } else if model.holds(take.complement()) {
        "do NOT take the loan"
    } else {
        "no advice (experts conflict or are silent)"
    };
    (verdict, model.render(&world))
}

fn main() {
    println!("=== Fig. 3: the loan program ===\n");
    let scenarios = [
        ("no indicators", ""),
        ("inflation(12)", "inflation(12)."),
        (
            "inflation(12), loan_rate(16)",
            "inflation(12). loan_rate(16).",
        ),
        (
            "inflation(19), loan_rate(16)",
            "inflation(19). loan_rate(16).",
        ),
    ];
    for (label, facts) in scenarios {
        let (verdict, model) = advise(facts);
        println!("Scenario [{label}]");
        println!("  advice: {verdict}");
        println!("  model:  {model}\n");
    }
    println!(
        "Scenario 3 is the interesting one: Expert2 (pro) and Expert4 \
         (anti) would defeat each other, but Expert3 refines Expert4 \
         from below — 19 > 16 + 2 — so its pro-loan rule overrules \
         Expert4 and the advice goes through."
    );
}
