//! Quickstart: the paper's Fig. 1 penguin program, end to end.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Shows the two faces of ordered logic programming:
//! * per-component meaning — the same program answers differently from
//!   the general `bird` module and the specific `antarctic` module;
//! * overruling — the specific module's exception beats the inherited
//!   default without deleting it.

use ordered_logic::prelude::*;

fn main() {
    // Build the knowledge base with the high-level API.
    let mut builder = KbBuilder::new();
    builder
        .rules(
            "bird",
            "bird(penguin). bird(pigeon).
             fly(X) :- bird(X).
             -ground_animal(X) :- bird(X).",
        )
        .expect("valid rules");
    builder.isa("antarctic", "bird");
    builder
        .rules(
            "antarctic",
            "ground_animal(penguin).
             -fly(X) :- ground_animal(X).",
        )
        .expect("valid rules");

    let mut kb = builder.build(GroundStrategy::Smart).expect("grounds fine");

    println!("=== Fig. 1: ordered program P1 ===\n");
    for object in ["bird", "antarctic"] {
        println!("From the point of view of `{object}`:");
        for query in [
            "fly(penguin)",
            "fly(pigeon)",
            "ground_animal(penguin)",
            "ground_animal(pigeon)",
        ] {
            let t = kb.truth(object, query).expect("ground query");
            println!("  {query:>24}  →  {t:?}");
        }
        println!();
    }

    // The least (assumption-free) model of the specific component,
    // rendered — this is the paper's interpretation I1 of Example 2.
    let m = kb.model("antarctic").expect("object exists").clone();
    println!("Least model in `antarctic`:\n  {}", kb.render(&m));

    println!(
        "\nThe penguin flies upstairs and walks downstairs — \
         inheritance is one-way, exceptions live below."
    );
}
