//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<S::Value>`: `None` about a quarter of the
/// time, otherwise `Some` of the inner strategy.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
