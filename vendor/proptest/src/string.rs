//! Regex-lite `&str` strategies.
//!
//! A pattern string is a sequence of atoms, each optionally followed
//! by a quantifier. Supported atoms: literal characters, `\`-escaped
//! literals, character classes `[...]` (with `a-z` ranges and a
//! trailing literal `-`), `.` (any printable), and the unicode
//! category escape `\PC` (any non-control character) as used by
//! proptest patterns in this workspace. Quantifiers: `*` (0..=16),
//! `+` (1..=16), `?`, `{m}`, `{m,n}`. Unsupported syntax panics at
//! generation time with a clear message — better than silently
//! generating the wrong language.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Lit(char),
    Class(Vec<char>),
    /// Any non-control character (`\PC`, `.`).
    Printable,
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

fn parse_pattern(pat: &str) -> Vec<Piece> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                i += 1;
                let mut members = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        *chars
                            .get(i)
                            .unwrap_or_else(|| panic!("pattern {pat:?}: trailing backslash"))
                    } else {
                        chars[i]
                    };
                    // `a-z` range (a `-` right before `]` is literal).
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = chars[i + 2];
                        assert!(c <= hi, "pattern {pat:?}: bad class range {c}-{hi}");
                        for v in c as u32..=hi as u32 {
                            if let Some(m) = char::from_u32(v) {
                                members.push(m);
                            }
                        }
                        i += 3;
                    } else {
                        members.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "pattern {pat:?}: unterminated class");
                i += 1; // consume ']'
                assert!(!members.is_empty(), "pattern {pat:?}: empty class");
                Atom::Class(members)
            }
            '\\' => {
                i += 1;
                match chars.get(i) {
                    Some('P') | Some('p') => {
                        // Only the `\PC` (non-control) category is used.
                        assert_eq!(
                            chars.get(i + 1),
                            Some(&'C'),
                            "pattern {pat:?}: unsupported category escape"
                        );
                        i += 2;
                        Atom::Printable
                    }
                    Some(&c) => {
                        i += 1;
                        Atom::Lit(c)
                    }
                    None => panic!("pattern {pat:?}: trailing backslash"),
                }
            }
            '.' => {
                i += 1;
                Atom::Printable
            }
            c => {
                assert!(
                    !matches!(c, '(' | ')' | '|' | '^' | '$'),
                    "pattern {pat:?}: unsupported regex syntax {c:?}"
                );
                i += 1;
                Atom::Lit(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, 16)
            }
            Some('+') => {
                i += 1;
                (1, 16)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                i += 1;
                let start = i;
                while i < chars.len() && chars[i] != '}' {
                    i += 1;
                }
                assert!(i < chars.len(), "pattern {pat:?}: unterminated quantifier");
                let body: String = chars[start..i].iter().collect();
                i += 1; // consume '}'
                let parts: Vec<&str> = body.split(',').collect();
                let parse = |s: &str| -> u32 {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("pattern {pat:?}: bad quantifier {body:?}"))
                };
                match parts.as_slice() {
                    [n] => (parse(n), parse(n)),
                    [m, n] => (parse(m), parse(n)),
                    _ => panic!("pattern {pat:?}: bad quantifier {body:?}"),
                }
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Mostly-ASCII printable pool for `\PC` / `.`, salted with a few
/// multibyte characters so UTF-8 handling gets exercised.
fn printable(rng: &mut TestRng) -> char {
    const EXOTIC: &[char] = &['é', 'λ', '中', '🦀', '±', '☃', '\u{2028}'];
    if rng.below(8) == 0 {
        EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
    } else {
        char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap()
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let n = rng.in_range(piece.min as u64, piece.max as u64);
            for _ in 0..n {
                match &piece.atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(members) => {
                        out.push(members[rng.below(members.len() as u64) as usize])
                    }
                    Atom::Printable => out.push(printable(rng)),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_quantifier() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn class_with_trailing_dash_and_punct() {
        let mut rng = TestRng::new(2);
        let pat = "[a-zA-Z0-9_ (){},.:<>=+*/%~-]{0,120}";
        for _ in 0..100 {
            let s = pat.generate(&mut rng);
            assert!(s.chars().count() <= 120);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_ (){},.:<>=+*/%~-".contains(c)));
        }
    }

    #[test]
    fn printable_category() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = "\\PC*".generate(&mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }
}
