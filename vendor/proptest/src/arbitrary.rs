//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (uniform over the whole domain).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniform strategy over all values of a primitive type.
pub struct AnyPrimitive<T>(PhantomData<T>);

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(PhantomData)
    }
}

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(PhantomData)
            }
        }
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
