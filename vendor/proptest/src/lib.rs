//! Offline drop-in subset of the `proptest` crate API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of proptest it uses: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_recursive` /
//! `boxed`, integer-range and tuple strategies, `prop::collection::vec`
//! / `hash_set`, `prop::option::of`, regex-lite `&str` strategies,
//! [`arbitrary::any`], and the `proptest!` / `prop_oneof!` /
//! `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs via the
//!   assertion message only.
//! * **Deterministic seeding** derived from the test's module path and
//!   name plus the case index, so failures reproduce across runs.
//! * String strategies support the character-class/quantifier subset
//!   of regex actually used in this workspace (plus `\PC`), not full
//!   regex syntax.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(..)` etc. work after
/// `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::strategy;
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// FNV-1a hash of a test path, used to derive per-test seeds.
#[doc(hidden)]
pub fn hash_name(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Define property tests. Matches the proptest 1.x surface used here:
/// an optional `#![proptest_config(..)]` header followed by
/// `#[test] fn name(pat in strategy, ..) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __base: u64 =
                    $crate::hash_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::new(
                        __base ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", __case, msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Pick one of several strategies, optionally weighted
/// (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert inside a `proptest!` body; failure fails the case with a
/// message rather than unwinding mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`\n{}",
            l,
            format!($($fmt)+)
        );
    }};
}

/// Discard the current case (counts as neither pass nor fail).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        $crate::prop_assume!($cond)
    };
}
