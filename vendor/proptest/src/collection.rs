//! Collection strategies: `vec` and `hash_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// Inclusive size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.in_range(self.min as u64, self.max as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>` aiming for a size drawn from
/// `size` (may come up short if the element domain is small).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = HashSet::with_capacity(target);
        // Bounded retries: a narrow element domain may not contain
        // `target` distinct values.
        for _ in 0..target.saturating_mul(4).max(8) {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}
