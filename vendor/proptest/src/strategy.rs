//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// directly produces a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf case and
    /// `recurse` wraps an inner strategy into a bigger value, applied
    /// up to `depth` levels. `desired_size`/`expected_branch_size` are
    /// accepted for API compatibility but unused (depth bounds size).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let expanded = recurse(cur).boxed();
            // Bias toward leaves so expected value size stays small.
            cur = Union::weighted(vec![(2, leaf.clone()), (1, expanded)]).boxed();
        }
        cur
    }

    /// Type-erase into a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, R> Strategy for FlatMap<S, F>
where
    S: Strategy,
    R: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R::Value;
    fn generate(&self, rng: &mut TestRng) -> R::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Weighted choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` pairs; weights must not all be
    /// zero.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof!: all weights are zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of bounds")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
