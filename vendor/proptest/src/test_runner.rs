//! Test-runner plumbing: config, case outcome, and the deterministic
//! generation RNG.

/// Per-`proptest!` configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256 and honours PROPTEST_CASES;
        // these suites drive whole-engine evaluations per case, so keep
        // the unconfigured default modest and let the env var scale it
        // up (the nightly deep-fuzz CI job sets PROPTEST_CASES=256).
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Outcome of a single generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`.
    Reject,
    /// The case failed an assertion, with a rendered message.
    Fail(String),
}

/// Deterministic splitmix64 generator used for value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build from a seed; identical seeds yield identical streams.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x6A09_E667_F3BC_C909,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (panics if `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        self.next_u64() % n
    }

    /// Uniform value in `lo..=hi`.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo + self.next_u64() % (span + 1)
        }
    }
}
