//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of criterion its benches use:
//! [`Criterion::benchmark_group`], group tuning knobs, `bench_function`
//! / `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`], and the
//! `criterion_group!` / `criterion_main!` macros. Statistics are
//! simple (mean / median / min over a time-boxed measurement loop) and
//! printed to stdout; there is no HTML report, baseline storage, or
//! outlier analysis.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Parse harness CLI args (`--bench` is ignored; a bare positional
    /// argument becomes a substring filter, as with real criterion).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "-q" | "--quiet" | "--noplot" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--sample-size" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            sample_size: 10,
        }
    }
}

/// Identifier `function_name/parameter` for one benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing tuning parameters.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Minimum number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the routine before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Time budget for the measurement loop.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark case.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.id.clone(), |b| f(b));
        self
    }

    /// Run one benchmark case that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id.clone(), |b| f(b, input));
        self
    }

    fn run(&mut self, case: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, case);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full);
    }

    /// End the group (kept for API compatibility; statistics are
    /// printed as each case finishes).
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Repeatedly run `routine`, warming up then measuring until the
    /// group's time budget or sample count is satisfied.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(routine());
        }
        let measure_start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            let enough_samples = self.samples.len() >= self.sample_size;
            let out_of_time = measure_start.elapsed() >= self.measurement;
            if (enough_samples && out_of_time) || self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name}: no samples (closure never called iter)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        println!(
            "{name}: mean {} median {} min {} (n={})",
            fmt_dur(mean),
            fmt_dur(median),
            fmt_dur(min),
            sorted.len()
        );
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a group runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
