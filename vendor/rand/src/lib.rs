//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *small* slice of `rand` it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_range` / `gen_bool`. The generator is a deterministic
//! splitmix64 — statistically fine for workload generation, not
//! cryptographic, and stable across platforms so seeded workloads stay
//! reproducible.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a stream of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, matching the subset of `rand::SeedableRng`
/// the workspace uses.
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges (half-open and inclusive) that `Rng::gen_range` accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Item;
    /// Draw a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> Self::Item;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Item = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Item = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (panics on an empty range).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Item
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 bits of randomness is plenty for workload generation.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<T: RngCore> Rng for T {}

/// Standard RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (public-domain construction).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = r.gen_range(1..=2usize);
            assert!((1..=2).contains(&w));
            let i = r.gen_range(-20i64..100);
            assert!((-20..100).contains(&i));
        }
    }

    #[test]
    fn bool_probabilities() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
