//! Offline drop-in subset of the `crossbeam` crate API.
//!
//! Two modules are used by this workspace:
//!
//! * `crossbeam::thread::scope` / `Scope::spawn` (the parallel
//!   enumerators and the morsel fixpoint). Since Rust 1.63 the standard
//!   library provides scoped threads, so this shim adapts
//!   `std::thread::scope` to crossbeam's signature: the spawned closure
//!   receives a `&Scope` argument and `scope` returns a
//!   `thread::Result` (std's version propagates panics instead; this
//!   shim therefore always returns `Ok` or unwinds, which is a strict
//!   subset of crossbeam's observable behaviour).
//! * `crossbeam::deque` — `Worker` / `Stealer` / `Injector` / `Steal`,
//!   the work-stealing deque API used by the morsel scheduler. The shim
//!   implements the same interface over `Mutex<VecDeque>`: correct and
//!   contention-adequate for the coarse morsel granularity it serves
//!   (hundreds of pops per fixpoint, not millions), without the
//!   epoch-GC machinery of the real lock-free implementation.

#![warn(missing_docs)]

/// Work-stealing deques (crossbeam-deque API subset).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The source was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether the source was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// The owner side of a work-stealing deque. `push`/`pop` are used by
    /// the owning worker thread; [`Worker::stealer`] hands out handles
    /// for other threads to steal from the opposite end.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a FIFO deque (owner pops from the front, stealers
        /// also steal from the front — FIFO order preserves the
        /// push-order locality the morsel scheduler relies on).
        pub fn new_fifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the deque.
        pub fn push(&self, task: T) {
            self.inner.lock().expect("deque lock").push_back(task);
        }

        /// Pops a task from the owner's end.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("deque lock").pop_front()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("deque lock").is_empty()
        }

        /// Creates a [`Stealer`] handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// A handle for stealing tasks from another worker's deque.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Attempts to steal one task.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("deque lock").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    /// A shared FIFO injector queue: the global entry point tasks are
    /// seeded into before workers pick them up.
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task into the queue.
        pub fn push(&self, task: T) {
            self.inner.lock().expect("injector lock").push_back(task);
        }

        /// Attempts to steal one task from the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("injector lock").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("injector lock").is_empty()
        }
    }
}

/// Scoped threads (crossbeam-utils `thread` module subset).
pub mod thread {
    /// Result type used by [`scope`] and `join`, as in `std::thread`.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle mirroring `crossbeam_utils::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries its panic
        /// payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the
        /// closure receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope for spawning threads that may borrow from the
    /// enclosing stack frame. All threads are joined before `scope`
    /// returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn deque_fifo_and_steal() {
        use super::deque::{Injector, Steal, Worker};
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());

        let inj = Injector::new();
        inj.push(10);
        assert!(!inj.is_empty());
        assert_eq!(inj.steal().success(), Some(10));
        assert!(inj.is_empty());
    }

    #[test]
    fn deque_steal_across_threads() {
        use super::deque::{Steal, Worker};
        let w = Worker::new_fifo();
        for i in 0..1000u64 {
            w.push(i);
        }
        let stealers: Vec<_> = (0..4).map(|_| w.stealer()).collect();
        let total: u64 = super::thread::scope(|scope| {
            let handles: Vec<_> = stealers
                .iter()
                .map(|s| {
                    scope.spawn(move |_| {
                        let mut sum = 0u64;
                        loop {
                            match s.steal() {
                                Steal::Success(v) => sum += v,
                                Steal::Empty => return sum,
                                Steal::Retry => continue,
                            }
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn scoped_sum_over_borrowed_slice() {
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let total: u64 = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(3)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 36);
    }

    #[test]
    fn nested_spawn_from_scope_arg() {
        let n: usize = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21usize).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
