//! Offline drop-in subset of the `crossbeam` crate API.
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` are used by this
//! workspace (the parallel stable-model enumerator). Since Rust 1.63
//! the standard library provides scoped threads, so this shim adapts
//! `std::thread::scope` to crossbeam's signature: the spawned closure
//! receives a `&Scope` argument and `scope` returns a
//! `thread::Result` (std's version propagates panics instead; this
//! shim therefore always returns `Ok` or unwinds, which is a strict
//! subset of crossbeam's observable behaviour).

#![warn(missing_docs)]

/// Scoped threads (crossbeam-utils `thread` module subset).
pub mod thread {
    /// Result type used by [`scope`] and `join`, as in `std::thread`.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle mirroring `crossbeam_utils::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries its panic
        /// payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the
        /// closure receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope for spawning threads that may borrow from the
    /// enclosing stack frame. All threads are joined before `scope`
    /// returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_sum_over_borrowed_slice() {
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let total: u64 = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(3)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 36);
    }

    #[test]
    fn nested_spawn_from_scope_arg() {
        let n: usize = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21usize).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
