//! # ordered-logic — a reproduction of *Extending Logic Programming*
//! (Laenens, Saccà & Vermeir, SIGMOD 1990)
//!
//! **Ordered logic programming** extends logic programming with
//! object-oriented abstractions: a program is a partially ordered set
//! of *components* (modules/objects) whose rules may have **negated
//! heads**. A component inherits the rules of everything above it in
//! the "isa" hierarchy; local rules **overrule** inherited ones, and
//! contradictory rules from incomparable components **defeat** each
//! other — giving defaults, exceptions, versioning, and non-monotonic
//! reasoning in one declarative framework that also subsumes the
//! classical stable / founded / 3-valued semantics of negation.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`core`] | terms, literals, rules, components, ordered programs |
//! | [`parser`] | surface syntax |
//! | [`analyze`] | order-aware lints: W01–W08 / E01 diagnostics with spans |
//! | [`ground`] | exhaustive + smart grounders |
//! | [`semantics`] | Def. 2–9: statuses, `V` fixpoint, models, assumption-free & stable models |
//! | [`classic`] | classical baselines: `T_P`, stratified, WFS, GL-stable, founded |
//! | [`transform`] | `OV`/`EV`/`3V` and the direct semantics of negative programs |
//! | [`kb`] | knowledge-base layer: objects, isa, relations, queries |
//! | [`store`] | durability: checksummed snapshots, write-ahead log, crash recovery |
//! | [`server`] | `olp serve`: concurrent TCP server with snapshot-isolated reads |
//!
//! ## Quickstart
//!
//! ```
//! use ordered_logic::prelude::*;
//!
//! let mut b = KbBuilder::new();
//! b.rules("bird", "
//!     bird(penguin). bird(pigeon).
//!     fly(X) :- bird(X).
//!     -ground_animal(X) :- bird(X).
//! ").unwrap();
//! b.isa("antarctic", "bird");
//! b.rules("antarctic", "
//!     ground_animal(penguin).
//!     -fly(X) :- ground_animal(X).
//! ").unwrap();
//!
//! let mut kb = b.build(GroundStrategy::Smart).unwrap();
//! assert_eq!(kb.truth("antarctic", "fly(penguin)").unwrap(), Truth::False);
//! assert_eq!(kb.truth("antarctic", "fly(pigeon)").unwrap(), Truth::True);
//! assert_eq!(kb.truth("bird", "fly(penguin)").unwrap(), Truth::True);
//! ```

pub use olp_analyze as analyze;
pub use olp_classic as classic;
pub use olp_core as core;
pub use olp_ground as ground;
pub use olp_kb as kb;
pub use olp_parser as parser;
pub use olp_semantics as semantics;
pub use olp_server as server;
pub use olp_store as store;
pub use olp_transform as transform;

/// The most common imports in one place.
pub mod prelude {
    pub use olp_analyze::{analyze, Code, Diagnostic, Severity};
    pub use olp_core::{
        Budget, CompId, Eval, GLit, Interpretation, InterruptReason, Interrupted, OrderedProgram,
        Rule, Sign, Truth, World,
    };
    pub use olp_ground::{ground_exhaustive, ground_smart, GroundConfig, GroundProgram};
    pub use olp_kb::{
        Durability, DurableKb, GroundStrategy, Kb, KbBuilder, QueryOptions, Relation,
    };
    pub use olp_parser::{parse_ground_literal, parse_program, parse_rule};
    pub use olp_semantics::{
        enumerate_assumption_free, explain, is_assumption_free, is_model, least_model, prove,
        render_why, skeptical_consequences, stable_models, View,
    };
    pub use olp_transform::{extended_version, ordered_version, three_level_version};
}
