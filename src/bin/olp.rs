//! `olp` — command-line front end for ordered logic programs.
//!
//! ```text
//! olp check  FILE                          parse, lint (W01–W11/E01), ground, print stats
//!        --deny warnings                   exit 1 if any warning fires (CI gate)
//!        --format json                     emit diagnostics as a JSON array
//!        --explain                         print each component's program profile
//!                                          (stratification class, order-relevance,
//!                                          conflict counts, cardinality bounds)
//! olp models FILE [COMPONENT] [FLAGS]      print models per component
//!        --least (default) | --stable | --af | --skeptical | --all-semantics
//! olp query  FILE COMPONENT PATTERN        answer a query (ground or with variables)
//!        --explain                         print a proof / refutation for ground queries
//! olp repl FILE | olp --interactive FILE   live session over a knowledge base:
//!        assert <rule> / retract <rule>    incremental re-grounding with timing output
//!        --db DIR                          durable session: open the database at DIR
//!                                          (crash recovery included) or create it from
//!                                          FILE; every mutation is WAL-logged
//!        --durability off|commit|batched   fsync policy for --db (default commit)
//!        save [DIR] / load DIR             snapshot now / switch to another database
//! olp serve [FILE] [FLAGS]                 multi-client TCP server (see SERVER.md):
//!        --listen ADDR                     bind address (default 127.0.0.1:7171; :0 = any port)
//!        --max-conns N / --max-queries N   admission control (connections / queries in flight)
//!        --db DIR / --durability MODE      serve a durable database (crash recovery included)
//! common flags:
//!        --exhaustive                      use the reference grounder (default: smart)
//!        --no-decomp                       disable component-wise evaluation
//!        --threads N                       worker threads (grounding + evaluation)
//!        --morsel N                        target morsel weight for the parallel fixpoint
//!        --timeout SECS                    wall-clock limit; partial results, exit 124
//!        --max-steps N                     engine work-unit limit; same degradation
//!        --max-models N                    stop model enumeration after N models
//! ```
//!
//! When a limit is hit the command prints whatever was computed so far,
//! marks it with a `PARTIAL` banner, and exits with code **124** (the
//! `timeout(1)` convention).

use ordered_logic::analyze::{analyze, Severity};
use ordered_logic::ground::{FlatView, ProgramStats};
use ordered_logic::kb::{
    default_morsel_weight, default_threads, DurableKb, KbError, RecoveryReport,
};
use ordered_logic::prelude::*;
use ordered_logic::semantics::{
    credulous_consequences_budgeted, enumerate_assumption_free_decomposed_budgeted,
    enumerate_assumption_free_parallel_budgeted, enumerate_assumption_free_propagating_budgeted,
    explain_in, flatten, least_model_monolithic_budgeted, least_model_morsel, render_why,
    skeptical_consequences_budgeted, stable_models_budgeted, stable_models_monolithic_budgeted,
    stable_models_parallel_budgeted, MorselCfg,
};
use ordered_logic::store::Db;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  olp check  FILE [--deny warnings] [--format json|text] [--explain] [--exhaustive]
             runs the order-aware lints (W01–W11, E01; see docs/ANALYSIS.md)
             and prints positioned diagnostics before the structure report
             (per-component evaluation plan + join-planner statistics);
             --explain adds each component's program profile (stratification
             class, order-relevance, conflict counts, cardinality bounds);
             errors always exit 1, warnings only under --deny warnings
  olp models FILE [COMPONENT] [--least|--stable|--af|--skeptical|--credulous|--all-semantics] [--exhaustive] [--no-decomp]
  olp query  FILE COMPONENT PATTERN [--explain] [--exhaustive] [--no-decomp]
  olp repl   [FILE] [--db DIR] [--durability off|commit|batched] [--exhaustive] [--no-decomp]
             live session: use <component> | models | stable | explain <literal> |
             stats (evaluation plan + statistics) | assert <rule> |
             retract <rule> (incremental re-grounding, timed) |
             save [DIR] | load DIR | <query> | quit    (also: olp --interactive FILE)
  olp serve  [FILE] [--listen ADDR] [--max-conns N] [--max-queries N]
             [--db DIR] [--durability MODE] [--timeout SECS]
             multi-client TCP server speaking one JSON object per line
             (commands: query | truth | why | assert | retract | save |
             stats | set | ping | shutdown — see SERVER.md); reads are
             snapshot-isolated, writes serialise through one writer,
             every response carries the epoch it was evaluated at;
             SIGTERM drains in-flight requests and fsyncs the WAL
persistence (see docs/DURABILITY.md):
  --db DIR           durable session: open the database at DIR — snapshot
                     decoded and WAL replayed, torn tails truncated — or,
                     when DIR does not exist yet, create it from FILE;
                     every committed assert/retract is logged
  --durability MODE  off (no fsync) | commit (fsync per op, default) |
                     batched (fsync every 64 ops)
evaluation:
  --no-decomp        disable component-wise evaluation (SCC condensation
                     and product-form enumeration); use the monolithic engines
  --threads N        worker threads for grounding, the morsel-driven flat
                     least model, and stable enumeration (default: the
                     OLP_THREADS env var, else all cores; 1 = sequential;
                     results are identical at every value)
  --morsel N         target morsel weight (rules + body literals + attack
                     edges) for the work-stealing fixpoint scheduler
                     (default: the OLP_MORSEL env var, else 2048; purely
                     a scheduling knob — results are identical)
resource limits (any command):
  --timeout SECS     wall-clock limit (fractions allowed); exits 124 when hit
  --max-steps N      cap on engine work units; exits 124 when hit
  --max-models N     cap on enumerated models (models/stable/af)"
    );
    ExitCode::from(2)
}

/// Resource limits and engine choices parsed from the command line.
#[derive(Debug, Clone)]
struct Limits {
    timeout: Option<Duration>,
    max_steps: Option<u64>,
    max_models: Option<usize>,
    /// Component-wise evaluation (on unless `--no-decomp`).
    decomp: bool,
    /// Worker threads (`--threads N`, default [`default_threads`]).
    threads: usize,
    /// Target morsel weight for the parallel fixpoint (`--morsel N`,
    /// default [`default_morsel_weight`]).
    morsel: u64,
    /// `check --deny warnings`: warnings become fatal (exit 1).
    deny_warnings: bool,
    /// `check --format json`: emit diagnostics as a JSON array.
    json: bool,
    /// `repl --db DIR`: durable session backed by this database.
    db: Option<String>,
    /// `--durability MODE`: fsync policy for the database.
    durability: Durability,
    /// `serve --listen ADDR`: bind address for the server.
    listen: String,
    /// `serve --max-conns N`: concurrent-connection cap.
    max_conns: usize,
    /// `serve --max-queries N`: in-flight evaluation cap.
    max_queries: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            timeout: None,
            max_steps: None,
            max_models: None,
            decomp: true,
            threads: default_threads(),
            morsel: default_morsel_weight(),
            deny_warnings: false,
            json: false,
            db: None,
            durability: Durability::OnCommit,
            listen: "127.0.0.1:7171".to_string(),
            max_conns: 64,
            max_queries: 16,
        }
    }
}

impl Limits {
    fn set(&mut self, name: &str, val: &str) -> Result<(), String> {
        match name {
            "timeout" => {
                let secs: f64 = val
                    .parse()
                    .map_err(|_| format!("--timeout: `{val}` is not a number of seconds"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(format!("--timeout: `{val}` must be a non-negative number"));
                }
                self.timeout = Some(Duration::from_secs_f64(secs));
            }
            "max-steps" => {
                self.max_steps =
                    Some(val.parse().map_err(|_| {
                        format!("--max-steps: `{val}` is not a non-negative integer")
                    })?);
            }
            "max-models" => {
                self.max_models =
                    Some(val.parse().map_err(|_| {
                        format!("--max-models: `{val}` is not a non-negative integer")
                    })?);
            }
            "threads" => {
                let n: usize = val
                    .parse()
                    .map_err(|_| format!("--threads: `{val}` is not a positive integer"))?;
                if n == 0 {
                    return Err(format!("--threads: `{val}` must be at least 1"));
                }
                self.threads = n;
            }
            "morsel" => {
                let n: u64 = val
                    .parse()
                    .map_err(|_| format!("--morsel: `{val}` is not a positive integer"))?;
                if n == 0 {
                    return Err(format!("--morsel: `{val}` must be at least 1"));
                }
                self.morsel = n;
            }
            "deny" => match val {
                "warnings" => self.deny_warnings = true,
                _ => return Err(format!("--deny: `{val}` unsupported (only `warnings`)")),
            },
            "format" => match val {
                "text" => self.json = false,
                "json" => self.json = true,
                _ => return Err(format!("--format: `{val}` unsupported (text or json)")),
            },
            "db" => self.db = Some(val.to_string()),
            "listen" => self.listen = val.to_string(),
            "max-conns" => {
                let n: usize = val
                    .parse()
                    .map_err(|_| format!("--max-conns: `{val}` is not a positive integer"))?;
                if n == 0 {
                    return Err(format!("--max-conns: `{val}` must be at least 1"));
                }
                self.max_conns = n;
            }
            "max-queries" => {
                let n: usize = val
                    .parse()
                    .map_err(|_| format!("--max-queries: `{val}` is not a positive integer"))?;
                if n == 0 {
                    return Err(format!("--max-queries: `{val}` must be at least 1"));
                }
                self.max_queries = n;
            }
            "durability" => {
                self.durability = match val {
                    "off" => Durability::Off,
                    "commit" => Durability::OnCommit,
                    "batched" => Durability::Batched,
                    _ => {
                        return Err(format!(
                            "--durability: `{val}` unsupported (off, commit, or batched)"
                        ))
                    }
                }
            }
            _ => return Err(format!("unknown limit flag --{name}")),
        }
        Ok(())
    }

    /// A fresh budget whose deadline starts now.
    fn budget(&self) -> Budget {
        Budget::limited(self.max_steps, self.timeout.map(|t| Instant::now() + t))
    }

    /// Least model under these limits: the flat morsel engine (which
    /// runs its sequential path at `--threads 1`), or the monolithic
    /// interpretive engine under `--no-decomp`.
    fn least(&self, view: &View, budget: &Budget) -> Eval<Interpretation> {
        if !self.decomp {
            least_model_monolithic_budgeted(view, budget)
        } else {
            let cfg = MorselCfg {
                threads: self.threads,
                target_weight: self.morsel,
                ..MorselCfg::default()
            };
            least_model_morsel(&flatten(view), &cfg, budget)
        }
    }

    /// Stable models under these limits (parallel, decomposed, or
    /// monolithic).
    fn stable(&self, view: &View, n_atoms: usize, budget: &Budget) -> Eval<Vec<Interpretation>> {
        if !self.decomp {
            stable_models_monolithic_budgeted(view, n_atoms, budget, self.max_models)
        } else if self.threads > 1 {
            stable_models_parallel_budgeted(view, n_atoms, self.threads, budget, self.max_models)
        } else {
            stable_models_budgeted(view, n_atoms, budget, self.max_models)
        }
    }

    /// Assumption-free models under these limits (parallel, decomposed,
    /// or monolithic propagating search).
    fn af(&self, view: &View, n_atoms: usize, budget: &Budget) -> Eval<Vec<Interpretation>> {
        if !self.decomp {
            enumerate_assumption_free_propagating_budgeted(view, n_atoms, budget, self.max_models)
        } else if self.threads > 1 {
            enumerate_assumption_free_parallel_budgeted(
                view,
                n_atoms,
                self.threads,
                budget,
                self.max_models,
            )
        } else {
            enumerate_assumption_free_decomposed_budgeted(view, n_atoms, budget, self.max_models)
        }
    }
}

/// How a command failed: an ordinary error (exit 1) or resource
/// exhaustion before any partial result could be shown (exit 124).
enum CliFail {
    Msg(String),
    Exhausted(String),
}

impl From<String> for CliFail {
    fn from(e: String) -> Self {
        CliFail::Msg(e)
    }
}

/// `Ok(true)` means the command finished but produced partial results
/// (exit 124 after printing).
type CmdResult = Result<bool, CliFail>;

struct Loaded {
    world: World,
    prog: OrderedProgram,
    ground: GroundProgram,
}

fn load(path: &str, exhaustive: bool, budget: &Budget, threads: usize) -> Result<Loaded, CliFail> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| CliFail::Msg(format!("cannot read {path}: {e}")))?;
    let mut world = World::new();
    let prog = parse_program(&mut world, &src).map_err(|e| CliFail::Msg(e.to_string()))?;
    prog.order().map_err(|e| CliFail::Msg(e.to_string()))?;
    let cfg = GroundConfig {
        budget: budget.clone(),
        threads,
        ..GroundConfig::default()
    };
    let ground = if exhaustive {
        ground_exhaustive(&mut world, &prog, &cfg)
    } else {
        ground_smart(&mut world, &prog, &cfg)
    }
    .map_err(|e| match e {
        ordered_logic::ground::GroundError::Interrupted(r) => {
            CliFail::Exhausted(format!("grounding interrupted: {r}"))
        }
        other => CliFail::Msg(other.to_string()),
    })?;
    Ok(Loaded {
        world,
        prog,
        ground,
    })
}

fn find_component(l: &Loaded, name: &str) -> Result<CompId, String> {
    l.world
        .syms
        .get(name)
        .and_then(|s| l.prog.component_by_name(s))
        .ok_or_else(|| {
            let names: Vec<&str> = l
                .prog
                .components
                .iter()
                .map(|c| l.world.syms.name(c.name))
                .collect();
            format!("unknown component `{name}` (have: {})", names.join(", "))
        })
}

/// The `PARTIAL` banner printed when a limit interrupts a computation.
fn partial_banner(what: &str, reason: InterruptReason) -> String {
    format!("  PARTIAL {what} ({reason}): showing results computed so far")
}

fn cmd_check(path: &str, exhaustive: bool, explain: bool, limits: &Limits) -> CmdResult {
    // Analyze the *parsed* program first: lint findings (including E01
    // order errors) come out as positioned diagnostics before any
    // grounding work happens.
    let src = std::fs::read_to_string(path)
        .map_err(|e| CliFail::Msg(format!("cannot read {path}: {e}")))?;
    let mut world = World::new();
    let prog = match parse_program(&mut world, &src) {
        Ok(p) => p,
        Err(e) if limits.json => {
            // Machine-readable mode promises a JSON array on stdout no
            // matter what; a parse failure becomes an E02 diagnostic
            // (escaped exactly once by the JSON renderer) instead of a
            // bare text line.
            use ordered_logic::analyze::{Code, Diagnostic};
            let d = Diagnostic::new(Code::ParseError, e.msg.clone()).at(Some(
                ordered_logic::core::Pos {
                    line: e.pos.line,
                    col: e.pos.col,
                },
            ));
            println!("{}", ordered_logic::analyze::to_json_array(&[d], path));
            return Err(CliFail::Msg(format!("{path}: 1 error found")));
        }
        Err(e) => return Err(CliFail::Msg(e.to_string())),
    };
    let diags = analyze(&world, &prog);
    if limits.json {
        println!("{}", ordered_logic::analyze::to_json_array(&diags, path));
    } else {
        for d in &diags {
            println!("{}", d.render(path));
        }
    }
    let n_errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let n_warns = diags
        .iter()
        .filter(|d| d.severity == Severity::Warn)
        .count();
    if n_errors > 0 {
        return Err(CliFail::Msg(format!(
            "{path}: {n_errors} error{} found",
            if n_errors == 1 { "" } else { "s" }
        )));
    }
    if limits.deny_warnings && n_warns > 0 {
        return Err(CliFail::Msg(format!(
            "{path}: {n_warns} warning{} denied (--deny warnings)",
            if n_warns == 1 { "" } else { "s" }
        )));
    }
    if limits.json {
        // Machine-readable mode: the diagnostics array is the whole
        // output; skip the human-oriented structure report.
        return Ok(false);
    }
    let budget = limits.budget();
    let l = load(path, exhaustive, &budget, limits.threads)?;
    println!(
        "{path}: OK — {} components, {} rules, {} ground instances, {} atoms",
        l.prog.components.len(),
        l.prog.rule_count(),
        l.ground.len(),
        l.ground.n_atoms
    );
    let order = l.prog.order().map_err(|e| CliFail::Msg(e.to_string()))?;
    for (ci, c) in l.prog.components.iter().enumerate() {
        let id = CompId(ci as u32);
        let above: Vec<&str> = order
            .upset(id)
            .filter(|&j| j != id)
            .map(|j| l.world.syms.name(l.prog.components[j.index()].name))
            .collect();
        let view = View::new(&l.ground, id);
        let stats = view.stats();
        let conflicts = view.mutual_defeats();
        println!(
            "  {} — {} rules, sees {} ground instances ({} overrule / {} defeat edges){}",
            l.world.syms.name(c.name),
            c.rules.len(),
            stats.rules,
            stats.overrule_edges,
            stats.defeat_edges,
            if above.is_empty() {
                String::new()
            } else {
                format!(", inherits from {}", above.join(" < "))
            }
        );
        for (h, r1, r2) in conflicts.iter().take(5) {
            println!(
                "    conflict: {} contested by unranked rules {} / {}",
                l.world.glit_str(*h),
                l.ground.rule_str(&l.world, view.global_index(*r1)),
                l.ground.rule_str(&l.world, view.global_index(*r2)),
            );
        }
        if conflicts.len() > 5 {
            println!("    … and {} more conflicts", conflicts.len() - 5);
        }
        // The evaluation plan this component would run under: flat
        // strata/levels, the morsel schedule at the configured weight,
        // and the statistics that drive the join planner.
        // `--explain`: the semantic profile the analysis pass proved
        // for this component — what the engine's fast-path selection
        // keys on (see docs/ANALYSIS.md, "Program profiles").
        if explain {
            let p = ordered_logic::analyze::component_profile(&l.prog, &order, id);
            println!("    profile: {}", p.summary());
            for bnd in &p.pred_bounds {
                let info = l.world.preds.info(bnd.pred);
                println!(
                    "      bound {}{}/{}: {} ground fact{} ({})",
                    if bnd.sign == ordered_logic::core::Sign::Pos {
                        ""
                    } else {
                        "-"
                    },
                    l.world.syms.name(info.name),
                    info.arity,
                    bnd.facts,
                    if bnd.facts == 1 { "" } else { "s" },
                    if bnd.exact {
                        "exact"
                    } else {
                        "lower bound; derived heads open"
                    },
                );
            }
        }
        let fv = FlatView::new(&l.ground, id);
        let morsels = fv.morsels(limits.morsel);
        println!(
            "    plan: {} strata over {} levels; {} morsel{} @ weight {}, {} thread{}",
            fv.n_strata(),
            fv.n_levels(),
            morsels.len(),
            if morsels.len() == 1 { "" } else { "s" },
            limits.morsel,
            limits.threads,
            if limits.threads == 1 { "" } else { "s" },
        );
        let stats = ProgramStats::collect(&l.world, &l.ground, id);
        for line in stats.render(&l.world).lines() {
            println!("    {line}");
        }
    }
    Ok(false)
}

fn cmd_models(
    path: &str,
    component: Option<&str>,
    mode: &str,
    exhaustive: bool,
    limits: &Limits,
) -> CmdResult {
    let budget = limits.budget();
    let l = load(path, exhaustive, &budget, limits.threads)?;
    let comps: Vec<CompId> = match component {
        Some(name) => vec![find_component(&l, name)?],
        None => (0..l.prog.components.len() as u32).map(CompId).collect(),
    };
    let mut partial = false;
    for c in comps {
        let name = l.world.syms.name(l.prog.components[c.index()].name);
        println!("component `{name}`:");
        let view = View::new(&l.ground, c);
        let show_least = matches!(mode, "least" | "all");
        let show_stable = matches!(mode, "stable" | "all");
        let show_af = matches!(mode, "af" | "all");
        let show_sk = matches!(mode, "skeptical" | "all");
        let show_cred = matches!(mode, "credulous" | "all");
        if show_least {
            let ev = limits.least(&view, &budget);
            if let Some(reason) = ev.reason() {
                println!("{}", partial_banner("least model", reason));
                partial = true;
            }
            println!("  least model: {}", ev.value().render(&l.world));
        }
        if show_af {
            let ev = limits.af(&view, l.ground.n_atoms, &budget);
            if let Some(reason) = ev.reason() {
                println!("{}", partial_banner("enumeration", reason));
                partial = true;
            }
            for m in ev.value() {
                println!("  assumption-free: {}", m.render(&l.world));
            }
        }
        if show_stable {
            // W11: the profile proves exactly one stable model here, so
            // `--stable` pays for enumeration machinery that `--least`
            // answers outright. Advisory only — printed to stderr so
            // scripted consumers of the model lines are unaffected.
            if let Ok(order) = l.prog.order() {
                let p = ordered_logic::analyze::component_profile(&l.prog, &order, c);
                if p.single_model {
                    let d = ordered_logic::analyze::Diagnostic::new(
                        ordered_logic::analyze::Code::SingleModelStable,
                        format!(
                            "component `{name}` provably has exactly one stable model \
                             ({}); `--least` computes it without enumeration",
                            p.summary()
                        ),
                    )
                    .in_comp(c);
                    eprintln!("{}", d.render(path));
                }
            }
            let ev = limits.stable(&view, l.ground.n_atoms, &budget);
            if let Some(reason) = ev.reason() {
                println!("{}", partial_banner("enumeration", reason));
                partial = true;
            }
            for m in ev.value() {
                let total = if m.is_total(l.ground.n_atoms) {
                    " (total)"
                } else {
                    ""
                };
                println!("  stable: {}{total}", m.render(&l.world));
            }
        }
        if show_sk {
            let ev = skeptical_consequences_budgeted(&view, l.ground.n_atoms, &budget);
            if let Some(reason) = ev.reason() {
                println!("{}", partial_banner("skeptical set", reason));
                partial = true;
            }
            println!("  skeptical: {}", ev.value().render(&l.world));
        }
        if show_cred {
            let ev = credulous_consequences_budgeted(&view, l.ground.n_atoms, &budget);
            if let Some(reason) = ev.reason() {
                println!("{}", partial_banner("credulous set", reason));
                partial = true;
            }
            let lits: Vec<String> = ev
                .value()
                .iter()
                .map(|&lit| l.world.glit_str(lit))
                .collect();
            println!("  credulous: {{{}}}", lits.join(", "));
        }
    }
    Ok(partial)
}

fn cmd_query(
    path: &str,
    component: &str,
    pattern: &str,
    explain: bool,
    exhaustive: bool,
    limits: &Limits,
) -> CmdResult {
    let budget = limits.budget();
    let mut l = load(path, exhaustive, &budget, limits.threads)?;
    let c = find_component(&l, component)?;
    cmd_query_loaded(&mut l, c, pattern, explain, &budget, limits).map_err(CliFail::Msg)
}

/// [`QueryOptions`] matching the command-line limits (fresh deadline
/// per command).
fn repl_opts(limits: &Limits) -> QueryOptions {
    let mut o = QueryOptions::new();
    if let Some(t) = limits.timeout {
        o = o.timeout(t);
    }
    if let Some(s) = limits.max_steps {
        o = o.max_steps(s);
    }
    if let Some(m) = limits.max_models {
        o = o.max_models(m);
    }
    if !limits.decomp {
        o = o.no_decomp();
    }
    o.threads(limits.threads).morsel_weight(limits.morsel)
}

/// The REPL's knowledge base: plain in-memory, or backed by an
/// `olp-store` database (`--db DIR`) in which case every committed
/// mutation is WAL-logged.
enum SessionKb {
    Plain(Kb),
    Durable(DurableKb),
}

impl SessionKb {
    /// The wrapped KB, for queries (which never need logging).
    fn kb(&mut self) -> &mut Kb {
        match self {
            SessionKb::Plain(kb) => kb,
            SessionKb::Durable(d) => d.kb_mut(),
        }
    }
}

/// Opens the database at `path`, mapping failures (missing, corrupt,
/// unreadable) to a readable `error:` line and exit 1.
fn open_db(path: &str, limits: &Limits) -> Result<(DurableKb, RecoveryReport), CliFail> {
    DurableKb::open(std::path::Path::new(path), limits.durability)
        .map_err(|e| CliFail::Msg(format!("cannot open database {path}: {e}")))
}

/// One line summarising what [`DurableKb::open`] recovered.
fn recovery_line(path: &str, d: &DurableKb, report: &RecoveryReport) -> String {
    let mut s = format!(
        "opened database {path}: seq {}, {} op{} replayed",
        d.seq(),
        report.replayed,
        if report.replayed == 1 { "" } else { "s" },
    );
    if report.wal_dropped_bytes > 0 {
        s.push_str(&format!(
            " ({} byte{} of torn WAL tail dropped)",
            report.wal_dropped_bytes,
            if report.wal_dropped_bytes == 1 {
                ""
            } else {
                "s"
            },
        ));
    }
    s
}

/// Applies one live mutation with timing and instance-count output.
/// The budget governs the (incremental) re-grounding; on interruption
/// the mutation is not applied and the KB stays queryable as before.
/// In a durable session the committed mutation is WAL-logged before
/// this returns (per the `--durability` policy).
fn repl_mutate(session: &mut SessionKb, object: &str, rule: &str, assert: bool, limits: &Limits) {
    if rule.is_empty() {
        println!(
            "usage: {} <rule>.",
            if assert { "assert" } else { "retract" }
        );
        return;
    }
    let before = session.kb().ground_program().len();
    let start = Instant::now();
    let opts = repl_opts(limits);
    let res = match (&mut *session, assert) {
        (SessionKb::Plain(kb), true) => kb
            .assert_rule_with(object, rule, &opts)
            .map(|ev| ev.map(|()| true)),
        (SessionKb::Plain(kb), false) => kb.retract_rule_with(object, rule, &opts),
        (SessionKb::Durable(d), true) => d
            .assert_rule_with(object, rule, &opts)
            .map(|ev| ev.map(|()| true)),
        (SessionKb::Durable(d), false) => d.retract_rule_with(object, rule, &opts),
    };
    let elapsed = start.elapsed();
    match res {
        Ok(ev) => {
            if let Some(reason) = ev.reason() {
                println!("{}", partial_banner("mutation", reason));
                println!("  mutation not applied; knowledge base unchanged");
                return;
            }
            if !ev.into_value() {
                println!("no rule matching `{rule}` in `{object}` (nothing retracted)");
                return;
            }
            let kb = session.kb();
            let after = kb.ground_program().len() as i64;
            let delta = after - before as i64;
            let epoch = kb.epoch();
            println!(
                "{} `{object}` in {elapsed:.2?}: {after} ground instances ({}{delta}), epoch {epoch}{}",
                if assert {
                    "asserted into"
                } else {
                    "retracted from"
                },
                if delta >= 0 { "+" } else { "" },
                match session {
                    SessionKb::Plain(_) => String::new(),
                    SessionKb::Durable(d) => format!(", logged seq {}", d.seq()),
                }
            );
        }
        Err(e) => println!("error: {e}"),
    }
}

/// Builds the REPL's in-memory KB from a program file (the
/// non-durable path, and the creation path for a fresh `--db`).
fn load_repl_kb(path: &str, exhaustive: bool, limits: &Limits) -> Result<Kb, CliFail> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| CliFail::Msg(format!("cannot read {path}: {e}")))?;
    let mut world = World::new();
    let prog = parse_program(&mut world, &src).map_err(|e| CliFail::Msg(e.to_string()))?;
    let cfg = GroundConfig {
        budget: limits.budget(),
        threads: limits.threads,
        ..GroundConfig::default()
    };
    let strategy = if exhaustive {
        GroundStrategy::Exhaustive
    } else {
        GroundStrategy::Smart
    };
    // The REPL holds a `Kb` so that assert/retract go through
    // incremental maintenance (delta grounding + stratum-local cache
    // revalidation) and limits apply per command, not per session.
    KbBuilder::from_parts(world, prog)
        .build_with(strategy, &cfg)
        .map_err(|e| CliFail::Msg(e.to_string()))
}

fn cmd_repl(path: Option<&str>, exhaustive: bool, limits: &Limits) -> CmdResult {
    use std::io::{BufRead, Write};
    let mut session = match (&limits.db, path) {
        (Some(db), _) if Db::exists(std::path::Path::new(db)) => {
            let (d, report) = open_db(db, limits)?;
            println!("{}", recovery_line(db, &d, &report));
            if let Some(p) = path {
                println!("note: database {db} already exists; {p} not re-read");
            }
            SessionKb::Durable(d)
        }
        (Some(db), Some(p)) => {
            let kb = load_repl_kb(p, exhaustive, limits)?;
            let d = DurableKb::create(std::path::Path::new(db), kb, limits.durability)
                .map_err(|e| CliFail::Msg(format!("cannot create database {db}: {e}")))?;
            println!("created database {db} from {p}");
            SessionKb::Durable(d)
        }
        (Some(db), None) => {
            return Err(CliFail::Msg(format!(
                "cannot open database {db}: no database there and no FILE to create one from"
            )))
        }
        (None, Some(p)) => SessionKb::Plain(load_repl_kb(p, exhaustive, limits)?),
        (None, None) => return Err(CliFail::Msg("repl: FILE or --db DIR required".to_string())),
    };
    session.kb().set_threads(limits.threads);
    session.kb().set_morsel_weight(limits.morsel);
    let origin = path
        .map(str::to_string)
        .or_else(|| limits.db.clone())
        .unwrap_or_default();
    let mut current = match session.kb().objects().first() {
        Some(first) => first.to_string(),
        None => return Err(CliFail::Msg(format!("{origin}: program has no components"))),
    };
    println!(
        "loaded {origin}: {} components. Commands: use <component> | models | stable | \
         explain <literal> | stats | assert <rule> | retract <rule> | save [DIR] | load DIR | \
         <query> | quit",
        session.kb().objects().len()
    );
    let stdin = std::io::stdin();
    loop {
        print!("olp:{current}> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            return Ok(false);
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (cmd, rest) = match line.split_once(' ') {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            "quit" | "exit" | ":q" => return Ok(false),
            "use" => {
                if session.kb().objects().contains(&rest) {
                    current = rest.to_string();
                } else {
                    println!(
                        "error: unknown component `{rest}` (have: {})",
                        session.kb().objects().join(", ")
                    );
                }
            }
            "models" => {
                let kb = session.kb();
                match kb.model_with(&current, &repl_opts(limits)) {
                    Ok(ev) => {
                        if let Some(reason) = ev.reason() {
                            println!("{}", partial_banner("least model", reason));
                        }
                        println!("least model: {}", kb.render(ev.value()));
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "stable" => {
                let kb = session.kb();
                match kb.stable_with(&current, &repl_opts(limits)) {
                    Ok(ev) => {
                        if let Some(reason) = ev.reason() {
                            println!("{}", partial_banner("enumeration", reason));
                        }
                        for m in ev.value() {
                            println!("stable: {}", kb.render(m));
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "explain" => match session.kb().explain(&current, rest) {
                Ok(text) => print!("{text}"),
                Err(e) => println!("error: {e}"),
            },
            "stats" => {
                // The evaluation plan for the current component (or an
                // explicit one): flat strata/levels, morsel schedule,
                // and the statistics the join planner orders bodies by.
                let target = if rest.is_empty() { &current } else { rest };
                match session.kb().plan_report(target) {
                    Ok(text) => print!("{text}"),
                    Err(e) => println!("error: {e}"),
                }
            }
            "assert" => repl_mutate(&mut session, &current, rest, true, limits),
            "retract" => repl_mutate(&mut session, &current, rest, false, limits),
            "save" => {
                // `save` compacts the attached database; `save DIR`
                // writes a standalone snapshot-only copy at DIR.
                let res = match (&mut session, rest) {
                    (SessionKb::Durable(d), "") => d.save().map(|()| {
                        format!("snapshot written to {} (WAL reset)", d.db().dir().display())
                    }),
                    (SessionKb::Plain(_), "") => {
                        println!(
                            "error: no database attached (start with --db DIR, or `save DIR`)"
                        );
                        continue;
                    }
                    (SessionKb::Durable(d), dir) => d
                        .save_to(std::path::Path::new(dir), limits.durability)
                        .map(|()| format!("database written to {dir}")),
                    (SessionKb::Plain(kb), dir) => Db::create(
                        std::path::Path::new(dir),
                        kb.world(),
                        kb.program(),
                        kb.ground_program(),
                        limits.durability,
                    )
                    .map(|_| format!("database written to {dir}"))
                    .map_err(KbError::from),
                };
                match res {
                    Ok(msg) => println!("{msg}"),
                    Err(e) => println!("error: {e}"),
                }
            }
            "load" => {
                if rest.is_empty() {
                    println!("usage: load DIR");
                    continue;
                }
                match open_db(rest, limits) {
                    Ok((mut d, report)) => {
                        println!("{}", recovery_line(rest, &d, &report));
                        d.kb_mut().set_threads(limits.threads);
                        d.kb_mut().set_morsel_weight(limits.morsel);
                        current = match d.kb_mut().objects().first() {
                            Some(first) => first.to_string(),
                            None => {
                                println!("error: {rest}: database has no components");
                                continue;
                            }
                        };
                        session = SessionKb::Durable(d);
                    }
                    Err(CliFail::Msg(e) | CliFail::Exhausted(e)) => println!("error: {e}"),
                }
            }
            _ => {
                // Treat the whole line as a query: ground literals get a
                // verdict, patterns enumerate bindings.
                let kb = session.kb();
                match kb.truth_with(&current, line, &repl_opts(limits)) {
                    Ok(ev) => {
                        let suffix = match ev.reason() {
                            Some(reason) => {
                                println!("{}", partial_banner("least model", reason));
                                " (partial)"
                            }
                            None => "",
                        };
                        println!("{line} in `{current}`: {}{suffix}", ev.value());
                    }
                    Err(KbError::NonGroundQuery(_)) => {
                        match kb.query_with(&current, line, &repl_opts(limits)) {
                            Ok(ev) => {
                                let suffix = match ev.reason() {
                                    Some(reason) => {
                                        println!("{}", partial_banner("least model", reason));
                                        " (partial)"
                                    }
                                    None => "",
                                };
                                let bindings = ev.value();
                                for b in bindings {
                                    println!("{b}");
                                }
                                println!("({} answers){suffix}", bindings.len());
                            }
                            Err(e) => println!("error: {e}"),
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
        }
    }
}

/// `olp serve`: wraps the KB (plain from FILE, or durable from `--db`)
/// in an [`olp_server::Server`] and blocks until SIGTERM or a client's
/// `shutdown` command. Prints one `listening on ADDR` line once bound
/// so callers using `--listen 127.0.0.1:0` can learn the chosen port.
fn cmd_serve(path: Option<&str>, exhaustive: bool, limits: &Limits) -> CmdResult {
    use ordered_logic::server::{ServeKb, Server, ServerConfig};
    use std::io::Write;
    let kb = match (&limits.db, path) {
        (Some(db), _) if Db::exists(std::path::Path::new(db)) => {
            let (mut d, report) = open_db(db, limits)?;
            println!("{}", recovery_line(db, &d, &report));
            if let Some(p) = path {
                println!("note: database {db} already exists; {p} not re-read");
            }
            d.kb_mut().set_threads(limits.threads);
            d.kb_mut().set_morsel_weight(limits.morsel);
            ServeKb::Durable(Box::new(d))
        }
        (Some(db), Some(p)) => {
            let kb = load_repl_kb(p, exhaustive, limits)?;
            let d = DurableKb::create(std::path::Path::new(db), kb, limits.durability)
                .map_err(|e| CliFail::Msg(format!("cannot create database {db}: {e}")))?;
            println!("created database {db} from {p}");
            ServeKb::Durable(Box::new(d))
        }
        (Some(db), None) => {
            return Err(CliFail::Msg(format!(
                "cannot open database {db}: no database there and no FILE to create one from"
            )))
        }
        (None, Some(p)) => {
            let mut kb = load_repl_kb(p, exhaustive, limits)?;
            kb.set_threads(limits.threads);
            kb.set_morsel_weight(limits.morsel);
            ServeKb::Plain(Box::new(kb))
        }
        (None, None) => return Err(CliFail::Msg("serve: FILE or --db DIR required".to_string())),
    };
    let cfg = ServerConfig {
        listen: limits.listen.clone(),
        max_conns: limits.max_conns,
        max_queries: limits.max_queries,
        default_timeout: limits.timeout,
    };
    let server = Server::bind(cfg, kb)
        .map_err(|e| CliFail::Msg(format!("cannot bind {}: {e}", limits.listen)))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliFail::Msg(format!("cannot resolve bound address: {e}")))?;
    println!("listening on {addr}");
    std::io::stdout().flush().ok();
    server
        .run()
        .map_err(|e| CliFail::Msg(format!("server failed: {e}")))?;
    println!("server stopped");
    Ok(false)
}

/// Hidden subcommand driving the crash-injection harness:
/// `olp crash-worker DIR SEED N_OPS` opens (or creates) the database at
/// DIR and applies the deterministic [`olp_workload::mutation_stream`]
/// workload, one durably-logged op at a time, printing `applied K`
/// after each commit so the harness can `kill -9` it mid-stream. On
/// restart it recovers the database and resumes from the logged
/// sequence number; `done seq=N` marks completion. Every stream op
/// commits exactly one WAL record, so `seq` equals the number of
/// stream ops applied.
fn cmd_crash_worker(dir: &str, seed: u64, n_ops: usize) -> CmdResult {
    use std::io::Write;
    let fail = |stage: &str, e: &dyn std::fmt::Display| {
        CliFail::Msg(format!("crash-worker: {stage}: {e}"))
    };
    let cfg = olp_workload::MutationCfg {
        n_mutations: n_ops,
        ..olp_workload::MutationCfg::default()
    };
    let (base, ops) = olp_workload::mutation_stream(&cfg, seed);
    let dirp = std::path::Path::new(dir);
    let mut d = if Db::exists(dirp) {
        let (d, report) =
            DurableKb::open(dirp, Durability::OnCommit).map_err(|e| fail("recover", &e))?;
        println!(
            "recovered seq={} replayed={} dropped={}",
            d.seq(),
            report.replayed,
            report.wal_dropped_bytes
        );
        d
    } else {
        let mut b = KbBuilder::new();
        b.rules("main", &base)
            .map_err(|e| fail("base program", &e))?;
        let kb = b
            .build(GroundStrategy::Smart)
            .map_err(|e| fail("base program", &e))?;
        DurableKb::create(dirp, kb, Durability::OnCommit).map_err(|e| fail("create", &e))?
    };
    // Compact aggressively so kills also land inside the snapshot +
    // WAL-reset windows, not just between appends.
    d.set_compact_every(16);
    let start = d.seq() as usize;
    if start > ops.len() {
        return Err(fail(
            "resume",
            &format!(
                "database is ahead of the stream (seq {start} > {})",
                ops.len()
            ),
        ));
    }
    for (k, op) in ops.iter().enumerate().skip(start) {
        let committed = match op {
            olp_workload::Mutation::Assert { object, rule } => d
                .assert_rule(object, rule)
                .map(|()| true)
                .map_err(|e| fail(&format!("op {k} assert"), &e))?,
            olp_workload::Mutation::Retract { object, rule } => d
                .retract_rule(object, rule)
                .map_err(|e| fail(&format!("op {k} retract"), &e))?,
        };
        if !committed {
            return Err(fail(
                &format!("op {k}"),
                &"retract matched nothing; stream out of sync with database",
            ));
        }
        println!("applied {k}");
        std::io::stdout().flush().ok();
    }
    println!("done seq={}", d.seq());
    Ok(false)
}

/// Query against an already-loaded program (shared by `query` and the
/// REPL). `Ok(true)` means the model computation was interrupted: the
/// verdict is printed with a `(partial)` suffix and the command exits
/// 124.
fn cmd_query_loaded(
    l: &mut Loaded,
    c: CompId,
    pattern: &str,
    explain: bool,
    budget: &Budget,
    limits: &Limits,
) -> Result<bool, String> {
    let view = View::new(&l.ground, c);
    let ev = limits.least(&view, budget);
    let suffix = match ev.reason() {
        Some(reason) => {
            println!("{}", partial_banner("least model", reason));
            " (partial)"
        }
        None => "",
    };
    let m = ev.value();
    let lit =
        ordered_logic::parser::parse_literal(&mut l.world, pattern).map_err(|e| e.to_string())?;
    if lit.is_ground() {
        let q = parse_ground_literal(&mut l.world, pattern).map_err(|e| e.to_string())?;
        let verdict = if m.holds(q) {
            "true"
        } else if m.holds(q.complement()) {
            "false"
        } else {
            "undefined"
        };
        let comp_name = l
            .world
            .syms
            .name(l.prog.components[c.index()].name)
            .to_string();
        println!("{pattern} in `{comp_name}`: {verdict}{suffix}");
        if explain {
            let why = explain_in(&view, m, q);
            print!("{}", render_why(&l.world, &view, &why));
        }
    } else {
        let mut vars = Vec::new();
        lit.collect_vars(&mut vars);
        let mut hits = 0usize;
        let candidates: Vec<_> = l.world.atoms.of_pred(lit.pred).to_vec();
        for atom in candidates {
            if !m.holds(ordered_logic::core::GLit::new(lit.sign, atom)) {
                continue;
            }
            let args = l.world.atoms.get(atom).args.clone();
            let mut b = ordered_logic::core::term::Bindings::default();
            if lit
                .args
                .iter()
                .zip(args.iter())
                .all(|(p, &g)| p.match_ground(g, &l.world.terms, &mut b))
            {
                let binding: Vec<String> = vars
                    .iter()
                    .map(|v| format!("{} = {}", l.world.syms.name(*v), l.world.term_str(b[v])))
                    .collect();
                println!("{}", binding.join(", "));
                hits += 1;
            }
        }
        println!("({hits} answers){suffix}");
    }
    Ok(!suffix.is_empty())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut flags: Vec<String> = Vec::new();
    let mut pos: Vec<String> = Vec::new();
    let mut limits = Limits::default();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(body) = a.strip_prefix("--") {
            let (name, inline_val) = match body.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (body, None),
            };
            if matches!(
                name,
                "timeout"
                    | "max-steps"
                    | "max-models"
                    | "threads"
                    | "morsel"
                    | "deny"
                    | "format"
                    | "db"
                    | "durability"
                    | "listen"
                    | "max-conns"
                    | "max-queries"
            ) {
                let val = match inline_val {
                    Some(v) => v,
                    None => {
                        i += 1;
                        match args.get(i) {
                            Some(v) => v.clone(),
                            None => {
                                eprintln!("error: --{name} requires a value");
                                return ExitCode::from(2);
                            }
                        }
                    }
                };
                if let Err(e) = limits.set(name, &val) {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            } else {
                flags.push(format!("--{name}"));
            }
        } else {
            pos.push(a.clone());
        }
        i += 1;
    }
    let flags: Vec<&str> = flags.iter().map(String::as_str).collect();
    let pos: Vec<&str> = pos.iter().map(String::as_str).collect();
    let exhaustive = flags.contains(&"--exhaustive");
    limits.decomp = !flags.contains(&"--no-decomp");

    let result = match pos.as_slice() {
        ["check", file] => cmd_check(file, exhaustive, flags.contains(&"--explain"), &limits),
        ["models", file, rest @ ..] => {
            let mode = if flags.contains(&"--stable") {
                "stable"
            } else if flags.contains(&"--af") {
                "af"
            } else if flags.contains(&"--skeptical") {
                "skeptical"
            } else if flags.contains(&"--credulous") {
                "credulous"
            } else if flags.contains(&"--all-semantics") {
                "all"
            } else {
                "least"
            };
            cmd_models(file, rest.first().copied(), mode, exhaustive, &limits)
        }
        ["query", file, component, pattern] => cmd_query(
            file,
            component,
            pattern,
            flags.contains(&"--explain"),
            exhaustive,
            &limits,
        ),
        ["repl", file] => cmd_repl(Some(file), exhaustive, &limits),
        ["repl"] => cmd_repl(None, exhaustive, &limits),
        ["serve", file] => cmd_serve(Some(file), exhaustive, &limits),
        ["serve"] => cmd_serve(None, exhaustive, &limits),
        [file] if flags.contains(&"--interactive") => cmd_repl(Some(file), exhaustive, &limits),
        // Internal: driven by the crash-injection harness
        // (tests/durability.rs); deliberately absent from usage().
        ["crash-worker", dir, seed, n_ops] => {
            let seed: u64 = match seed.parse() {
                Ok(s) => s,
                Err(_) => {
                    eprintln!("error: crash-worker: SEED must be an integer");
                    return ExitCode::from(2);
                }
            };
            let n_ops: usize = match n_ops.parse() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("error: crash-worker: N_OPS must be an integer");
                    return ExitCode::from(2);
                }
            };
            cmd_crash_worker(dir, seed, n_ops)
        }
        _ => return usage(),
    };
    match result {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(124),
        Err(CliFail::Exhausted(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(124)
        }
        Err(CliFail::Msg(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
