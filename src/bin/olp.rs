//! `olp` — command-line front end for ordered logic programs.
//!
//! ```text
//! olp check  FILE                          parse, order-check, ground, print stats
//! olp models FILE [COMPONENT] [FLAGS]      print models per component
//!        --least (default) | --stable | --af | --skeptical | --all-semantics
//! olp query  FILE COMPONENT PATTERN        answer a query (ground or with variables)
//!        --explain                         print a proof / refutation for ground queries
//! common flags:
//!        --exhaustive                      use the reference grounder (default: smart)
//! ```

use ordered_logic::prelude::*;
use ordered_logic::semantics::{
    credulous_consequences, enumerate_assumption_free, explain_in, render_why,
    skeptical_consequences,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  olp check  FILE [--exhaustive]
  olp models FILE [COMPONENT] [--least|--stable|--af|--skeptical|--credulous|--all-semantics] [--exhaustive]
  olp query  FILE COMPONENT PATTERN [--explain] [--exhaustive]
  olp repl   FILE [--exhaustive]"
    );
    ExitCode::from(2)
}

struct Loaded {
    world: World,
    prog: OrderedProgram,
    ground: GroundProgram,
}

fn load(path: &str, exhaustive: bool) -> Result<Loaded, String> {
    let src =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut world = World::new();
    let prog = parse_program(&mut world, &src).map_err(|e| e.to_string())?;
    prog.order().map_err(|e| e.to_string())?;
    let cfg = GroundConfig::default();
    let ground = if exhaustive {
        ground_exhaustive(&mut world, &prog, &cfg)
    } else {
        ground_smart(&mut world, &prog, &cfg)
    }
    .map_err(|e| e.to_string())?;
    Ok(Loaded {
        world,
        prog,
        ground,
    })
}

fn find_component(l: &Loaded, name: &str) -> Result<CompId, String> {
    l.world
        .syms
        .get(name)
        .and_then(|s| l.prog.component_by_name(s))
        .ok_or_else(|| {
            let names: Vec<&str> = l
                .prog
                .components
                .iter()
                .map(|c| l.world.syms.name(c.name))
                .collect();
            format!("unknown component `{name}` (have: {})", names.join(", "))
        })
}

fn cmd_check(path: &str, exhaustive: bool) -> Result<(), String> {
    let l = load(path, exhaustive)?;
    println!(
        "{path}: OK — {} components, {} rules, {} ground instances, {} atoms",
        l.prog.components.len(),
        l.prog.rule_count(),
        l.ground.len(),
        l.ground.n_atoms
    );
    let unsafe_rules = l.prog.unsafe_rules();
    for (c, ri) in &unsafe_rules {
        println!(
            "  warning: unsafe rule (variable unbound by any body literal): {} in module {}",
            l.world.rule_str(&l.prog.components[c.index()].rules[*ri]),
            l.world.syms.name(l.prog.components[c.index()].name)
        );
    }
    let order = l.prog.order().expect("validated");
    for (ci, c) in l.prog.components.iter().enumerate() {
        let id = CompId(ci as u32);
        let above: Vec<&str> = order
            .upset(id)
            .filter(|&j| j != id)
            .map(|j| l.world.syms.name(l.prog.components[j.index()].name))
            .collect();
        let view = View::new(&l.ground, id);
        let stats = view.stats();
        let conflicts = view.mutual_defeats();
        println!(
            "  {} — {} rules, sees {} ground instances ({} overrule / {} defeat edges){}",
            l.world.syms.name(c.name),
            c.rules.len(),
            stats.rules,
            stats.overrule_edges,
            stats.defeat_edges,
            if above.is_empty() {
                String::new()
            } else {
                format!(", inherits from {}", above.join(" < "))
            }
        );
        for (h, r1, r2) in conflicts.iter().take(5) {
            println!(
                "    conflict: {} contested by unranked rules {} / {}",
                l.world.glit_str(*h),
                l.ground.rule_str(&l.world, view.global_index(*r1)),
                l.ground.rule_str(&l.world, view.global_index(*r2)),
            );
        }
        if conflicts.len() > 5 {
            println!("    … and {} more conflicts", conflicts.len() - 5);
        }
    }
    Ok(())
}

fn cmd_models(path: &str, component: Option<&str>, mode: &str, exhaustive: bool) -> Result<(), String> {
    let l = load(path, exhaustive)?;
    let comps: Vec<CompId> = match component {
        Some(name) => vec![find_component(&l, name)?],
        None => (0..l.prog.components.len() as u32).map(CompId).collect(),
    };
    for c in comps {
        let name = l.world.syms.name(l.prog.components[c.index()].name);
        println!("component `{name}`:");
        let view = View::new(&l.ground, c);
        let show_least = matches!(mode, "least" | "all");
        let show_stable = matches!(mode, "stable" | "all");
        let show_af = matches!(mode, "af" | "all");
        let show_sk = matches!(mode, "skeptical" | "all");
        let show_cred = matches!(mode, "credulous" | "all");
        if show_least {
            println!("  least model: {}", least_model(&view).render(&l.world));
        }
        if show_af {
            for m in enumerate_assumption_free(&view, l.ground.n_atoms) {
                println!("  assumption-free: {}", m.render(&l.world));
            }
        }
        if show_stable {
            for m in stable_models(&view, l.ground.n_atoms) {
                let total = if m.is_total(l.ground.n_atoms) {
                    " (total)"
                } else {
                    ""
                };
                println!("  stable: {}{total}", m.render(&l.world));
            }
        }
        if show_sk {
            println!(
                "  skeptical: {}",
                skeptical_consequences(&view, l.ground.n_atoms).render(&l.world)
            );
        }
        if show_cred {
            let lits: Vec<String> = credulous_consequences(&view, l.ground.n_atoms)
                .iter()
                .map(|&lit| l.world.glit_str(lit))
                .collect();
            println!("  credulous: {{{}}}", lits.join(", "));
        }
    }
    Ok(())
}

fn cmd_query(
    path: &str,
    component: &str,
    pattern: &str,
    explain: bool,
    exhaustive: bool,
) -> Result<(), String> {
    let mut l = load(path, exhaustive)?;
    let c = find_component(&l, component)?;
    cmd_query_loaded(&mut l, c, pattern, explain)
}

fn cmd_repl(path: &str, exhaustive: bool) -> Result<(), String> {
    use std::io::{BufRead, Write};
    let mut l = load(path, exhaustive)?;
    let mut current = CompId(0);
    let name_of = |l: &Loaded, c: CompId| -> String {
        l.world
            .syms
            .name(l.prog.components[c.index()].name)
            .to_string()
    };
    println!(
        "loaded {path}: {} components. Commands: use <component> | models | stable | \
         explain <literal> | <query> | quit",
        l.prog.components.len()
    );
    let stdin = std::io::stdin();
    loop {
        print!("olp:{}> ", name_of(&l, current));
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            return Ok(());
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (cmd, rest) = match line.split_once(' ') {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            "quit" | "exit" | ":q" => return Ok(()),
            "use" => match find_component(&l, rest) {
                Ok(c) => current = c,
                Err(e) => println!("error: {e}"),
            },
            "models" => {
                let view = View::new(&l.ground, current);
                println!("least model: {}", least_model(&view).render(&l.world));
            }
            "stable" => {
                let view = View::new(&l.ground, current);
                for m in stable_models(&view, l.ground.n_atoms) {
                    println!("stable: {}", m.render(&l.world));
                }
            }
            "explain" => {
                match parse_ground_literal(&mut l.world, rest) {
                    Ok(q) => {
                        let view = View::new(&l.ground, current);
                        let m = least_model(&view);
                        let why = explain_in(&view, &m, q);
                        print!("{}", render_why(&l.world, &view, &why));
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            _ => {
                // Treat the whole line as a query (ground or pattern).
                let comp_name = name_of(&l, current);
                if let Err(e) = cmd_query_loaded(&mut l, current, line, false) {
                    println!("error in `{comp_name}`: {e}");
                }
            }
        }
    }
}

/// Query against an already-loaded program (shared by `query` and the
/// REPL).
fn cmd_query_loaded(
    l: &mut Loaded,
    c: CompId,
    pattern: &str,
    explain: bool,
) -> Result<(), String> {
    let view = View::new(&l.ground, c);
    let m = least_model(&view);
    let lit = ordered_logic::parser::parse_literal(&mut l.world, pattern)
        .map_err(|e| e.to_string())?;
    if lit.is_ground() {
        let q = parse_ground_literal(&mut l.world, pattern).map_err(|e| e.to_string())?;
        let verdict = if m.holds(q) {
            "true"
        } else if m.holds(q.complement()) {
            "false"
        } else {
            "undefined"
        };
        let comp_name = l
            .world
            .syms
            .name(l.prog.components[c.index()].name)
            .to_string();
        println!("{pattern} in `{comp_name}`: {verdict}");
        if explain {
            let why = explain_in(&view, &m, q);
            print!("{}", render_why(&l.world, &view, &why));
        }
    } else {
        let mut vars = Vec::new();
        lit.collect_vars(&mut vars);
        let mut hits = 0usize;
        let candidates: Vec<_> = l.world.atoms.of_pred(lit.pred).to_vec();
        for atom in candidates {
            if !m.holds(ordered_logic::core::GLit::new(lit.sign, atom)) {
                continue;
            }
            let args = l.world.atoms.get(atom).args.clone();
            let mut b = ordered_logic::core::term::Bindings::default();
            if lit
                .args
                .iter()
                .zip(args.iter())
                .all(|(p, &g)| p.match_ground(g, &l.world.terms, &mut b))
            {
                let binding: Vec<String> = vars
                    .iter()
                    .map(|v| format!("{} = {}", l.world.syms.name(*v), l.world.term_str(b[v])))
                    .collect();
                println!("{}", binding.join(", "));
                hits += 1;
            }
        }
        println!("({hits} answers)");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags: Vec<&str> = args
        .iter()
        .filter(|a| a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let pos: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let exhaustive = flags.contains(&"--exhaustive");

    let result = match pos.as_slice() {
        ["check", file] => cmd_check(file, exhaustive),
        ["models", file, rest @ ..] => {
            let mode = if flags.contains(&"--stable") {
                "stable"
            } else if flags.contains(&"--af") {
                "af"
            } else if flags.contains(&"--skeptical") {
                "skeptical"
            } else if flags.contains(&"--credulous") {
                "credulous"
            } else if flags.contains(&"--all-semantics") {
                "all"
            } else {
                "least"
            };
            cmd_models(file, rest.first().copied(), mode, exhaustive)
        }
        ["query", file, component, pattern] => cmd_query(
            file,
            component,
            pattern,
            flags.contains(&"--explain"),
            exhaustive,
        ),
        ["repl", file] => cmd_repl(file, exhaustive),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
