//! The snapshot format: one file holding a whole KB.
//!
//! A snapshot serialises the four interning arenas of a
//! [`World`], the [`OrderedProgram`] (components, rules, order edges,
//! source spans), and the [`GroundProgram`] — so opening a database is
//! decode + index rebuild, with **no re-parse and no re-ground**. The
//! arena/`u32`-id design makes this near-memcpy: every table is written
//! in id order and re-interned in id order on decode, which reproduces
//! identical ids (hash-consing assigns ids in insertion order, and
//! children always have smaller ids than their parents).
//!
//! Layout:
//!
//! ```text
//! "OLPS"  version:u32le  frame*  END-frame
//! ```
//!
//! with one checksummed frame per section ([`write_frame`]): SYMS,
//! PREDS, TERMS, ATOMS, PROG, SPANS, GROUND, META, END. A snapshot
//! missing its END frame, failing any checksum, or containing an
//! out-of-range id is rejected as [`StoreError::Corrupt`] — never
//! partially loaded.
//!
//! Because decode rebuilds the exact interner state, `encode ∘ decode`
//! is the identity on all serialised state and
//! `encode ∘ decode ∘ encode` is byte-identical (property-tested in
//! `tests/roundtrip.rs`).

use crate::error::StoreError;
use crate::format::{read_frame, write_frame, ByteReader, ByteWriter, FrameError, PayloadError};
use olp_core::{
    Aexp, BodyItem, Cmp, CmpOp, CompId, GLit, GTerm, GTermId, Literal, OrderedProgram, Pos, PredId,
    Rule, RuleSpan, Sign, Sym, Term, World,
};
use olp_ground::{GroundProgram, GroundRule};
use std::path::Path;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"OLPS";
/// Snapshot format version written (and the only one read) by this
/// build.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Section tags, one frame each, in file order.
mod tag {
    pub const SYMS: u32 = 1;
    pub const PREDS: u32 = 2;
    pub const TERMS: u32 = 3;
    pub const ATOMS: u32 = 4;
    pub const PROG: u32 = 5;
    pub const SPANS: u32 = 6;
    pub const GROUND: u32 = 7;
    pub const META: u32 = 8;
    pub const END: u32 = 9;
}

/// Everything a snapshot holds, decoded.
#[derive(Debug)]
pub struct SnapshotData {
    /// The interning arenas, with ids identical to the encoding world.
    pub world: World,
    /// The ordered program (components, rules, edges, spans).
    pub prog: OrderedProgram,
    /// The ground program, views rebuilt.
    pub ground: GroundProgram,
    /// Number of mutation ops folded into this snapshot. WAL records
    /// carry sequence numbers; on open, records with `seq <= base_ops`
    /// are already reflected here and are skipped, which makes
    /// compaction crash-safe regardless of which rename lands first.
    pub base_ops: u64,
}

// ---------------------------------------------------------------- encode

fn put_term(w: &mut ByteWriter, t: &Term) {
    match t {
        Term::Var(s) => {
            w.put_u8(0);
            w.put_u32(s.0);
        }
        Term::Const(s) => {
            w.put_u8(1);
            w.put_u32(s.0);
        }
        Term::Int(i) => {
            w.put_u8(2);
            w.put_i64(*i);
        }
        Term::App(f, args) => {
            w.put_u8(3);
            w.put_u32(f.0);
            w.put_u32(args.len() as u32);
            for a in args {
                put_term(w, a);
            }
        }
    }
}

fn put_literal(w: &mut ByteWriter, l: &Literal) {
    w.put_u8(match l.sign {
        Sign::Pos => 0,
        Sign::Neg => 1,
    });
    w.put_u32(l.pred.0);
    w.put_u32(l.args.len() as u32);
    for t in &l.args {
        put_term(w, t);
    }
}

fn put_aexp(w: &mut ByteWriter, e: &Aexp) {
    match e {
        Aexp::Term(t) => {
            w.put_u8(0);
            put_term(w, t);
        }
        Aexp::Add(l, r) => {
            w.put_u8(1);
            put_aexp(w, l);
            put_aexp(w, r);
        }
        Aexp::Sub(l, r) => {
            w.put_u8(2);
            put_aexp(w, l);
            put_aexp(w, r);
        }
        Aexp::Mul(l, r) => {
            w.put_u8(3);
            put_aexp(w, l);
            put_aexp(w, r);
        }
        Aexp::Div(l, r) => {
            w.put_u8(4);
            put_aexp(w, l);
            put_aexp(w, r);
        }
        Aexp::Mod(l, r) => {
            w.put_u8(5);
            put_aexp(w, l);
            put_aexp(w, r);
        }
        Aexp::Neg(x) => {
            w.put_u8(6);
            put_aexp(w, x);
        }
    }
}

fn cmp_op_code(op: CmpOp) -> u8 {
    match op {
        CmpOp::Lt => 0,
        CmpOp::Le => 1,
        CmpOp::Gt => 2,
        CmpOp::Ge => 3,
        CmpOp::Eq => 4,
        CmpOp::Ne => 5,
    }
}

fn put_rule(w: &mut ByteWriter, r: &Rule) {
    put_literal(w, &r.head);
    w.put_u32(r.body.len() as u32);
    for item in &r.body {
        match item {
            BodyItem::Lit(l) => {
                w.put_u8(0);
                put_literal(w, l);
            }
            BodyItem::Cmp(c) => {
                w.put_u8(1);
                w.put_u8(cmp_op_code(c.op));
                put_aexp(w, &c.lhs);
                put_aexp(w, &c.rhs);
            }
        }
    }
}

/// Serialises a KB snapshot to bytes.
pub fn encode_snapshot(
    world: &World,
    prog: &OrderedProgram,
    ground: &GroundProgram,
    base_ops: u64,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());

    // SYMS: names in id order.
    let mut w = ByteWriter::new();
    w.put_u32(world.syms.len() as u32);
    for (_, name) in world.syms.iter() {
        w.put_str(name);
    }
    write_frame(&mut out, tag::SYMS, w.as_slice());

    // PREDS: (name sym, arity) in id order.
    let mut w = ByteWriter::new();
    w.put_u32(world.preds.len() as u32);
    for (_, info) in world.preds.iter() {
        w.put_u32(info.name.0);
        w.put_u32(info.arity);
    }
    write_frame(&mut out, tag::PREDS, w.as_slice());

    // TERMS: shapes in id order; children precede parents by
    // construction, so decode can re-intern left to right.
    let mut w = ByteWriter::new();
    w.put_u32(world.terms.len() as u32);
    for id in world.terms.ids() {
        match world.terms.get(id) {
            GTerm::Const(s) => {
                w.put_u8(0);
                w.put_u32(s.0);
            }
            GTerm::Int(i) => {
                w.put_u8(1);
                w.put_i64(*i);
            }
            GTerm::Func(f, args) => {
                w.put_u8(2);
                w.put_u32(f.0);
                w.put_u32(args.len() as u32);
                for a in args.iter() {
                    w.put_u32(a.0);
                }
            }
        }
    }
    write_frame(&mut out, tag::TERMS, w.as_slice());

    // ATOMS: (pred, args) in id order. Re-interning in this order also
    // reproduces the per-predicate index (it is filled in id order).
    let mut w = ByteWriter::new();
    w.put_u32(world.atoms.len() as u32);
    for id in world.atoms.ids() {
        let a = world.atoms.get(id);
        w.put_u32(a.pred.0);
        w.put_u32(a.args.len() as u32);
        for t in a.args.iter() {
            w.put_u32(t.0);
        }
    }
    write_frame(&mut out, tag::ATOMS, w.as_slice());

    // PROG: components with their rules, then the declared order edges.
    let mut w = ByteWriter::new();
    w.put_u32(prog.components.len() as u32);
    for c in &prog.components {
        w.put_u32(c.name.0);
        w.put_u32(c.rules.len() as u32);
        for r in &c.rules {
            put_rule(&mut w, r);
        }
    }
    w.put_u32(prog.edges.len() as u32);
    for &(lo, hi) in &prog.edges {
        w.put_u32(lo.0);
        w.put_u32(hi.0);
    }
    write_frame(&mut out, tag::PROG, w.as_slice());

    // SPANS: rule spans sorted by (comp, rule), edge spans by edge.
    let mut w = ByteWriter::new();
    let mut rule_spans: Vec<((u32, u32), &RuleSpan)> = prog.spans.iter_rules().collect();
    rule_spans.sort_by_key(|&(k, _)| k);
    w.put_u32(rule_spans.len() as u32);
    for ((c, r), span) in rule_spans {
        w.put_u32(c);
        w.put_u32(r);
        w.put_u32(span.head.line);
        w.put_u32(span.head.col);
        w.put_u32(span.body.len() as u32);
        for p in &span.body {
            w.put_u32(p.line);
            w.put_u32(p.col);
        }
    }
    let mut edge_spans: Vec<(u32, Pos)> = prog.spans.iter_edges().collect();
    edge_spans.sort_by_key(|&(k, _)| k);
    w.put_u32(edge_spans.len() as u32);
    for (e, p) in edge_spans {
        w.put_u32(e);
        w.put_u32(p.line);
        w.put_u32(p.col);
    }
    write_frame(&mut out, tag::SPANS, w.as_slice());

    // GROUND: packed rule instances (already canonically sorted inside
    // GroundProgram); the order is recomputed from PROG edges on decode.
    let mut w = ByteWriter::new();
    w.put_u64(ground.n_atoms as u64);
    w.put_u32(ground.rules.len() as u32);
    for r in &ground.rules {
        w.put_u32(r.head.code() as u32);
        w.put_u32(r.comp.0);
        w.put_u32(r.body.len() as u32);
        for &l in r.body.iter() {
            w.put_u32(l.code() as u32);
        }
    }
    write_frame(&mut out, tag::GROUND, w.as_slice());

    // META: durable op counter.
    let mut w = ByteWriter::new();
    w.put_u64(base_ops);
    write_frame(&mut out, tag::META, w.as_slice());

    write_frame(&mut out, tag::END, &[]);
    out
}

// ---------------------------------------------------------------- decode

struct Decoder<'p> {
    path: &'p Path,
    offset: u64,
}

impl<'p> Decoder<'p> {
    fn corrupt(&self, detail: impl Into<String>) -> StoreError {
        StoreError::corrupt(self.path, self.offset, detail)
    }

    fn payload(&self, e: PayloadError) -> StoreError {
        self.corrupt(e.0)
    }
}

fn get_sym(r: &mut ByteReader, n_syms: usize, d: &Decoder) -> Result<Sym, StoreError> {
    let v = r.get_u32().map_err(|e| d.payload(e))?;
    if (v as usize) < n_syms {
        Ok(Sym(v))
    } else {
        Err(d.corrupt(format!("symbol id {v} out of range (table has {n_syms})")))
    }
}

fn get_pred(r: &mut ByteReader, n_preds: usize, d: &Decoder) -> Result<PredId, StoreError> {
    let v = r.get_u32().map_err(|e| d.payload(e))?;
    if (v as usize) < n_preds {
        Ok(PredId(v))
    } else {
        Err(d.corrupt(format!(
            "predicate id {v} out of range (table has {n_preds})"
        )))
    }
}

fn get_term(r: &mut ByteReader, n_syms: usize, d: &Decoder) -> Result<Term, StoreError> {
    match r.get_u8().map_err(|e| d.payload(e))? {
        0 => Ok(Term::Var(get_sym(r, n_syms, d)?)),
        1 => Ok(Term::Const(get_sym(r, n_syms, d)?)),
        2 => Ok(Term::Int(r.get_i64().map_err(|e| d.payload(e))?)),
        3 => {
            let f = get_sym(r, n_syms, d)?;
            let n = r.get_u32().map_err(|e| d.payload(e))? as usize;
            if n == 0 {
                return Err(d.corrupt("0-ary compound term"));
            }
            let mut args = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                args.push(get_term(r, n_syms, d)?);
            }
            Ok(Term::App(f, args))
        }
        k => Err(d.corrupt(format!("unknown term kind {k}"))),
    }
}

fn get_literal(
    r: &mut ByteReader,
    n_syms: usize,
    n_preds: usize,
    d: &Decoder,
) -> Result<Literal, StoreError> {
    let sign = match r.get_u8().map_err(|e| d.payload(e))? {
        0 => Sign::Pos,
        1 => Sign::Neg,
        k => return Err(d.corrupt(format!("unknown sign {k}"))),
    };
    let pred = get_pred(r, n_preds, d)?;
    let n = r.get_u32().map_err(|e| d.payload(e))? as usize;
    let mut args = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        args.push(get_term(r, n_syms, d)?);
    }
    Ok(Literal { sign, pred, args })
}

fn get_aexp(r: &mut ByteReader, n_syms: usize, d: &Decoder) -> Result<Aexp, StoreError> {
    let kind = r.get_u8().map_err(|e| d.payload(e))?;
    let bin = |r: &mut ByteReader| -> Result<(Box<Aexp>, Box<Aexp>), StoreError> {
        Ok((
            Box::new(get_aexp(r, n_syms, d)?),
            Box::new(get_aexp(r, n_syms, d)?),
        ))
    };
    Ok(match kind {
        0 => Aexp::Term(get_term(r, n_syms, d)?),
        1 => {
            let (l, x) = bin(r)?;
            Aexp::Add(l, x)
        }
        2 => {
            let (l, x) = bin(r)?;
            Aexp::Sub(l, x)
        }
        3 => {
            let (l, x) = bin(r)?;
            Aexp::Mul(l, x)
        }
        4 => {
            let (l, x) = bin(r)?;
            Aexp::Div(l, x)
        }
        5 => {
            let (l, x) = bin(r)?;
            Aexp::Mod(l, x)
        }
        6 => Aexp::Neg(Box::new(get_aexp(r, n_syms, d)?)),
        k => return Err(d.corrupt(format!("unknown arithmetic node {k}"))),
    })
}

fn get_cmp_op(code: u8, d: &Decoder) -> Result<CmpOp, StoreError> {
    Ok(match code {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Gt,
        3 => CmpOp::Ge,
        4 => CmpOp::Eq,
        5 => CmpOp::Ne,
        k => return Err(d.corrupt(format!("unknown comparison op {k}"))),
    })
}

fn get_rule(
    r: &mut ByteReader,
    n_syms: usize,
    n_preds: usize,
    d: &Decoder,
) -> Result<Rule, StoreError> {
    let head = get_literal(r, n_syms, n_preds, d)?;
    let n = r.get_u32().map_err(|e| d.payload(e))? as usize;
    let mut body = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        match r.get_u8().map_err(|e| d.payload(e))? {
            0 => body.push(BodyItem::Lit(get_literal(r, n_syms, n_preds, d)?)),
            1 => {
                let op = get_cmp_op(r.get_u8().map_err(|e| d.payload(e))?, d)?;
                let lhs = get_aexp(r, n_syms, d)?;
                let rhs = get_aexp(r, n_syms, d)?;
                body.push(BodyItem::Cmp(Cmp { op, lhs, rhs }));
            }
            k => return Err(d.corrupt(format!("unknown body item kind {k}"))),
        }
    }
    Ok(Rule { head, body })
}

/// Decodes a snapshot. `path` is used only for error context.
///
/// Any structural problem — bad magic, unsupported version, checksum
/// mismatch, truncated section, out-of-range id, missing END — is
/// reported as a [`StoreError`]; a partially valid snapshot is never
/// returned.
pub fn decode_snapshot(bytes: &[u8], path: &Path) -> Result<SnapshotData, StoreError> {
    if bytes.len() < 8 || bytes[..4] != SNAPSHOT_MAGIC {
        return Err(StoreError::BadMagic {
            path: path.to_path_buf(),
            expected: "snapshot",
        });
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != SNAPSHOT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }

    let mut pos = 8usize;
    let mut sections: Vec<(u32, &[u8], u64)> = Vec::new();
    loop {
        let at = pos as u64;
        match read_frame(bytes, &mut pos) {
            Ok(Some((t, payload))) => {
                let end = t == tag::END;
                sections.push((t, payload, at));
                if end {
                    break;
                }
            }
            Ok(None) => {
                return Err(StoreError::corrupt(
                    path,
                    at,
                    "snapshot ends without END marker (truncated)",
                ))
            }
            Err(FrameError::Torn { at, why }) => return Err(StoreError::corrupt(path, at, why)),
        }
    }
    let expected = [
        tag::SYMS,
        tag::PREDS,
        tag::TERMS,
        tag::ATOMS,
        tag::PROG,
        tag::SPANS,
        tag::GROUND,
        tag::META,
        tag::END,
    ];
    if sections.len() != expected.len()
        || sections.iter().zip(expected).any(|(&(t, _, _), e)| t != e)
    {
        return Err(StoreError::corrupt(
            path,
            8,
            "unexpected section sequence in snapshot",
        ));
    }
    if pos != bytes.len() {
        return Err(StoreError::corrupt(
            path,
            pos as u64,
            "trailing bytes after END marker",
        ));
    }

    let mut world = World::new();

    // SYMS — re-intern in id order; duplicates would shift every later
    // id, so they are rejected.
    {
        let (_, payload, off) = sections[0];
        let d = Decoder { path, offset: off };
        let mut r = ByteReader::new(payload);
        let n = r.get_u32().map_err(|e| d.payload(e))? as usize;
        for i in 0..n {
            let name = r.get_str().map_err(|e| d.payload(e))?;
            let s = world.syms.intern(&name);
            if s.index() != i {
                return Err(d.corrupt(format!("duplicate symbol {name:?} at id {i}")));
            }
        }
        r.expect_exhausted().map_err(|e| d.payload(e))?;
    }
    let n_syms = world.syms.len();

    // PREDS
    {
        let (_, payload, off) = sections[1];
        let d = Decoder { path, offset: off };
        let mut r = ByteReader::new(payload);
        let n = r.get_u32().map_err(|e| d.payload(e))? as usize;
        for i in 0..n {
            let name = get_sym(&mut r, n_syms, &d)?;
            let arity = r.get_u32().map_err(|e| d.payload(e))?;
            let p = world.preds.intern(name, arity);
            if p.index() != i {
                return Err(d.corrupt(format!("duplicate predicate entry at id {i}")));
            }
        }
        r.expect_exhausted().map_err(|e| d.payload(e))?;
    }
    let n_preds = world.preds.len();

    // TERMS — children reference earlier ids only.
    {
        let (_, payload, off) = sections[2];
        let d = Decoder { path, offset: off };
        let mut r = ByteReader::new(payload);
        let n = r.get_u32().map_err(|e| d.payload(e))? as usize;
        for i in 0..n {
            let id = match r.get_u8().map_err(|e| d.payload(e))? {
                0 => world.terms.constant(get_sym(&mut r, n_syms, &d)?),
                1 => {
                    let v = r.get_i64().map_err(|e| d.payload(e))?;
                    world.terms.int(v)
                }
                2 => {
                    let f = get_sym(&mut r, n_syms, &d)?;
                    let argc = r.get_u32().map_err(|e| d.payload(e))? as usize;
                    if argc == 0 {
                        return Err(d.corrupt("0-ary ground function term"));
                    }
                    let mut args = Vec::with_capacity(argc.min(1024));
                    for _ in 0..argc {
                        let a = r.get_u32().map_err(|e| d.payload(e))?;
                        if (a as usize) >= i {
                            return Err(d.corrupt(format!(
                                "term {i} references child {a} with a non-smaller id"
                            )));
                        }
                        args.push(GTermId(a));
                    }
                    world.terms.func(f, &args)
                }
                k => return Err(d.corrupt(format!("unknown ground term kind {k}"))),
            };
            if id.index() != i {
                return Err(d.corrupt(format!("duplicate ground term at id {i}")));
            }
        }
        r.expect_exhausted().map_err(|e| d.payload(e))?;
    }
    let n_terms = world.terms.len();

    // ATOMS
    {
        let (_, payload, off) = sections[3];
        let d = Decoder { path, offset: off };
        let mut r = ByteReader::new(payload);
        let n = r.get_u32().map_err(|e| d.payload(e))? as usize;
        for i in 0..n {
            let pred = get_pred(&mut r, n_preds, &d)?;
            let argc = r.get_u32().map_err(|e| d.payload(e))? as usize;
            if argc != world.preds.arity(pred) as usize {
                return Err(d.corrupt(format!("atom {i} arity mismatch")));
            }
            let mut args = Vec::with_capacity(argc.min(1024));
            for _ in 0..argc {
                let t = r.get_u32().map_err(|e| d.payload(e))?;
                if (t as usize) >= n_terms {
                    return Err(d.corrupt(format!("atom {i} references unknown term {t}")));
                }
                args.push(GTermId(t));
            }
            let id = world.atoms.intern(pred, &args);
            if id.index() != i {
                return Err(d.corrupt(format!("duplicate ground atom at id {i}")));
            }
        }
        r.expect_exhausted().map_err(|e| d.payload(e))?;
    }
    let n_atoms_world = world.atoms.len();

    // PROG
    let mut prog = OrderedProgram::new();
    {
        let (_, payload, off) = sections[4];
        let d = Decoder { path, offset: off };
        let mut r = ByteReader::new(payload);
        let ncomps = r.get_u32().map_err(|e| d.payload(e))? as usize;
        for _ in 0..ncomps {
            let name = get_sym(&mut r, n_syms, &d)?;
            let c = prog.add_component(name);
            let nrules = r.get_u32().map_err(|e| d.payload(e))? as usize;
            for _ in 0..nrules {
                let rule = get_rule(&mut r, n_syms, n_preds, &d)?;
                prog.add_rule(c, rule);
            }
        }
        let nedges = r.get_u32().map_err(|e| d.payload(e))? as usize;
        for _ in 0..nedges {
            let lo = r.get_u32().map_err(|e| d.payload(e))?;
            let hi = r.get_u32().map_err(|e| d.payload(e))?;
            if lo as usize >= ncomps || hi as usize >= ncomps {
                return Err(d.corrupt("order edge references unknown component"));
            }
            prog.add_edge(CompId(lo), CompId(hi));
        }
        r.expect_exhausted().map_err(|e| d.payload(e))?;
    }

    // SPANS
    {
        let (_, payload, off) = sections[5];
        let d = Decoder { path, offset: off };
        let mut r = ByteReader::new(payload);
        let nrules = r.get_u32().map_err(|e| d.payload(e))? as usize;
        for _ in 0..nrules {
            let c = r.get_u32().map_err(|e| d.payload(e))? as usize;
            let ri = r.get_u32().map_err(|e| d.payload(e))? as usize;
            let head = Pos {
                line: r.get_u32().map_err(|e| d.payload(e))?,
                col: r.get_u32().map_err(|e| d.payload(e))?,
            };
            let nbody = r.get_u32().map_err(|e| d.payload(e))? as usize;
            let mut body = Vec::with_capacity(nbody.min(1024));
            for _ in 0..nbody {
                body.push(Pos {
                    line: r.get_u32().map_err(|e| d.payload(e))?,
                    col: r.get_u32().map_err(|e| d.payload(e))?,
                });
            }
            prog.spans.set_rule(c, ri, RuleSpan { head, body });
        }
        let nedges = r.get_u32().map_err(|e| d.payload(e))? as usize;
        for _ in 0..nedges {
            let e = r.get_u32().map_err(|e| d.payload(e))? as usize;
            let pos = Pos {
                line: r.get_u32().map_err(|e| d.payload(e))?,
                col: r.get_u32().map_err(|e| d.payload(e))?,
            };
            prog.spans.set_edge(e, pos);
        }
        r.expect_exhausted().map_err(|e| d.payload(e))?;
    }

    // GROUND
    let ground;
    {
        let (_, payload, off) = sections[6];
        let d = Decoder { path, offset: off };
        let mut r = ByteReader::new(payload);
        let n_atoms = r.get_u64().map_err(|e| d.payload(e))? as usize;
        if n_atoms > n_atoms_world {
            return Err(d.corrupt(format!(
                "ground program claims {n_atoms} atoms but the world holds {n_atoms_world}"
            )));
        }
        let nrules = r.get_u32().map_err(|e| d.payload(e))? as usize;
        let ncomps = prog.components.len();
        let glit = |r: &mut ByteReader| -> Result<GLit, StoreError> {
            let code = r.get_u32().map_err(|e| d.payload(e))?;
            if (code as usize) >> 1 >= n_atoms_world {
                return Err(d.corrupt("ground literal references unknown atom"));
            }
            Ok(GLit::from_code(code as usize))
        };
        let mut rules = Vec::with_capacity(nrules.min(1 << 20));
        for _ in 0..nrules {
            let head = glit(&mut r)?;
            let comp = r.get_u32().map_err(|e| d.payload(e))?;
            if comp as usize >= ncomps {
                return Err(d.corrupt("ground rule references unknown component"));
            }
            let nbody = r.get_u32().map_err(|e| d.payload(e))? as usize;
            let mut body = Vec::with_capacity(nbody.min(1024));
            for _ in 0..nbody {
                body.push(glit(&mut r)?);
            }
            rules.push(GroundRule::new(head, body, CompId(comp)));
        }
        r.expect_exhausted().map_err(|e| d.payload(e))?;
        let order = prog
            .order()
            .map_err(|e| d.corrupt(format!("invalid component order: {e}")))?;
        ground = GroundProgram::new(rules, order, n_atoms);
    }

    // META
    let base_ops;
    {
        let (_, payload, off) = sections[7];
        let d = Decoder { path, offset: off };
        let mut r = ByteReader::new(payload);
        base_ops = r.get_u64().map_err(|e| d.payload(e))?;
        r.expect_exhausted().map_err(|e| d.payload(e))?;
    }

    Ok(SnapshotData {
        world,
        prog,
        ground,
        base_ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use olp_ground::GroundConfig;
    use olp_parser::parse_program;

    fn sample() -> (World, OrderedProgram, GroundProgram) {
        let mut w = World::new();
        let prog = parse_program(
            &mut w,
            "
            module bird {
                bird(penguin). bird(pigeon).
                fly(X) :- bird(X).
                big(N) :- bird(X), size(X, N), N > 10 + 2.
                size(penguin, 16). size(pigeon, 1).
            }
            module penguins < bird {
                -fly(X) :- waddles(X).
                waddles(penguin).
                nested(f(g(penguin), 3)).
            }
            ",
        )
        .unwrap();
        let ground = olp_ground::ground_smart(&mut w, &prog, &GroundConfig::default()).unwrap();
        (w, prog, ground)
    }

    #[test]
    fn encode_decode_identity_and_byte_stability() {
        let (w, p, g) = sample();
        let bytes = encode_snapshot(&w, &p, &g, 7);
        let snap = decode_snapshot(&bytes, Path::new("test.olps")).unwrap();
        assert_eq!(snap.base_ops, 7);
        assert_eq!(snap.world.syms.len(), w.syms.len());
        assert_eq!(snap.world.terms.len(), w.terms.len());
        assert_eq!(snap.world.atoms.len(), w.atoms.len());
        assert_eq!(snap.prog.components, p.components);
        assert_eq!(snap.prog.edges, p.edges);
        assert_eq!(snap.ground.rules, g.rules);
        assert_eq!(snap.ground.n_atoms, g.n_atoms);
        // Re-encoding the decoded state is byte-identical.
        let again = encode_snapshot(&snap.world, &snap.prog, &snap.ground, 7);
        assert_eq!(bytes, again);
    }

    #[test]
    fn bad_magic_and_version_are_reported() {
        let (w, p, g) = sample();
        let mut bytes = encode_snapshot(&w, &p, &g, 0);
        assert!(matches!(
            decode_snapshot(b"nope", Path::new("x")),
            Err(StoreError::BadMagic { .. })
        ));
        bytes[4] = 99;
        assert!(matches!(
            decode_snapshot(&bytes, Path::new("x")),
            Err(StoreError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn every_truncation_is_rejected() {
        let (w, p, g) = sample();
        let bytes = encode_snapshot(&w, &p, &g, 0);
        for cut in [0, 3, 8, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_snapshot(&bytes[..cut], Path::new("x")).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_rejected_or_harmless() {
        let (w, p, g) = sample();
        let bytes = encode_snapshot(&w, &p, &g, 3);
        // Flip one bit in each of a spread of positions; decode must
        // either fail or (never) produce different content silently.
        let step = (bytes.len() / 97).max(1);
        for byte in (0..bytes.len()).step_by(step) {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x08;
            match decode_snapshot(&bad, Path::new("x")) {
                Err(_) => {}
                Ok(snap) => {
                    let re = encode_snapshot(&snap.world, &snap.prog, &snap.ground, snap.base_ops);
                    assert_eq!(re, bytes, "silent corruption via flip at byte {byte}");
                }
            }
        }
    }

    #[test]
    fn spans_survive_the_round_trip() {
        let (w, p, g) = sample();
        assert!(!p.spans.is_empty(), "parser should have recorded spans");
        let bytes = encode_snapshot(&w, &p, &g, 0);
        let snap = decode_snapshot(&bytes, Path::new("x")).unwrap();
        for (ci, c) in p.components.iter().enumerate() {
            for ri in 0..c.rules.len() {
                assert_eq!(p.spans.rule(ci, ri), snap.prog.spans.rule(ci, ri));
            }
        }
        for ei in 0..p.edges.len() {
            assert_eq!(p.spans.edge_pos(ei), snap.prog.spans.edge_pos(ei));
        }
    }
}
