//! A database directory: snapshot + WAL, tied together crash-safely.
//!
//! ```text
//! mykb.olpdb/
//!   snapshot.olps    whole-KB binary image (see `snapshot`)
//!   wal.olpw         append-only op log since that image (see `wal`)
//!   snapshot.olps.tmp  scratch for atomic replacement; ignored on open
//! ```
//!
//! The invariants that make every crash recoverable:
//!
//! 1. **Snapshots are replaced atomically**: encode to `*.tmp`, fsync,
//!    `rename(2)` into place, fsync the directory. Open never sees a
//!    half-written snapshot — either the old or the new file.
//! 2. **The WAL is append-only between compactions**, every record
//!    checksummed. A crash mid-append leaves a torn tail, which open
//!    detects and truncates at the last valid record.
//! 3. **Records carry global sequence numbers** and the snapshot
//!    records how many ops it has folded in (`base_ops`). Replay skips
//!    records with `seq <= base_ops`, so compaction needs no multi-file
//!    atomicity: after the snapshot rename lands, the old WAL's records
//!    are all skippable, and resetting the WAL can tear anywhere (an
//!    empty or torn-header WAL scans as empty).

use crate::error::StoreError;
use crate::snapshot::{decode_snapshot, encode_snapshot, SnapshotData};
use crate::wal::{scan_wal, Durability, WalOp, WalRecord, WalScan, WalWriter, WAL_HEADER_LEN};
use olp_core::{OrderedProgram, World};
use olp_ground::GroundProgram;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Snapshot file name inside a database directory.
pub const SNAPSHOT_FILE: &str = "snapshot.olps";
/// WAL file name inside a database directory.
pub const WAL_FILE: &str = "wal.olpw";

/// An open database: the WAL appender plus the op/compaction counters.
///
/// `Db` owns the *files*; it does not own a KB. The caller (see
/// `DurableKb` in `olp-kb`) decodes [`DbOpen::snapshot`], replays
/// [`DbOpen::replay`] through its own mutation path, and thereafter
/// calls [`Db::log`] for every committed mutation and [`Db::compact`]
/// when the log has grown enough to be worth folding in.
#[derive(Debug)]
pub struct Db {
    dir: PathBuf,
    wal: WalWriter,
    /// Sequence number of the last logged op (global, monotone across
    /// compactions).
    seq: u64,
    /// Ops folded into the on-disk snapshot.
    base_ops: u64,
}

/// Everything [`Db::open`] recovers from disk.
#[derive(Debug)]
pub struct DbOpen {
    /// The decoded snapshot.
    pub snapshot: SnapshotData,
    /// WAL records not yet folded into the snapshot (`seq > base_ops`),
    /// in append order — the caller replays these.
    pub replay: Vec<WalRecord>,
    /// What the WAL scan found (tail truncation is reported here; a
    /// non-zero `dropped_bytes` means a torn tail was cut off).
    pub wal_scan: WalScan,
    /// The database handle, positioned to append after the last valid
    /// record.
    pub db: Db,
}

/// Writes `bytes` to `path` atomically: `path.tmp` + fsync + rename +
/// directory fsync. On any failure the destination is untouched.
fn atomic_write(dir: &Path, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("olps.tmp");
    let mut f =
        File::create(&tmp).map_err(|e| StoreError::io("create snapshot scratch", &tmp, e))?;
    f.write_all(bytes)
        .map_err(|e| StoreError::io("write snapshot", &tmp, e))?;
    f.sync_all()
        .map_err(|e| StoreError::io("sync snapshot", &tmp, e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| StoreError::io("install snapshot", path, e))?;
    // Make the rename itself durable. Directory fsync can fail on
    // exotic filesystems; treat that as best-effort only if the open
    // itself failed (the rename is still atomic either way).
    if let Ok(d) = File::open(dir) {
        d.sync_all()
            .map_err(|e| StoreError::io("sync database directory", dir, e))?;
    }
    Ok(())
}

impl Db {
    /// Whether `dir` looks like a database (has a snapshot file).
    pub fn exists(dir: &Path) -> bool {
        dir.join(SNAPSHOT_FILE).is_file()
    }

    /// Creates a fresh database at `dir` (created if missing) holding a
    /// snapshot of the given KB state and an empty WAL. Refuses nothing:
    /// an existing database at `dir` is overwritten atomically.
    pub fn create(
        dir: &Path,
        world: &World,
        prog: &OrderedProgram,
        ground: &GroundProgram,
        policy: Durability,
    ) -> Result<Db, StoreError> {
        fs::create_dir_all(dir).map_err(|e| StoreError::io("create database directory", dir, e))?;
        let snap_path = dir.join(SNAPSHOT_FILE);
        let bytes = encode_snapshot(world, prog, ground, 0);
        atomic_write(dir, &snap_path, &bytes)?;
        let wal = WalWriter::create(&dir.join(WAL_FILE), policy)?;
        Ok(Db {
            dir: dir.to_path_buf(),
            wal,
            seq: 0,
            base_ops: 0,
        })
    }

    /// Opens the database at `dir`: decodes the snapshot, scans the
    /// WAL, truncates any torn tail, and returns the records the caller
    /// must replay.
    ///
    /// Fails with [`StoreError::NotADatabase`] when `dir` has no
    /// snapshot, and with [`StoreError::Corrupt`] (never a partial
    /// load) when the snapshot or the WAL body fails validation.
    pub fn open(dir: &Path, policy: Durability) -> Result<DbOpen, StoreError> {
        let snap_path = dir.join(SNAPSHOT_FILE);
        if !snap_path.is_file() {
            return Err(StoreError::NotADatabase {
                path: dir.to_path_buf(),
            });
        }
        let bytes =
            fs::read(&snap_path).map_err(|e| StoreError::io("read snapshot", &snap_path, e))?;
        let snapshot = decode_snapshot(&bytes, &snap_path)?;
        let base_ops = snapshot.base_ops;

        let wal_path = dir.join(WAL_FILE);
        let (records, wal_scan) = if wal_path.is_file() {
            let wal_bytes =
                fs::read(&wal_path).map_err(|e| StoreError::io("read WAL", &wal_path, e))?;
            scan_wal(&wal_bytes, &wal_path)?
        } else {
            // Crash between snapshot creation and WAL creation: the
            // snapshot alone is the whole state.
            (
                Vec::new(),
                WalScan {
                    valid_len: 0,
                    dropped_bytes: 0,
                    torn: None,
                },
            )
        };

        // Sequence sanity: within one WAL file records are consecutive.
        // A gap or regression means the file was assembled from
        // mismatched pieces — refuse rather than replay garbage.
        for pair in records.windows(2) {
            if pair[1].seq != pair[0].seq + 1 {
                return Err(StoreError::corrupt(
                    &wal_path,
                    WAL_HEADER_LEN,
                    format!(
                        "WAL sequence jumps from {} to {} (expected {})",
                        pair[0].seq,
                        pair[1].seq,
                        pair[0].seq + 1
                    ),
                ));
            }
        }
        let last_seq = records.last().map(|r| r.seq).unwrap_or(0);
        // Records already folded into the snapshot are skipped; a WAL
        // that starts *beyond* base_ops + 1 lost acknowledged ops.
        let replay: Vec<WalRecord> = records.into_iter().filter(|r| r.seq > base_ops).collect();
        if let Some(first) = replay.first() {
            if first.seq != base_ops + 1 {
                return Err(StoreError::corrupt(
                    &wal_path,
                    WAL_HEADER_LEN,
                    format!(
                        "WAL starts at op {} but the snapshot holds ops through {base_ops} \
                         (ops {} to {} are missing)",
                        first.seq,
                        base_ops + 1,
                        first.seq - 1
                    ),
                ));
            }
        }
        let seq = last_seq.max(base_ops);
        let wal = WalWriter::open(&wal_path, wal_scan.valid_len, policy)?;
        Ok(DbOpen {
            snapshot,
            replay,
            wal_scan,
            db: Db {
                dir: dir.to_path_buf(),
                wal,
                seq,
                base_ops,
            },
        })
    }

    /// Logs one committed mutation, assigning and returning its
    /// sequence number. The append is durable per the [`Durability`]
    /// policy the database was opened with.
    pub fn log(&mut self, op: WalOp) -> Result<u64, StoreError> {
        let seq = self.seq + 1;
        self.wal.append(&WalRecord { seq, op })?;
        self.seq = seq;
        Ok(seq)
    }

    /// Forces all logged ops to stable storage regardless of policy.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal.sync()
    }

    /// Folds the current KB state into a fresh snapshot and resets the
    /// WAL.
    ///
    /// Crash-safe at every point: the snapshot is replaced atomically
    /// *first* (so the old WAL's records all become skippable via
    /// `base_ops`), and only then is the WAL reset — a tear during the
    /// reset leaves a file that scans as empty.
    pub fn compact(
        &mut self,
        world: &World,
        prog: &OrderedProgram,
        ground: &GroundProgram,
    ) -> Result<(), StoreError> {
        // Everything logged so far must be on disk before the snapshot
        // claims to contain it.
        self.wal.sync()?;
        let bytes = encode_snapshot(world, prog, ground, self.seq);
        atomic_write(&self.dir, &self.dir.join(SNAPSHOT_FILE), &bytes)?;
        self.base_ops = self.seq;
        let policy = self.wal.policy();
        self.wal = WalWriter::create(&self.dir.join(WAL_FILE), policy)?;
        Ok(())
    }

    /// Sequence number of the last logged op.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Ops folded into the on-disk snapshot.
    pub fn base_ops(&self) -> u64 {
        self.base_ops
    }

    /// Ops logged since the last snapshot (the WAL's replay backlog).
    pub fn ops_since_snapshot(&self) -> u64 {
        self.seq - self.base_ops
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active durability policy.
    pub fn policy(&self) -> Durability {
        self.wal.policy()
    }

    /// Changes the durability policy for subsequent appends.
    pub fn set_policy(&mut self, policy: Durability) {
        self.wal.set_policy(policy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalOpKind;
    use olp_ground::GroundConfig;
    use olp_parser::parse_program;

    fn sample() -> (World, OrderedProgram, GroundProgram) {
        let mut w = World::new();
        let prog = parse_program(&mut w, "module main { p(a). q(X) :- p(X). }").unwrap();
        let ground = olp_ground::ground_smart(&mut w, &prog, &GroundConfig::default()).unwrap();
        (w, prog, ground)
    }

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("olp-db-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn op(kind: WalOpKind, rule: &str) -> WalOp {
        WalOp {
            kind,
            object: "main".into(),
            rule: rule.into(),
        }
    }

    #[test]
    fn create_log_reopen_replays_the_logged_suffix() {
        let dir = tmpdir("basic");
        let (w, p, g) = sample();
        let mut db = Db::create(&dir, &w, &p, &g, Durability::OnCommit).unwrap();
        assert!(Db::exists(&dir));
        assert_eq!(db.log(op(WalOpKind::Assert, "p(b).")).unwrap(), 1);
        assert_eq!(db.log(op(WalOpKind::Retract, "p(a).")).unwrap(), 2);
        drop(db);

        let opened = Db::open(&dir, Durability::OnCommit).unwrap();
        assert_eq!(opened.db.seq(), 2);
        assert_eq!(opened.db.base_ops(), 0);
        assert_eq!(opened.replay.len(), 2);
        assert_eq!(opened.replay[0].op.rule, "p(b).");
        assert_eq!(opened.replay[1].op.kind, WalOpKind::Retract);
        assert_eq!(opened.wal_scan.dropped_bytes, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_folds_ops_and_survives_stale_wal() {
        let dir = tmpdir("compact");
        let (w, p, g) = sample();
        let mut db = Db::create(&dir, &w, &p, &g, Durability::Batched).unwrap();
        for i in 0..5 {
            db.log(op(WalOpKind::Assert, &format!("p(c{i})."))).unwrap();
        }
        db.compact(&w, &p, &g).unwrap();
        assert_eq!(db.ops_since_snapshot(), 0);
        db.log(op(WalOpKind::Assert, "p(z).")).unwrap();
        db.sync().unwrap();
        drop(db);

        let opened = Db::open(&dir, Durability::OnCommit).unwrap();
        assert_eq!(opened.db.base_ops(), 5);
        assert_eq!(opened.db.seq(), 6);
        assert_eq!(
            opened.replay.len(),
            1,
            "only the post-compaction op replays"
        );
        assert_eq!(opened.replay[0].seq, 6);

        // Crash-between-renames simulation: restore the *old* WAL (all
        // five pre-compaction records) next to the *new* snapshot. All
        // its records are <= base_ops and must be skipped.
        let mut stale = crate::wal::wal_header().to_vec();
        for i in 0..5u64 {
            stale.extend_from_slice(&crate::wal::encode_record(&WalRecord {
                seq: i + 1,
                op: op(WalOpKind::Assert, &format!("p(c{i}).")),
            }));
        }
        fs::write(dir.join(WAL_FILE), &stale).unwrap();
        let opened = Db::open(&dir, Durability::OnCommit).unwrap();
        assert_eq!(opened.replay.len(), 0);
        assert_eq!(opened.db.seq(), 5, "seq resumes from the snapshot");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_snapshot_is_not_a_database() {
        let dir = tmpdir("nodb");
        fs::create_dir_all(&dir).unwrap();
        assert!(!Db::exists(&dir));
        assert!(matches!(
            Db::open(&dir, Durability::OnCommit),
            Err(StoreError::NotADatabase { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_is_truncated_and_appending_resumes() {
        let dir = tmpdir("torn");
        let (w, p, g) = sample();
        let mut db = Db::create(&dir, &w, &p, &g, Durability::OnCommit).unwrap();
        db.log(op(WalOpKind::Assert, "p(b).")).unwrap();
        db.log(op(WalOpKind::Assert, "p(c).")).unwrap();
        drop(db);
        // Tear the last record.
        let wal_path = dir.join(WAL_FILE);
        let bytes = fs::read(&wal_path).unwrap();
        fs::write(&wal_path, &bytes[..bytes.len() - 5]).unwrap();

        let opened = Db::open(&dir, Durability::OnCommit).unwrap();
        assert_eq!(opened.replay.len(), 1);
        assert!(opened.wal_scan.torn.is_some());
        assert!(opened.wal_scan.dropped_bytes > 0);
        let mut db = opened.db;
        assert_eq!(db.seq(), 1);
        assert_eq!(db.log(op(WalOpKind::Assert, "p(c).")).unwrap(), 2);
        drop(db);
        let opened = Db::open(&dir, Durability::OnCommit).unwrap();
        assert_eq!(opened.replay.len(), 2);
        assert_eq!(opened.wal_scan.dropped_bytes, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_gaps_are_refused() {
        let dir = tmpdir("gap");
        let (w, p, g) = sample();
        drop(Db::create(&dir, &w, &p, &g, Durability::OnCommit).unwrap());
        let mut bytes = crate::wal::wal_header().to_vec();
        for seq in [1u64, 3] {
            bytes.extend_from_slice(&crate::wal::encode_record(&WalRecord {
                seq,
                op: op(WalOpKind::Assert, "p(b)."),
            }));
        }
        fs::write(dir.join(WAL_FILE), &bytes).unwrap();
        assert!(matches!(
            Db::open(&dir, Durability::OnCommit),
            Err(StoreError::Corrupt { .. })
        ));
        // A WAL starting beyond base_ops + 1 is refused too.
        let mut bytes = crate::wal::wal_header().to_vec();
        bytes.extend_from_slice(&crate::wal::encode_record(&WalRecord {
            seq: 4,
            op: op(WalOpKind::Assert, "p(b)."),
        }));
        fs::write(dir.join(WAL_FILE), &bytes).unwrap();
        assert!(matches!(
            Db::open(&dir, Durability::OnCommit),
            Err(StoreError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scratch_file_left_by_a_crash_is_ignored() {
        let dir = tmpdir("scratch");
        let (w, p, g) = sample();
        let mut db = Db::create(&dir, &w, &p, &g, Durability::OnCommit).unwrap();
        db.log(op(WalOpKind::Assert, "p(b).")).unwrap();
        drop(db);
        fs::write(dir.join("snapshot.olps.tmp"), b"half-written junk").unwrap();
        let opened = Db::open(&dir, Durability::OnCommit).unwrap();
        assert_eq!(opened.replay.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }
}
