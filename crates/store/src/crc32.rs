//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Every frame in the snapshot and WAL formats carries a CRC-32 of its
//! header and payload; torn writes and bit flips are detected as
//! checksum mismatches rather than silently decoded. The implementation
//! is self-contained (the build environment vendors no checksum crate)
//! and matches the ubiquitous reflected CRC-32 used by gzip/zlib/PNG,
//! so golden values can be cross-checked with any standard tool.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Incremental CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut s = self.state;
        for &b in data {
            s = (s >> 8) ^ TABLE[((s ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = s;
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_values() {
        // Standard check value for the ASCII digits "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"ordered logic programs survive restarts";
        let whole = crc32(data);
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), whole);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"frame payload".to_vec();
        let before = crc32(&data);
        data[5] ^= 0x10;
        assert_ne!(crc32(&data), before);
    }
}
