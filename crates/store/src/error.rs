//! Store error type.
//!
//! Every fallible path in `olp-store` reports a [`StoreError`]: a real
//! `std::error::Error` with a readable `Display` and, for I/O failures,
//! the underlying `io::Error` as `source()`. No `String` errors escape
//! this crate.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// An error raised while reading or writing a durable KB.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure, tagged with what the store was
    /// doing and on which path.
    Io {
        /// Short verb phrase, e.g. `"open snapshot"`.
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The file does not start with the expected magic bytes — it is
    /// not an olp snapshot/WAL at all (or the header itself is torn).
    BadMagic {
        /// The offending file.
        path: PathBuf,
        /// What the file was expected to be, e.g. `"snapshot"`.
        expected: &'static str,
    },
    /// The file is a recognised olp file but written by an incompatible
    /// format version.
    UnsupportedVersion {
        /// The offending file.
        path: PathBuf,
        /// The version recorded in the header.
        found: u32,
        /// The version this build reads.
        supported: u32,
    },
    /// The file failed structural validation: a frame checksum
    /// mismatch, a truncated section, an out-of-range id, or a missing
    /// end marker. Corrupt data is *never* silently loaded.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Byte offset of the first bad frame, where known.
        offset: u64,
        /// Human-readable description of the failure.
        detail: String,
    },
    /// `open` was pointed at a directory with no snapshot file — not a
    /// KB database.
    NotADatabase {
        /// The directory that was probed.
        path: PathBuf,
    },
    /// A WAL op replayed on open was rejected by the KB layer (e.g. the
    /// log references an object that the snapshot does not define).
    /// Carries the op index and the KB's own rendering of the failure.
    Replay {
        /// Zero-based index of the failing op within the replayed
        /// suffix.
        index: usize,
        /// The KB-layer error message.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "failed to {op} at {}: {source}", path.display())
            }
            StoreError::BadMagic { path, expected } => {
                write!(f, "{} is not an olp {expected} file", path.display())
            }
            StoreError::UnsupportedVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "{} uses format version {found}, but this build supports version {supported}",
                path.display()
            ),
            StoreError::Corrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "{} is corrupt at byte {offset}: {detail}",
                path.display()
            ),
            StoreError::NotADatabase { path } => {
                write!(
                    f,
                    "{} is not a KB database (no snapshot found)",
                    path.display()
                )
            }
            StoreError::Replay { index, detail } => {
                write!(f, "WAL replay failed at op {index}: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StoreError {
    /// Wraps an `io::Error` with its operation and path.
    pub fn io(op: &'static str, path: impl Into<PathBuf>, source: io::Error) -> Self {
        StoreError::Io {
            op,
            path: path.into(),
            source,
        }
    }

    /// Builds a [`StoreError::Corrupt`].
    pub fn corrupt(path: impl Into<PathBuf>, offset: u64, detail: impl Into<String>) -> Self {
        StoreError::Corrupt {
            path: path.into(),
            offset,
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_is_readable_and_source_links_io() {
        let e = StoreError::io(
            "open snapshot",
            "/tmp/db/snapshot.olps",
            io::Error::new(io::ErrorKind::PermissionDenied, "denied"),
        );
        let msg = e.to_string();
        assert!(msg.contains("open snapshot"), "{msg}");
        assert!(msg.contains("snapshot.olps"), "{msg}");
        assert!(e.source().is_some());

        let c = StoreError::corrupt("/db/wal.olpw", 96, "checksum mismatch");
        assert!(c.to_string().contains("byte 96"));
        assert!(c.source().is_none());
    }
}
