//! `olp-store` — durable storage for ordered-logic knowledge bases.
//!
//! Two files make a database directory (see `docs/DURABILITY.md`):
//!
//! * **`snapshot.olps`** — a compact, versioned binary image of the
//!   whole KB: interned symbol table, hash-consed term store, ordered
//!   program (with source spans), and ground program. Every section is
//!   a length-prefixed, CRC-32-checksummed frame; decoding re-interns
//!   in id order, which reproduces identical arena ids, so opening a
//!   database is decode + index rebuild — no re-parse, no re-ground.
//! * **`wal.olpw`** — an append-only write-ahead log of assert/retract
//!   ops in surface syntax, one checksummed frame per op, fsync'd per
//!   the configured [`Durability`] policy. A torn or corrupt tail (the
//!   signature of a crash mid-append) is detected by checksum and
//!   truncated at the last valid record; replay goes through the KB's
//!   ordinary mutation path.
//!
//! [`Db`] ties the two together: crash-safe open (scan, truncate,
//! replay hand-off), logged appends, and periodic snapshot + log
//! compaction via atomic rename-into-place. The KB-facing wrapper
//! (`DurableKb`) lives in `olp-kb`, which owns the replay machinery.
//!
//! Corruption is *never* silently loaded: a snapshot failing any
//! checksum or structural check is rejected with a positioned
//! [`StoreError::Corrupt`]; only a WAL **tail** is recoverable by
//! design (and the recovery is reported, not hidden).

#![warn(missing_docs)]

pub mod crc32;
pub mod db;
pub mod error;
pub mod format;
pub mod snapshot;
pub mod wal;

pub use db::{Db, DbOpen, SNAPSHOT_FILE, WAL_FILE};
pub use error::StoreError;
pub use snapshot::{decode_snapshot, encode_snapshot, SnapshotData, SNAPSHOT_VERSION};
pub use wal::{Durability, WalOp, WalOpKind, WalRecord, WalScan};
