//! Low-level binary encoding: little-endian primitives and checksummed
//! frames.
//!
//! Both durable files are sequences of **frames** after a small header:
//!
//! ```text
//! frame := tag:u32le  len:u32le  payload:[u8; len]  crc:u32le
//! ```
//!
//! where `crc` is CRC-32 over `tag || len || payload`. The tag says
//! what the payload is (a snapshot section, or a WAL op kind); the
//! length prefix makes scanning O(frames); the checksum makes torn
//! writes and bit flips detectable. A frame that cannot be read in
//! full, or whose checksum disagrees, is a [`FrameError::Torn`] — the
//! snapshot reader treats that as corruption, the WAL reader as the
//! recoverable end of the log.

use crate::crc32::Crc32;

/// Maximum accepted frame payload (1 GiB). A length prefix beyond this
/// is treated as torn rather than attempted as an allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// Little-endian append-only byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// A decode failure inside one frame payload: the payload ended early
/// or held an out-of-spec value. Carries a static description; the
/// caller attaches file and offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PayloadError(pub &'static str);

/// Little-endian cursor over a frame payload.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps `buf` with the cursor at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PayloadError> {
        if self.buf.len() - self.pos < n {
            return Err(PayloadError("payload truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, PayloadError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, PayloadError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, PayloadError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, PayloadError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, PayloadError> {
        let n = self.get_u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| PayloadError("invalid UTF-8 in string"))
    }

    /// Whether the cursor has consumed the whole payload.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Fails unless the whole payload was consumed — trailing garbage
    /// inside a checksummed frame still means the encoder and decoder
    /// disagree.
    pub fn expect_exhausted(&self) -> Result<(), PayloadError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(PayloadError("trailing bytes in payload"))
        }
    }
}

/// Appends one checksummed frame to `out`.
pub fn write_frame(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    let len = payload.len() as u32;
    assert!(len <= MAX_FRAME_LEN, "frame payload too large");
    let mut crc = Crc32::new();
    crc.update(&tag.to_le_bytes());
    crc.update(&len.to_le_bytes());
    crc.update(payload);
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc.finish().to_le_bytes());
}

/// Why a frame could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends mid-frame, or the frame checksum does not match:
    /// the classic torn/corrupted tail. `at` is the byte offset of the
    /// frame's start.
    Torn {
        /// Offset of the start of the bad frame.
        at: u64,
        /// What specifically failed.
        why: &'static str,
    },
}

/// Reads the frame starting at `*pos` in `buf`.
///
/// Returns `Ok(None)` at a clean end of buffer, `Ok(Some((tag,
/// payload)))` on success (advancing `*pos` past the frame), and
/// [`FrameError::Torn`] when the remaining bytes do not contain one
/// whole, checksum-valid frame.
pub fn read_frame<'a>(
    buf: &'a [u8],
    pos: &mut usize,
) -> Result<Option<(u32, &'a [u8])>, FrameError> {
    let start = *pos;
    let rest = &buf[start..];
    if rest.is_empty() {
        return Ok(None);
    }
    let torn = |why| FrameError::Torn {
        at: start as u64,
        why,
    };
    if rest.len() < 8 {
        return Err(torn("partial frame header"));
    }
    let tag = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
    let len = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
    if len > MAX_FRAME_LEN {
        return Err(torn("frame length out of range"));
    }
    let total = 8 + len as usize + 4;
    if rest.len() < total {
        return Err(torn("partial frame body"));
    }
    let payload = &rest[8..8 + len as usize];
    let stored = u32::from_le_bytes([
        rest[total - 4],
        rest[total - 3],
        rest[total - 2],
        rest[total - 1],
    ]);
    let mut crc = Crc32::new();
    crc.update(&rest[..8]);
    crc.update(payload);
    if crc.finish() != stored {
        return Err(torn("frame checksum mismatch"));
    }
    *pos = start + total;
    Ok(Some((tag, payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(1 << 40);
        w.put_i64(-42);
        w.put_str("isa");
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_str().unwrap(), "isa");
        assert!(r.expect_exhausted().is_ok());
        assert!(r.get_u8().is_err(), "reading past the end errors");
    }

    #[test]
    fn frames_round_trip_and_chain() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"first");
        write_frame(&mut buf, 2, b"");
        write_frame(&mut buf, 3, b"third");
        let mut pos = 0;
        assert_eq!(
            read_frame(&buf, &mut pos).unwrap(),
            Some((1, &b"first"[..]))
        );
        assert_eq!(read_frame(&buf, &mut pos).unwrap(), Some((2, &b""[..])));
        assert_eq!(
            read_frame(&buf, &mut pos).unwrap(),
            Some((3, &b"third"[..]))
        );
        assert_eq!(read_frame(&buf, &mut pos).unwrap(), None);
    }

    #[test]
    fn truncation_reports_torn_at_frame_start() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"kept");
        let start2 = buf.len();
        write_frame(&mut buf, 2, b"lost in the crash");
        for cut in start2 + 1..buf.len() {
            let mut pos = 0;
            let short = &buf[..cut];
            assert!(read_frame(short, &mut pos).unwrap().is_some());
            match read_frame(short, &mut pos) {
                Err(FrameError::Torn { at, .. }) => assert_eq!(at, start2 as u64),
                other => panic!("expected torn frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flip_anywhere_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 9, b"checksummed payload");
        for byte in 0..buf.len() {
            for bit in [0, 3, 7] {
                let mut bad = buf.clone();
                bad[byte] ^= 1 << bit;
                let mut pos = 0;
                // Either the frame is rejected outright, or (if the
                // flip landed in the tag) the tag changed — the frame
                // never decodes as tag 9 with altered content.
                match read_frame(&bad, &mut pos) {
                    Err(FrameError::Torn { .. }) => {}
                    Ok(Some((tag, payload))) => {
                        assert!(
                            tag == 9 && payload == b"checksummed payload",
                            "silent corruption at byte {byte} bit {bit}"
                        );
                        panic!("flip at byte {byte} bit {bit} went undetected");
                    }
                    Ok(None) => panic!("frame vanished"),
                }
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_torn_not_alloc() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut pos = 0;
        assert!(matches!(
            read_frame(&buf, &mut pos),
            Err(FrameError::Torn { .. })
        ));
    }
}
