//! The write-ahead log: an append-only file of assert/retract ops.
//!
//! Each mutation that survives the KB's own validation is appended as
//! one checksummed frame ([`crate::format`]):
//!
//! ```text
//! "OLPW"  version:u32le  record*
//! record := frame(tag = op kind, payload = seq:u64 object:str rule:str)
//! ```
//!
//! Records carry the **surface syntax** of the op (object name + rule
//! text) rather than interned ids: replay goes through the ordinary
//! `Kb::assert_rule`/`retract_rule` path — parser, validation, and the
//! incremental `DeltaGrounder` — so a recovered KB is produced by
//! exactly the machinery that produced the original, and the log stays
//! readable across interner changes.
//!
//! Records also carry a global **sequence number**. The snapshot
//! records how many ops it has folded in (`base_ops`); on open, records
//! with `seq <= base_ops` are skipped. This makes snapshot compaction
//! crash-safe without multi-file atomicity: whichever of the
//! snapshot/WAL renames survives a crash, replay converges to the same
//! state.
//!
//! A torn or corrupt **tail** (partial frame, checksum mismatch) is the
//! expected signature of a crash mid-append: scanning stops at the last
//! valid record and [`WalScan`] reports how many bytes are dropped; the
//! store truncates the file there on open. Corruption *before* the tail
//! cannot be distinguished from it — the scan simply ends earlier and
//! the report says so.

use crate::error::StoreError;
use crate::format::{read_frame, write_frame, ByteReader, FrameError};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"OLPW";
/// WAL format version written (and the only one read) by this build.
pub const WAL_VERSION: u32 = 1;
/// Size of the WAL header in bytes.
pub const WAL_HEADER_LEN: u64 = 8;

/// How many appends a [`Durability::Batched`] writer buffers between
/// fsyncs.
pub const BATCH_SYNC_EVERY: u32 = 64;

/// When the store calls `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Never fsync. Appends still hit the OS page cache (ordinary
    /// process death loses nothing; power loss may lose the tail).
    Off,
    /// fsync after every committed op — an acknowledged mutation
    /// survives power loss. The default.
    #[default]
    OnCommit,
    /// fsync every [`BATCH_SYNC_EVERY`] ops and on explicit
    /// [`WalWriter::sync`] — bounded loss window, much cheaper.
    Batched,
}

/// The kind of a logged mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOpKind {
    /// `assert(object, rule)`.
    Assert,
    /// `retract(object, rule)`.
    Retract,
}

/// One logged mutation, in surface syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalOp {
    /// Assert or retract.
    pub kind: WalOpKind,
    /// Target object (component) name.
    pub object: String,
    /// The rule, as written (e.g. `"fly(X) :- bird(X)."`).
    pub rule: String,
}

impl WalOp {
    /// An assert op.
    pub fn assert(object: &str, rule: &str) -> WalOp {
        WalOp {
            kind: WalOpKind::Assert,
            object: object.to_string(),
            rule: rule.to_string(),
        }
    }

    /// A retract op.
    pub fn retract(object: &str, rule: &str) -> WalOp {
        WalOp {
            kind: WalOpKind::Retract,
            object: object.to_string(),
            rule: rule.to_string(),
        }
    }
}

/// A decoded WAL record: op plus its global sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// 1-based global op counter (continues across compactions).
    pub seq: u64,
    /// The op.
    pub op: WalOp,
}

/// What a scan of a WAL file found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Byte length of the valid prefix (header + whole valid records).
    pub valid_len: u64,
    /// Bytes past the valid prefix that were dropped as a torn or
    /// corrupt tail.
    pub dropped_bytes: u64,
    /// Why scanning stopped early, if it did.
    pub torn: Option<&'static str>,
}

const TAG_ASSERT: u32 = 1;
const TAG_RETRACT: u32 = 2;

/// The 8-byte WAL header.
pub fn wal_header() -> [u8; 8] {
    let mut h = [0u8; 8];
    h[..4].copy_from_slice(&WAL_MAGIC);
    h[4..].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h
}

/// Encodes one record as a frame (exposed for tests that build
/// corrupted logs byte by byte).
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut payload = crate::format::ByteWriter::new();
    payload.put_u64(rec.seq);
    payload.put_str(&rec.op.object);
    payload.put_str(&rec.op.rule);
    let tag = match rec.op.kind {
        WalOpKind::Assert => TAG_ASSERT,
        WalOpKind::Retract => TAG_RETRACT,
    };
    let mut out = Vec::new();
    write_frame(&mut out, tag, payload.as_slice());
    out
}

/// Scans WAL `bytes`, returning every valid record and where the valid
/// prefix ends.
///
/// A file that does not begin with the WAL magic is a hard error; a
/// file that ends mid-frame or with a checksum mismatch is a normal
/// crash artefact, reported via [`WalScan`] for the caller to truncate.
/// A header-only prefix (crash during WAL creation) scans as empty.
pub fn scan_wal(bytes: &[u8], path: &Path) -> Result<(Vec<WalRecord>, WalScan), StoreError> {
    let header = wal_header();
    if bytes.len() < header.len() {
        // Torn header: tolerable only if it is a prefix of the real
        // header (nothing else could have been written yet).
        if header.starts_with(bytes) {
            return Ok((
                Vec::new(),
                WalScan {
                    valid_len: 0,
                    dropped_bytes: bytes.len() as u64,
                    torn: Some("torn WAL header"),
                },
            ));
        }
        return Err(StoreError::BadMagic {
            path: path.to_path_buf(),
            expected: "write-ahead log",
        });
    }
    if bytes[..4] != WAL_MAGIC {
        return Err(StoreError::BadMagic {
            path: path.to_path_buf(),
            expected: "write-ahead log",
        });
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != WAL_VERSION {
        return Err(StoreError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
            supported: WAL_VERSION,
        });
    }

    let mut records = Vec::new();
    let mut pos = header.len();
    let mut torn = None;
    loop {
        let frame_start = pos;
        match read_frame(bytes, &mut pos) {
            Ok(None) => break,
            Err(FrameError::Torn { why, .. }) => {
                pos = frame_start;
                torn = Some(why);
                break;
            }
            Ok(Some((tag, payload))) => {
                let kind = match tag {
                    TAG_ASSERT => WalOpKind::Assert,
                    TAG_RETRACT => WalOpKind::Retract,
                    _ => {
                        // An unknown tag with a valid checksum is not a
                        // torn write; refuse the whole file rather than
                        // guess.
                        return Err(StoreError::corrupt(
                            path,
                            frame_start as u64,
                            format!("unknown WAL record tag {tag}"),
                        ));
                    }
                };
                let mut r = ByteReader::new(payload);
                let parse = (|| {
                    let seq = r.get_u64()?;
                    let object = r.get_str()?;
                    let rule = r.get_str()?;
                    r.expect_exhausted()?;
                    Ok::<_, crate::format::PayloadError>(WalRecord {
                        seq,
                        op: WalOp { kind, object, rule },
                    })
                })();
                match parse {
                    Ok(rec) => records.push(rec),
                    Err(e) => {
                        return Err(StoreError::corrupt(path, frame_start as u64, e.0));
                    }
                }
            }
        }
    }
    let scan = WalScan {
        valid_len: pos as u64,
        dropped_bytes: (bytes.len() - pos) as u64,
        torn,
    };
    Ok((records, scan))
}

/// Appending side of the WAL.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: Durability,
    unsynced: u32,
}

impl WalWriter {
    /// Creates a fresh WAL at `path` (truncating any existing file) and
    /// syncs the header.
    pub fn create(path: &Path, policy: Durability) -> Result<Self, StoreError> {
        let mut file = File::create(path).map_err(|e| StoreError::io("create WAL", path, e))?;
        file.write_all(&wal_header())
            .map_err(|e| StoreError::io("write WAL header", path, e))?;
        file.sync_all()
            .map_err(|e| StoreError::io("sync WAL", path, e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            unsynced: 0,
        })
    }

    /// Opens an existing WAL for appending, first truncating it to
    /// `valid_len` (dropping a torn tail found by [`scan_wal`]).
    /// `valid_len == 0` rewrites the header (torn-header recovery).
    pub fn open(path: &Path, valid_len: u64, policy: Durability) -> Result<Self, StoreError> {
        if valid_len < WAL_HEADER_LEN {
            return Self::create(path, policy);
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io("open WAL", path, e))?;
        file.set_len(valid_len)
            .map_err(|e| StoreError::io("truncate WAL tail", path, e))?;
        let mut w = WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            unsynced: 0,
        };
        use std::io::Seek;
        w.file
            .seek(std::io::SeekFrom::End(0))
            .map_err(|e| StoreError::io("seek WAL", path, e))?;
        if valid_len > WAL_HEADER_LEN {
            // The truncation itself must be durable before new appends.
            w.file
                .sync_all()
                .map_err(|e| StoreError::io("sync WAL", &w.path, e))?;
        }
        Ok(w)
    }

    /// Appends one record and applies the durability policy.
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), StoreError> {
        let bytes = encode_record(rec);
        self.file
            .write_all(&bytes)
            .map_err(|e| StoreError::io("append to WAL", &self.path, e))?;
        match self.policy {
            Durability::Off => Ok(()),
            Durability::OnCommit => self.sync(),
            Durability::Batched => {
                self.unsynced += 1;
                if self.unsynced >= BATCH_SYNC_EVERY {
                    self.sync()
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Forces everything appended so far to stable storage, regardless
    /// of policy.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file
            .sync_all()
            .map_err(|e| StoreError::io("sync WAL", &self.path, e))?;
        self.unsynced = 0;
        Ok(())
    }

    /// The WAL file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The active durability policy.
    pub fn policy(&self) -> Durability {
        self.policy
    }

    /// Changes the durability policy for subsequent appends.
    pub fn set_policy(&mut self, policy: Durability) {
        self.policy = policy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, kind: WalOpKind, rule: &str) -> WalRecord {
        WalRecord {
            seq,
            op: WalOp {
                kind,
                object: "main".into(),
                rule: rule.into(),
            },
        }
    }

    fn log_bytes(recs: &[WalRecord]) -> Vec<u8> {
        let mut b = wal_header().to_vec();
        for r in recs {
            b.extend_from_slice(&encode_record(r));
        }
        b
    }

    #[test]
    fn scan_round_trips_records() {
        let recs = vec![
            rec(1, WalOpKind::Assert, "p(a)."),
            rec(2, WalOpKind::Retract, "p(a)."),
            rec(3, WalOpKind::Assert, "q(X) :- p(X)."),
        ];
        let bytes = log_bytes(&recs);
        let (got, scan) = scan_wal(&bytes, Path::new("w")).unwrap();
        assert_eq!(got, recs);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert_eq!(scan.dropped_bytes, 0);
        assert_eq!(scan.torn, None);
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_record() {
        let recs = vec![
            rec(1, WalOpKind::Assert, "p(a)."),
            rec(2, WalOpKind::Assert, "p(b)."),
        ];
        let full = log_bytes(&recs);
        let first_end = log_bytes(&recs[..1]).len();
        for cut in first_end + 1..full.len() {
            let (got, scan) = scan_wal(&full[..cut], Path::new("w")).unwrap();
            assert_eq!(got, recs[..1], "cut at {cut}");
            assert_eq!(scan.valid_len, first_end as u64);
            assert_eq!(scan.dropped_bytes, (cut - first_end) as u64);
            assert!(scan.torn.is_some());
        }
    }

    #[test]
    fn bit_flip_in_tail_record_is_dropped_not_loaded() {
        let recs = vec![
            rec(1, WalOpKind::Assert, "p(a)."),
            rec(2, WalOpKind::Assert, "p(b)."),
        ];
        let mut bytes = log_bytes(&recs);
        let first_end = log_bytes(&recs[..1]).len();
        // Flip a payload bit in the second record.
        let idx = first_end + 10;
        bytes[idx] ^= 0x40;
        let (got, scan) = scan_wal(&bytes, Path::new("w")).unwrap();
        assert_eq!(got, recs[..1]);
        assert!(scan.torn.is_some());
        assert_eq!(scan.valid_len, first_end as u64);
    }

    #[test]
    fn torn_header_scans_as_empty_and_garbage_is_bad_magic() {
        let h = wal_header();
        for cut in 0..h.len() {
            let (got, scan) = scan_wal(&h[..cut], Path::new("w")).unwrap();
            assert!(got.is_empty());
            assert_eq!(scan.valid_len, 0);
        }
        assert!(matches!(
            scan_wal(b"GARBAGE!", Path::new("w")),
            Err(StoreError::BadMagic { .. })
        ));
        let mut vers = h.to_vec();
        vers[4] = 9;
        assert!(matches!(
            scan_wal(&vers, Path::new("w")),
            Err(StoreError::UnsupportedVersion { found: 9, .. })
        ));
    }

    #[test]
    fn writer_appends_scannable_records() {
        let dir = std::env::temp_dir().join(format!("olp-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.olpw");
        let mut w = WalWriter::create(&path, Durability::OnCommit).unwrap();
        for i in 1..=5u64 {
            w.append(&rec(i, WalOpKind::Assert, &format!("p(c{i}).")))
                .unwrap();
        }
        drop(w);
        let bytes = std::fs::read(&path).unwrap();
        let (got, scan) = scan_wal(&bytes, &path).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(scan.dropped_bytes, 0);

        // Simulate a crash: chop the file mid-record, reopen, append.
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let chopped = std::fs::read(&path).unwrap();
        let (got, scan) = scan_wal(&chopped, &path).unwrap();
        assert_eq!(got.len(), 4);
        let mut w = WalWriter::open(&path, scan.valid_len, Durability::Batched).unwrap();
        w.append(&rec(5, WalOpKind::Retract, "p(c1).")).unwrap();
        w.sync().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let (got, _) = scan_wal(&bytes, &path).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(got[4].op.kind, WalOpKind::Retract);
        std::fs::remove_dir_all(&dir).ok();
    }
}
