//! Property tests for the snapshot and WAL formats.
//!
//! - `snapshot(encode) ∘ decode ≡ id`: decoding a snapshot and
//!   re-encoding it reproduces the exact bytes, over random ordered
//!   programs (so every arena round-trips order-preservingly);
//! - single-byte corruption anywhere in a snapshot is detected
//!   (CRC-32 catches all bursts shorter than the checksum);
//! - WAL encoding is deterministic, and a scan of what `WalWriter`
//!   wrote returns exactly the appended records;
//! - a flipped byte in a WAL record truncates the log at the last
//!   record that still checks out, never yielding garbage ops.

use olp_core::World;
use olp_ground::{ground_smart, GroundConfig};
use olp_store::wal::{scan_wal, wal_header, WalWriter};
use olp_store::{decode_snapshot, encode_snapshot, Durability, WalOp, WalRecord};
use olp_workload::{random_ordered, RandomCfg};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn scratch(name: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!("olp-store-rt-{name}-{}-{case}", std::process::id()))
}

/// A random program's full snapshot payload, plus its ground size for
/// sanity checks.
fn encoded(cfg: &RandomCfg, seed: u64, base_ops: u64) -> (Vec<u8>, usize, usize) {
    let mut world = World::new();
    let prog = random_ordered(&mut world, cfg, seed);
    let ground = ground_smart(&mut world, &prog, &GroundConfig::default()).unwrap();
    let bytes = encode_snapshot(&world, &prog, &ground, base_ops);
    (bytes, prog.rule_count(), ground.len())
}

fn small_cfg(n_atoms: usize, n_rules: usize, n_components: usize) -> RandomCfg {
    RandomCfg {
        n_atoms: n_atoms.max(1),
        n_rules,
        max_body: 3,
        neg_head_prob: 0.3,
        neg_body_prob: 0.4,
        n_components: n_components.max(1),
        edge_prob: 0.5,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES")
            .ok().and_then(|s| s.parse().ok()).unwrap_or(48),
    ))]

    /// decode ∘ encode is the identity on the byte level: re-encoding
    /// the decoded arenas reproduces the snapshot exactly.
    #[test]
    fn snapshot_reencode_is_identity(
        n_atoms in 1usize..10,
        n_rules in 0usize..24,
        n_components in 1usize..5,
        seed in 0u64..1u64 << 48,
        base_ops in 0u64..1u64 << 40,
    ) {
        let cfg = small_cfg(n_atoms, n_rules, n_components);
        let (bytes, rule_count, ground_len) = encoded(&cfg, seed, base_ops);
        let snap = decode_snapshot(&bytes, Path::new("prop.olps")).unwrap();
        prop_assert_eq!(snap.base_ops, base_ops);
        prop_assert_eq!(snap.prog.rule_count(), rule_count);
        prop_assert_eq!(snap.ground.len(), ground_len);
        let again = encode_snapshot(&snap.world, &snap.prog, &snap.ground, snap.base_ops);
        prop_assert_eq!(again, bytes);
    }

    /// Any single corrupted byte anywhere in the snapshot — header,
    /// frame lengths, payloads, checksums — is detected.
    #[test]
    fn snapshot_byte_flip_is_detected(
        seed in 0u64..1u64 << 48,
        pos_ppm in 0u32..1_000_000,
        flip in 1u8..=255,
    ) {
        let cfg = small_cfg(5, 10, 3);
        let (mut bytes, _, _) = encoded(&cfg, seed, 7);
        let pos = (bytes.len() - 1) * pos_ppm as usize / 1_000_000;
        bytes[pos] ^= flip;
        prop_assert!(
            decode_snapshot(&bytes, Path::new("prop.olps")).is_err(),
            "flip of byte {} (of {}) went undetected", pos, bytes.len()
        );
    }

    /// The WAL is deterministic, and scanning what the writer appended
    /// returns exactly those records.
    #[test]
    fn wal_write_scan_round_trips(
        ops in proptest::collection::vec(
            ("[a-z]{1,8}", "[a-z()., :X-]{1,40}", any::<bool>()), 0..20),
        case in 0u64..u64::MAX,
    ) {
        let records: Vec<WalRecord> = ops.iter().enumerate().map(|(i, (obj, rule, assert))| {
            WalRecord {
                seq: i as u64 + 1,
                op: if *assert {
                    WalOp::assert(obj, rule)
                } else {
                    WalOp::retract(obj, rule)
                },
            }
        }).collect();
        let path = scratch("wal", case);
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::create(&path, Durability::Off).unwrap();
        for rec in &records {
            w.append(rec).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let bytes = std::fs::read(&path).unwrap();
        prop_assert_eq!(&bytes[..8], &wal_header());
        let (scanned, scan) = scan_wal(&bytes, &path).unwrap();
        prop_assert_eq!(scanned, records);
        prop_assert_eq!(scan.dropped_bytes, 0);
        prop_assert!(scan.torn.is_none());
        // Determinism: a second writer produces identical bytes.
        let path2 = scratch("wal2", case);
        let _ = std::fs::remove_file(&path2);
        let mut w2 = WalWriter::create(&path2, Durability::Off).unwrap();
        for rec in &records {
            w2.append(rec).unwrap();
        }
        w2.sync().unwrap();
        drop(w2);
        prop_assert_eq!(std::fs::read(&path2).unwrap(), bytes);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    /// A corrupted byte inside a record makes the scan stop at the
    /// last preceding valid record: a prefix, never garbage.
    #[test]
    fn wal_byte_flip_truncates_to_a_valid_prefix(
        n_ops in 1usize..16,
        pos_ppm in 0u32..1_000_000,
        flip in 1u8..=255,
        case in 0u64..u64::MAX,
    ) {
        let records: Vec<WalRecord> = (0..n_ops).map(|i| WalRecord {
            seq: i as u64 + 1,
            op: WalOp::assert("main", &format!("parent(m{i}_a, m{i}_b).")),
        }).collect();
        let path = scratch("walflip", case);
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::create(&path, Durability::Off).unwrap();
        for rec in &records {
            w.append(rec).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt strictly after the 8-byte header (header corruption
        // is a hard error, tested separately in the wal module).
        let lo = wal_header().len();
        let pos = lo + (bytes.len() - lo - 1) * pos_ppm as usize / 1_000_000;
        bytes[pos] ^= flip;
        let (scanned, scan) = scan_wal(&bytes, &path).unwrap();
        prop_assert!(scanned.len() < records.len());
        prop_assert_eq!(&records[..scanned.len()], &scanned[..]);
        prop_assert!(scan.dropped_bytes > 0);
        prop_assert!(scan.torn.is_some());
        std::fs::remove_file(&path).ok();
    }
}
