//! # olp-kb — ordered logic programming as a knowledge-base system
//!
//! The paper positions ordered logic programming as "a step toward the
//! construction of knowledge base systems of great flexibility":
//! modules are objects, the `<` hierarchy is `isa` inheritance, local
//! rules overrule inherited defaults, and specialisation doubles as
//! versioning (§1, §5). This crate packages those claims as an API:
//!
//! ```
//! use olp_kb::{GroundStrategy, KbBuilder};
//! use olp_core::Truth;
//!
//! let mut b = KbBuilder::new();
//! b.rules("bird", "
//!     bird(penguin). bird(pigeon).
//!     fly(X) :- bird(X).
//! ").unwrap();
//! b.isa("penguin_facts", "bird");
//! b.rules("penguin_facts", "
//!     ground_animal(penguin).
//!     -fly(X) :- ground_animal(X).
//! ").unwrap();
//! let mut kb = b.build(GroundStrategy::Smart).unwrap();
//! assert_eq!(kb.truth("penguin_facts", "fly(penguin)").unwrap(), Truth::False);
//! assert_eq!(kb.truth("bird", "fly(penguin)").unwrap(), Truth::True);
//! ```
//!
//! Extensional data lives in [`Relation`]s (Example 6's "parent defined
//! through a database relation") and is loaded into objects as facts.

#![warn(missing_docs)]

pub mod durable;
pub mod kb;
pub mod relation;
pub mod snapshot;

pub use durable::{DurableKb, RecoveryReport};
pub use kb::{
    default_morsel_weight, default_threads, GroundStrategy, Kb, KbBuilder, KbError, QueryOptions,
};
pub use olp_core::{Budget, Eval, InterruptReason, Interrupted};
pub use olp_store::{Durability, StoreError};
pub use relation::{ArityMismatch, Relation};
pub use snapshot::KbSnapshot;
