//! Frozen, thread-safe KB views for snapshot-isolated reads.
//!
//! [`KbSnapshot`] is what a server hands its readers: the world,
//! ordered program, and grounding of a [`crate::Kb`] frozen at one
//! epoch, shared by `Arc` (publishing is O(components), see
//! [`crate::Kb::snapshot`]). Every query method takes `&self` and the
//! type is `Send + Sync`, so any number of threads evaluate
//! concurrently against one snapshot while a single writer mutates the
//! live KB and publishes the next epoch — readers never block on a
//! writer and never observe a half-applied mutation.
//!
//! ## Read-only query resolution
//!
//! The parser interns as it goes, which is why [`crate::Kb`] queries
//! take `&mut self`. A snapshot instead parses query text into a
//! private scratch [`World`] and *translates* the result into the
//! frozen world through read-only lookups ([`SymbolTable::get`],
//! [`TermStore::lookup`], [`AtomStore::get_id`]). A ground query whose
//! atom was never materialised at this epoch resolves to `Undefined` —
//! exactly what the mutable path answers after interning a fresh,
//! never-derivable atom — so snapshot answers are byte-identical to a
//! sequential [`crate::Kb`] evaluated at the same epoch.
//!
//! [`SymbolTable::get`]: olp_core::SymbolTable::get
//! [`TermStore::lookup`]: olp_core::TermStore::lookup
//! [`AtomStore::get_id`]: olp_core::AtomStore::get_id

use crate::kb::{KbError, QueryOptions};
use olp_analyze::ComponentProfile;
use olp_core::{
    CompId, Eval, FxHashMap, GLit, GTerm, GTermId, Interpretation, Interrupted, Literal, Sym, Term,
    Truth, World,
};
use olp_ground::{FlatView, GroundProgram};
use olp_parser::{parse_ground_literal, parse_literal};
use olp_semantics::{
    credulous_consequences_budgeted, least_model_monolithic_budgeted, least_model_morsel,
    skeptical_consequences_budgeted, stable_models_decomposed_budgeted,
    stable_models_monolithic_budgeted, stable_models_parallel_budgeted, MorselCfg, View,
};
use std::sync::{Arc, Mutex};

/// An immutable view of a knowledge base frozen at one epoch.
///
/// Created by [`crate::Kb::snapshot`]. All query methods take `&self`;
/// internal caches (compiled flat arenas, memoised least models) sit
/// behind mutexes that are held only for map probes and inserts, never
/// across evaluation, so concurrent readers do not serialise on each
/// other.
#[derive(Debug)]
pub struct KbSnapshot {
    world: Arc<World>,
    prog: Arc<olp_core::OrderedProgram>,
    ground: Arc<GroundProgram>,
    epoch: u64,
    threads: usize,
    morsel_weight: u64,
    /// Compiled flat arenas, seeded from the publishing KB's
    /// current-epoch cache and extended on demand.
    flat: Mutex<FxHashMap<CompId, Arc<FlatView>>>,
    /// Memoised least models, seeded from the publishing KB's
    /// current-epoch cache and extended on first read.
    models: Mutex<FxHashMap<CompId, Arc<Interpretation>>>,
    /// Per-component semantic profiles frozen at this epoch (only the
    /// ones the publishing KB had warm — see [`crate::Kb::warm_profiles`]).
    /// Never recomputed snapshot-side; an absent entry just means no
    /// fast path and no `stats` profile line for that component.
    profiles: FxHashMap<CompId, Arc<ComponentProfile>>,
}

impl KbSnapshot {
    /// Assembles a snapshot from a KB's shared parts (crate-internal;
    /// use [`crate::Kb::snapshot`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        world: Arc<World>,
        prog: Arc<olp_core::OrderedProgram>,
        ground: Arc<GroundProgram>,
        epoch: u64,
        threads: usize,
        morsel_weight: u64,
        flat: FxHashMap<CompId, Arc<FlatView>>,
        models: FxHashMap<CompId, Arc<Interpretation>>,
        profiles: FxHashMap<CompId, Arc<ComponentProfile>>,
    ) -> Self {
        Self {
            world,
            prog,
            ground,
            epoch,
            threads,
            morsel_weight,
            flat: Mutex::new(flat),
            models: Mutex::new(models),
            profiles,
        }
    }

    /// The frozen semantic profile of `object`'s component, when the
    /// publishing KB had one warm at this epoch.
    pub fn profile(&self, object: &str) -> Result<Option<&ComponentProfile>, KbError> {
        let c = self.comp(object)?;
        Ok(self.profiles.get(&c).map(Arc::as_ref))
    }

    /// Every frozen profile, `(object name, profile)` in declaration
    /// order — what the server's `stats` response renders.
    pub fn profiles(&self) -> Vec<(&str, &ComponentProfile)> {
        let mut out: Vec<(CompId, &Arc<ComponentProfile>)> =
            self.profiles.iter().map(|(c, p)| (*c, p)).collect();
        out.sort_unstable_by_key(|(c, _)| c.0);
        out.into_iter()
            .map(|(c, p)| {
                (
                    self.world.syms.name(self.prog.components[c.index()].name),
                    p.as_ref(),
                )
            })
            .collect()
    }

    /// The mutation epoch this snapshot was frozen at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Query options with this snapshot's default thread count and
    /// morsel weight (inherited from the publishing KB).
    pub fn default_opts(&self) -> QueryOptions {
        QueryOptions::new()
            .threads(self.threads)
            .morsel_weight(self.morsel_weight)
    }

    /// The names of all objects, in declaration order.
    pub fn objects(&self) -> Vec<&str> {
        self.prog
            .components
            .iter()
            .map(|c| self.world.syms.name(c.name))
            .collect()
    }

    /// Read-only world access.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Total number of source rules across all objects.
    pub fn n_rules(&self) -> usize {
        self.prog.components.iter().map(|c| c.rules.len()).sum()
    }

    /// The underlying ground program.
    pub fn ground_program(&self) -> &GroundProgram {
        &self.ground
    }

    /// Renders an interpretation against this snapshot's symbol table.
    pub fn render(&self, i: &Interpretation) -> String {
        i.render(&self.world)
    }

    /// Renders a packed ground literal.
    pub fn render_glit(&self, l: GLit) -> String {
        self.world.glit_str(l)
    }

    fn comp(&self, object: &str) -> Result<CompId, KbError> {
        let sym = self
            .world
            .syms
            .get(object)
            .ok_or_else(|| KbError::UnknownObject(object.to_string()))?;
        self.prog
            .component_by_name(sym)
            .ok_or_else(|| KbError::UnknownObject(object.to_string()))
    }

    /// The compiled flat arena for `c`, built at most once per snapshot
    /// (racing readers may both build; the insert is idempotent because
    /// construction is deterministic).
    fn flat(&self, c: CompId) -> Arc<FlatView> {
        if let Some(fv) = self.flat.lock().expect("flat cache poisoned").get(&c) {
            return fv.clone();
        }
        let fv = Arc::new(FlatView::new(&self.ground, c));
        self.flat
            .lock()
            .expect("flat cache poisoned")
            .entry(c)
            .or_insert(fv)
            .clone()
    }

    /// The least model of component `c` under `opts`, memoised on
    /// completion. Mirrors [`crate::Kb::model_with`]'s fresh-computation
    /// paths; every engine returns identical answers, so which one runs
    /// is invisible in the result.
    fn model_eval(&self, c: CompId, opts: &QueryOptions) -> Eval<Arc<Interpretation>> {
        if let Some(m) = self.models.lock().expect("model cache poisoned").get(&c) {
            return Eval::Complete(m.clone());
        }
        let eval = if !opts.decomp {
            least_model_monolithic_budgeted(&View::new(&self.ground, c), &opts.budget())
        } else {
            let fv = self.flat(c);
            let cfg = MorselCfg {
                threads: opts.threads,
                target_weight: opts.morsel_weight.max(1),
                ..MorselCfg::default()
            };
            least_model_morsel(&fv, &cfg, &opts.budget())
        };
        match eval {
            Eval::Complete(m) => {
                let m = Arc::new(m);
                self.models
                    .lock()
                    .expect("model cache poisoned")
                    .entry(c)
                    .or_insert_with(|| m.clone());
                Eval::Complete(m)
            }
            Eval::Interrupted(i) => Eval::Interrupted(olp_core::Interrupted {
                reason: i.reason,
                partial: Arc::new(i.partial),
            }),
        }
    }

    /// The least model of the program in `object` under `opts`. Partial
    /// results are sound under-approximations, exactly as in
    /// [`crate::Kb::model_with`].
    pub fn model_with(
        &self,
        object: &str,
        opts: &QueryOptions,
    ) -> Result<Eval<Arc<Interpretation>>, KbError> {
        let c = self.comp(object)?;
        Ok(self.model_eval(c, opts))
    }

    /// Truth of a ground literal in `object`'s least model under
    /// `opts`. Byte-identical to [`crate::Kb::truth_with`] at the same
    /// epoch: an atom unknown to this snapshot's world is `Undefined`,
    /// which is also what the interning path answers for a fresh,
    /// never-derivable atom.
    pub fn truth_with(
        &self,
        object: &str,
        query: &str,
        opts: &QueryOptions,
    ) -> Result<Eval<Truth>, KbError> {
        let c = self.comp(object)?;
        let lit = self.resolve_ground(query)?;
        Ok(self.model_eval(c, opts).map(|m| match lit {
            None => Truth::Undefined,
            Some(l) => {
                if m.holds(l) {
                    Truth::True
                } else if m.holds(l.complement()) {
                    Truth::False
                } else {
                    Truth::Undefined
                }
            }
        }))
    }

    /// Answers a (possibly non-ground) query pattern against `object`'s
    /// least model under `opts`, rendered `var=term` in first-occurrence
    /// order and sorted — byte-identical to [`crate::Kb::query_with`] at
    /// the same epoch. A ground pattern yields one empty binding when it
    /// holds.
    pub fn query_with(
        &self,
        object: &str,
        pattern: &str,
        opts: &QueryOptions,
    ) -> Result<Eval<Vec<String>>, KbError> {
        let mut scratch = World::new();
        let lit = parse_literal(&mut scratch, pattern).map_err(KbError::Parse)?;
        let c = self.comp(object)?;
        Ok(self
            .model_eval(c, opts)
            .map(|m| self.enumerate_bindings(&scratch, &lit, &m)))
    }

    /// The stable models of the program in `object` under `opts`
    /// (including `max_models`). Engine choice mirrors
    /// [`crate::Kb::stable_with`] minus the mutable per-group memo.
    pub fn stable_with(
        &self,
        object: &str,
        opts: &QueryOptions,
    ) -> Result<Eval<Vec<Interpretation>>, KbError> {
        let c = self.comp(object)?;
        // Profile fast path, mirroring [`crate::Kb::stable_with`]: a
        // frozen profile proving the view single-model collapses stable
        // enumeration to the least model.
        if opts.decomp
            && opts.max_models.is_none_or(|cap| cap >= 2)
            && self.profiles.get(&c).is_some_and(|p| p.single_model)
        {
            return Ok(match self.model_eval(c, opts) {
                Eval::Complete(m) => Eval::Complete(vec![m.as_ref().clone()]),
                Eval::Interrupted(i) => Eval::Interrupted(Interrupted {
                    reason: i.reason,
                    partial: Vec::new(),
                }),
            });
        }
        Ok(if !opts.decomp {
            stable_models_monolithic_budgeted(
                &View::new(&self.ground, c),
                self.ground.n_atoms,
                &opts.budget(),
                opts.max_models,
            )
        } else if opts.threads > 1 {
            stable_models_parallel_budgeted(
                &View::new(&self.ground, c),
                self.ground.n_atoms,
                opts.threads,
                &opts.budget(),
                opts.max_models,
            )
        } else {
            stable_models_decomposed_budgeted(
                &View::new(&self.ground, c),
                self.ground.n_atoms,
                &opts.budget(),
                opts.max_models,
            )
        })
    }

    /// The skeptical consequences in `object` (true in every stable
    /// model) under `opts`. Same over-approximation caveat on partial
    /// results as [`crate::Kb::skeptical_with`].
    pub fn skeptical_with(
        &self,
        object: &str,
        opts: &QueryOptions,
    ) -> Result<Eval<Interpretation>, KbError> {
        let c = self.comp(object)?;
        if opts.decomp && self.profiles.get(&c).is_some_and(|p| p.single_model) {
            // One stable model: the skeptical consequences are the
            // least model (partial results under-approximate here).
            return Ok(self.model_eval(c, opts).map(|m| m.as_ref().clone()));
        }
        Ok(skeptical_consequences_budgeted(
            &View::new(&self.ground, c),
            self.ground.n_atoms,
            &opts.budget(),
        ))
    }

    /// The credulous consequences in `object` (true in some stable
    /// model) under `opts`, as a sorted literal list.
    pub fn credulous_with(
        &self,
        object: &str,
        opts: &QueryOptions,
    ) -> Result<Eval<Vec<GLit>>, KbError> {
        let c = self.comp(object)?;
        Ok(credulous_consequences_budgeted(
            &View::new(&self.ground, c),
            self.ground.n_atoms,
            &opts.budget(),
        ))
    }

    /// Explains why `query` holds (a proof tree) or does not (the fate
    /// of every candidate rule) in `object`, under `opts` for the model
    /// computation. An atom never materialised at this epoch gets a
    /// one-line "unknown" explanation instead of a rule-by-rule fate.
    pub fn explain_with(
        &self,
        object: &str,
        query: &str,
        opts: &QueryOptions,
    ) -> Result<Eval<String>, KbError> {
        let c = self.comp(object)?;
        let Some(lit) = self.resolve_ground(query)? else {
            return Ok(Eval::Complete(format!(
                "{query}: unknown at epoch {} (no rule mentions this atom)",
                self.epoch
            )));
        };
        Ok(self.model_eval(c, opts).map(|m| {
            let view = View::new(&self.ground, c);
            let why = olp_semantics::explain_in(&view, &m, lit);
            olp_semantics::render_why(&self.world, &view, &why)
        }))
    }

    /// Resolves a ground query literal against the frozen world without
    /// interning: `Ok(None)` means some symbol, term, or the atom itself
    /// was never materialised at this epoch (hence trivially
    /// underivable).
    fn resolve_ground(&self, query: &str) -> Result<Option<GLit>, KbError> {
        let mut scratch = World::new();
        let slit = parse_ground_literal(&mut scratch, query)
            .map_err(|_| KbError::NonGroundQuery(query.to_string()))?;
        let satom = scratch.atoms.get(slit.atom());
        let info = scratch.preds.info(satom.pred);
        let Some(sym) = self.world.syms.get(scratch.syms.name(info.name)) else {
            return Ok(None);
        };
        let Some(pred) = self.world.preds.get(sym, info.arity) else {
            return Ok(None);
        };
        let mut args = Vec::with_capacity(satom.args.len());
        for &a in satom.args.iter() {
            match translate_term(&scratch, &self.world, a) {
                Some(t) => args.push(t),
                None => return Ok(None),
            }
        }
        Ok(self
            .world
            .atoms
            .get_id(pred, &args)
            .map(|atom| GLit::new(slit.sign(), atom)))
    }

    /// Every binding of `lit`'s variables whose instance is true in
    /// `m`, rendered `var=term` and sorted. The pattern lives in
    /// `scratch`; matching compares constants and functors **by name**
    /// against the frozen world, which agrees with
    /// [`crate::Kb`]'s id-based matching because interning is
    /// injective on names.
    fn enumerate_bindings(
        &self,
        scratch: &World,
        lit: &Literal,
        m: &Interpretation,
    ) -> Vec<String> {
        let mut vars = Vec::new();
        lit.collect_vars(&mut vars);
        let info = scratch.preds.info(lit.pred);
        let pred = match self
            .world
            .syms
            .get(scratch.syms.name(info.name))
            .and_then(|s| self.world.preds.get(s, info.arity))
        {
            Some(p) => p,
            // Unknown predicate: no materialised instances, no bindings
            // (the interning path reaches the same conclusion through an
            // empty `of_pred`).
            None => return Vec::new(),
        };
        let mut out = Vec::new();
        for &atom in self.world.atoms.of_pred(pred) {
            if !m.holds(GLit::new(lit.sign, atom)) {
                continue;
            }
            let args = &self.world.atoms.get(atom).args;
            let mut b: Vec<(Sym, GTermId)> = Vec::new();
            let matched = lit
                .args
                .iter()
                .zip(args.iter())
                .all(|(pat, &g)| match_pat(scratch, &self.world, pat, g, &mut b));
            if matched {
                let binding: Vec<String> = vars
                    .iter()
                    .map(|v| {
                        let g = b
                            .iter()
                            .find(|(s, _)| s == v)
                            .expect("collected var is bound by a full match")
                            .1;
                        format!("{}={}", scratch.syms.name(*v), self.world.term_str(g))
                    })
                    .collect();
                out.push(binding.join(", "));
            }
        }
        out.sort();
        out
    }
}

/// Translates a ground term interned in `scratch` into `real`'s term
/// store by structural read-only lookup; `None` if any sub-term was
/// never materialised there.
fn translate_term(scratch: &World, real: &World, t: GTermId) -> Option<GTermId> {
    match scratch.terms.get(t) {
        GTerm::Const(s) => {
            let rs = real.syms.get(scratch.syms.name(*s))?;
            real.terms.lookup(&GTerm::Const(rs))
        }
        GTerm::Int(i) => real.terms.lookup(&GTerm::Int(*i)),
        GTerm::Func(f, args) => {
            let rf = real.syms.get(scratch.syms.name(*f))?;
            let rargs: Option<Vec<GTermId>> = args
                .iter()
                .map(|&a| translate_term(scratch, real, a))
                .collect();
            real.terms.lookup(&GTerm::Func(rf, rargs?.into()))
        }
    }
}

/// Matches a (scratch-world) pattern term against a (frozen-world)
/// ground term, threading variable bindings; name-based comparison for
/// constants and functors.
fn match_pat(
    scratch: &World,
    real: &World,
    pat: &Term,
    g: GTermId,
    b: &mut Vec<(Sym, GTermId)>,
) -> bool {
    match pat {
        Term::Var(v) => {
            if let Some(&(_, bound)) = b.iter().find(|(s, _)| s == v) {
                bound == g
            } else {
                b.push((*v, g));
                true
            }
        }
        Term::Const(c) => matches!(
            real.terms.get(g),
            GTerm::Const(rc) if real.syms.name(*rc) == scratch.syms.name(*c)
        ),
        Term::Int(i) => matches!(real.terms.get(g), GTerm::Int(ri) if ri == i),
        Term::App(f, pargs) => match real.terms.get(g) {
            GTerm::Func(rf, rargs)
                if real.syms.name(*rf) == scratch.syms.name(*f) && rargs.len() == pargs.len() =>
            {
                pargs
                    .iter()
                    .zip(rargs.iter())
                    .all(|(p, &rg)| match_pat(scratch, real, p, rg, b))
            }
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use crate::kb::{GroundStrategy, KbBuilder, QueryOptions};
    use olp_core::Truth;

    fn penguin_kb() -> crate::Kb {
        let mut b = KbBuilder::new();
        b.rules(
            "bird",
            "bird(penguin). bird(pigeon).
             fly(X) :- bird(X).
             -ground_animal(X) :- bird(X).",
        )
        .unwrap();
        b.isa("penguin_view", "bird");
        b.rules(
            "penguin_view",
            "ground_animal(penguin).
             -fly(X) :- ground_animal(X).",
        )
        .unwrap();
        b.build(GroundStrategy::Smart).unwrap()
    }

    #[test]
    fn snapshot_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::KbSnapshot>();
    }

    #[test]
    fn snapshot_answers_match_kb() {
        let mut kb = penguin_kb();
        let snap = kb.snapshot();
        let opts = QueryOptions::new().threads(1);
        assert_eq!(snap.epoch(), 0);
        assert_eq!(
            snap.truth_with("penguin_view", "fly(penguin)", &opts)
                .unwrap()
                .into_value(),
            Truth::False
        );
        assert_eq!(
            snap.query_with("penguin_view", "fly(X)", &opts)
                .unwrap()
                .into_value(),
            kb.query("penguin_view", "fly(X)").unwrap()
        );
        // Ground pattern round-trips the empty-binding convention.
        assert_eq!(
            snap.query_with("penguin_view", "fly(pigeon)", &opts)
                .unwrap()
                .into_value(),
            vec![""]
        );
        // Unknown atoms and predicates answer exactly like the
        // interning path.
        assert_eq!(
            snap.truth_with("bird", "fly(dodo)", &opts)
                .unwrap()
                .into_value(),
            Truth::Undefined
        );
        assert!(snap
            .query_with("bird", "swims(X)", &opts)
            .unwrap()
            .into_value()
            .is_empty());
    }

    #[test]
    fn snapshot_is_isolated_from_later_mutations() {
        let mut kb = penguin_kb();
        let before = kb.snapshot();
        kb.assert_rule("bird", "bird(sparrow).").unwrap();
        let after = kb.snapshot();
        let opts = QueryOptions::new().threads(1);
        assert_eq!(before.epoch(), 0);
        assert_eq!(after.epoch(), 1);
        // The old snapshot still answers at epoch 0: sparrow unknown.
        assert_eq!(
            before
                .truth_with("penguin_view", "fly(sparrow)", &opts)
                .unwrap()
                .into_value(),
            Truth::Undefined
        );
        assert_eq!(
            after
                .truth_with("penguin_view", "fly(sparrow)", &opts)
                .unwrap()
                .into_value(),
            Truth::True
        );
        // And the live KB agrees with the new snapshot.
        assert_eq!(
            kb.truth("penguin_view", "fly(sparrow)").unwrap(),
            Truth::True
        );
    }

    #[test]
    fn concurrent_readers_share_one_snapshot() {
        let kb = penguin_kb();
        let snap = kb.snapshot();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let snap = &snap;
                s.spawn(move || {
                    let opts = QueryOptions::new().threads(1);
                    for _ in 0..25 {
                        assert_eq!(
                            snap.truth_with("penguin_view", "fly(penguin)", &opts)
                                .unwrap()
                                .into_value(),
                            Truth::False
                        );
                        assert_eq!(
                            snap.query_with("bird", "fly(X)", &opts)
                                .unwrap()
                                .into_value(),
                            vec!["X=penguin", "X=pigeon"]
                        );
                    }
                });
            }
        });
    }
}
