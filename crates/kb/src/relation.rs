//! EDB relations.
//!
//! The paper's Example 6 defines `parent` "through a database relation"
//! — ordered logic programming is pitched as a knowledge-base language
//! over extensional data. [`Relation`] is a minimal in-memory relation:
//! fixed arity, interned-term tuples, hash index on the first column
//! (the access path the recursive examples use), and a loader that
//! turns tuples into component facts.

use olp_core::{FxHashMap, GTermId, World};
use std::fmt;

/// Error raised on arity mismatch when inserting a tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArityMismatch {
    /// The relation's declared arity.
    pub expected: u32,
    /// The offending tuple length.
    pub got: usize,
}

impl fmt::Display for ArityMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tuple arity {} does not match relation arity {}",
            self.got, self.expected
        )
    }
}

impl std::error::Error for ArityMismatch {}

/// An in-memory extensional relation.
#[derive(Debug, Clone)]
pub struct Relation {
    /// Relation (predicate) name.
    pub name: String,
    /// Number of columns.
    pub arity: u32,
    tuples: Vec<Box<[GTermId]>>,
    /// Hash index on the first column (empty for 0-ary relations).
    index_first: FxHashMap<GTermId, Vec<u32>>,
}

impl Relation {
    /// Creates an empty relation.
    pub fn new(name: impl Into<String>, arity: u32) -> Self {
        Relation {
            name: name.into(),
            arity,
            tuples: Vec::new(),
            index_first: FxHashMap::default(),
        }
    }

    /// Inserts a tuple of interned terms.
    pub fn insert(&mut self, tuple: &[GTermId]) -> Result<(), ArityMismatch> {
        if tuple.len() != self.arity as usize {
            return Err(ArityMismatch {
                expected: self.arity,
                got: tuple.len(),
            });
        }
        let id = self.tuples.len() as u32;
        self.tuples.push(tuple.into());
        if let Some(&first) = tuple.first() {
            self.index_first.entry(first).or_default().push(id);
        }
        Ok(())
    }

    /// Convenience: interns constants by name and inserts.
    pub fn insert_consts(
        &mut self,
        world: &mut World,
        names: &[&str],
    ) -> Result<(), ArityMismatch> {
        let tuple: Vec<GTermId> = names.iter().map(|n| world.constant(n)).collect();
        self.insert(&tuple)
    }

    /// Convenience: interns integers and inserts.
    pub fn insert_ints(&mut self, world: &mut World, values: &[i64]) -> Result<(), ArityMismatch> {
        let tuple: Vec<GTermId> = values.iter().map(|&v| world.int(v)).collect();
        self.insert(&tuple)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Full scan.
    pub fn scan(&self) -> impl Iterator<Item = &[GTermId]> {
        self.tuples.iter().map(AsRef::as_ref)
    }

    /// Index lookup: tuples whose first column equals `key`.
    pub fn lookup_first(&self, key: GTermId) -> impl Iterator<Item = &[GTermId]> {
        self.index_first
            .get(&key)
            .into_iter()
            .flatten()
            .map(move |&i| self.tuples[i as usize].as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_scan_lookup() {
        let mut w = World::new();
        let mut r = Relation::new("parent", 2);
        r.insert_consts(&mut w, &["a", "b"]).unwrap();
        r.insert_consts(&mut w, &["a", "c"]).unwrap();
        r.insert_consts(&mut w, &["b", "d"]).unwrap();
        assert_eq!(r.len(), 3);
        let a = w.constant("a");
        assert_eq!(r.lookup_first(a).count(), 2);
        let d = w.constant("d");
        assert_eq!(r.lookup_first(d).count(), 0);
        assert_eq!(r.scan().count(), 3);
    }

    #[test]
    fn arity_checked() {
        let mut w = World::new();
        let mut r = Relation::new("p", 2);
        let a = w.constant("a");
        assert_eq!(
            r.insert(&[a]),
            Err(ArityMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn int_columns() {
        let mut w = World::new();
        let mut r = Relation::new("rate", 1);
        r.insert_ints(&mut w, &[16]).unwrap();
        assert_eq!(w.terms.as_int(r.scan().next().unwrap()[0]), Some(16));
    }
}
