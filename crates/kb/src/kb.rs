//! The knowledge base: objects, isa-inheritance, queries.
//!
//! This is the paper's §1/§5 pitch made concrete: modules are
//! **objects**; the `<` order is an **isa** hierarchy providing rule
//! inheritance; local rules *overrule* inherited ones (defaults and
//! exceptions); a more specific object can be read as a new **version**
//! of a more general one. [`KbBuilder`] assembles objects, rules and
//! extensional relations; [`Kb`] grounds once and answers truth queries
//! per object against cached least models, with stable-model queries
//! for the choice-style programs.

use crate::relation::Relation;
use olp_analyze::{analyze, ComponentProfile, Diagnostic, Severity, StratClass};
use olp_core::{
    Budget, CompId, Eval, FxHashMap, FxHashSet, Interpretation, Interrupted, Literal, Rule, Term,
    Truth, World,
};
use olp_ground::{
    ground_exhaustive, ground_smart, DeltaGrounder, DeltaRuleId, FlatPatch, FlatView, GroundConfig,
    GroundDelta, GroundError, GroundProgram, GroundRule, ProgramStats,
};
use olp_parser::{parse_ground_literal, parse_program, parse_rule, ParseError};
use olp_semantics::{
    least_model_delta_flat, least_model_flat, least_model_flat_definite,
    least_model_monolithic_budgeted, least_model_morsel, stable_models_decomposed_cached,
    stable_models_monolithic_budgeted, stable_models_parallel_budgeted, MorselCfg, View,
};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Worker threads to use when none are configured explicitly: the
/// `OLP_THREADS` environment variable when set to a positive integer,
/// else the machine's available parallelism. Every engine produces the
/// same answers at any thread count (see `olp_semantics` /
/// `olp_ground`); this only picks how wide evaluation runs by default.
pub fn default_threads() -> usize {
    std::env::var("OLP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Target morsel weight for the parallel fixpoint when none is
/// configured explicitly: the `OLP_MORSEL` environment variable when
/// set to a positive integer, else the engine default
/// ([`MorselCfg::default`]). Purely a scheduling knob — results are
/// identical at every value.
pub fn default_morsel_weight() -> u64 {
    std::env::var("OLP_MORSEL")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(MorselCfg::default().target_weight)
}

/// Per-object cap on memoised stable-model group entries; exceeding it
/// clears that object's cache (simple, bounded, and mutation-friendly:
/// keys are group rule sets, so entries for unchanged groups re-fill on
/// the next query).
const STABLE_CACHE_CAP: usize = 256;

/// Which grounder [`KbBuilder::build`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroundStrategy {
    /// Join-based, relevance-restricted (default; right for KB-scale
    /// data).
    #[default]
    Smart,
    /// Full instantiation (reference; small programs).
    Exhaustive,
}

/// Errors from building or querying a knowledge base.
#[derive(Debug)]
pub enum KbError {
    /// Rule or query text failed to parse.
    Parse(ParseError),
    /// Grounding failed (resource bound or invalid order).
    Ground(GroundError),
    /// An object name was used before being declared.
    UnknownObject(String),
    /// The query literal was not ground.
    NonGroundQuery(String),
    /// Static analysis rejected the program or mutation (the
    /// [`QueryOptions::deny_warnings`] knob, or
    /// [`KbBuilder::build_checked`]). Carries the offending findings;
    /// for mutations, only findings *introduced* by the mutation.
    Rejected(Vec<Diagnostic>),
    /// Durable storage failed (opening, logging, or compacting a
    /// database; see [`crate::DurableKb`]). The underlying
    /// [`olp_store::StoreError`] is available via
    /// [`std::error::Error::source`].
    Store(olp_store::StoreError),
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::Parse(e) => write!(f, "{e}"),
            KbError::Ground(e) => write!(f, "{e}"),
            KbError::UnknownObject(n) => write!(f, "unknown object `{n}`"),
            KbError::NonGroundQuery(q) => write!(f, "query `{q}` is not ground"),
            KbError::Rejected(diags) => {
                write!(
                    f,
                    "rejected by static analysis ({} finding{}):",
                    diags.len(),
                    if diags.len() == 1 { "" } else { "s" }
                )?;
                for d in diags {
                    write!(f, " [{}] {};", d.code, d.message)?;
                }
                Ok(())
            }
            KbError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for KbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KbError::Parse(e) => Some(e),
            KbError::Ground(e) => Some(e),
            KbError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<olp_store::StoreError> for KbError {
    fn from(e: olp_store::StoreError) -> Self {
        KbError::Store(e)
    }
}

impl From<ParseError> for KbError {
    fn from(e: ParseError) -> Self {
        KbError::Parse(e)
    }
}

impl From<GroundError> for KbError {
    fn from(e: GroundError) -> Self {
        KbError::Ground(e)
    }
}

/// Resource limits for a single query. The default is unlimited.
///
/// Budgeted query methods (`model_with`, `truth_with`, `query_with`,
/// `skeptical_with`, `stable_with`) return an [`Eval`]: `Complete` when
/// the computation finished within the limits, `Interrupted` with an
/// *anytime* partial result otherwise (see each method for what the
/// partial result guarantees).
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Absolute wall-clock deadline for the call.
    pub deadline: Option<Instant>,
    /// Cap on engine work units (rule firings / search nodes / ticks).
    pub max_steps: Option<u64>,
    /// Cap on the number of stable models enumerated (stable/skeptical
    /// queries only).
    pub max_models: Option<usize>,
    /// Evaluate component-wise (SCC condensation / independent rule
    /// groups). On by default; [`QueryOptions::no_decomp`] forces the
    /// monolithic engines (escape hatch and differential baseline).
    pub decomp: bool,
    /// Worker threads for query evaluation: the morsel-driven least
    /// model and the parallel stable enumerator. Defaults to
    /// [`default_threads`]; `1` takes the sequential code paths exactly.
    /// Results are identical at every value.
    pub threads: usize,
    /// Target morsel weight for the parallel fixpoint (rules plus
    /// body/attack edges per work-stealing unit). Defaults to
    /// [`default_morsel_weight`]; results are identical at every value.
    pub morsel_weight: u64,
    /// Reject mutations that *introduce* new static-analysis findings
    /// ([`Kb::assert_rule_with`] / [`Kb::retract_rule_with`] return
    /// [`KbError::Rejected`] and leave the KB unchanged). Off by
    /// default: the lint pass only runs when this is set.
    pub deny_warnings: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            deadline: None,
            max_steps: None,
            max_models: None,
            decomp: true,
            threads: default_threads(),
            morsel_weight: default_morsel_weight(),
            deny_warnings: false,
        }
    }
}

impl QueryOptions {
    /// Unlimited options (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the deadline to `timeout` from now.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Sets the step cap.
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = Some(max_steps);
        self
    }

    /// Sets the model cap.
    pub fn max_models(mut self, max_models: usize) -> Self {
        self.max_models = Some(max_models);
        self
    }

    /// Disables component-wise evaluation for this query (runs the
    /// monolithic fixpoint / enumeration engines instead).
    pub fn no_decomp(mut self) -> Self {
        self.decomp = false;
        self
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the target morsel weight for parallel evaluation (clamped
    /// to at least 1).
    pub fn morsel_weight(mut self, weight: u64) -> Self {
        self.morsel_weight = weight.max(1);
        self
    }

    /// Makes mutations reject programs that would introduce new
    /// static-analysis findings (see [`QueryOptions::deny_warnings`]).
    pub fn deny_warnings(mut self) -> Self {
        self.deny_warnings = true;
        self
    }

    /// The [`Budget`] these options describe (a fresh one per call —
    /// step counts do not carry over between queries).
    pub fn budget(&self) -> Budget {
        Budget::limited(self.max_steps, self.deadline)
    }
}

/// Builder for a knowledge base.
#[derive(Debug, Default)]
pub struct KbBuilder {
    world: World,
    prog: olp_core::OrderedProgram,
}

impl KbBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares (or reopens) an object.
    pub fn object(&mut self, name: &str) -> CompId {
        let sym = self.world.syms.intern(name);
        self.prog
            .component_by_name(sym)
            .unwrap_or_else(|| self.prog.add_component(sym))
    }

    /// Declares `child isa parent` (child inherits parent's rules and
    /// may overrule them). Creates either object on demand.
    pub fn isa(&mut self, child: &str, parent: &str) -> &mut Self {
        let c = self.object(child);
        let p = self.object(parent);
        self.prog.add_edge(c, p);
        self
    }

    /// Declares `name` as a new **version** of `base`: same isa
    /// machinery, different reading — local redefinitions shadow the
    /// base object's rules (§5).
    pub fn version_of(&mut self, name: &str, base: &str) -> &mut Self {
        self.isa(name, base)
    }

    /// Adds one rule (surface syntax, e.g. `"fly(X) :- bird(X)."`) to
    /// an object.
    pub fn rule(&mut self, object: &str, src: &str) -> Result<&mut Self, KbError> {
        let c = self.object(object);
        let r = parse_rule(&mut self.world, src)?;
        self.prog.add_rule(c, r);
        Ok(self)
    }

    /// Adds a block of rules (surface syntax, plain `.`-separated
    /// rules) to an object.
    pub fn rules(&mut self, object: &str, src: &str) -> Result<&mut Self, KbError> {
        let c = self.object(object);
        let parsed = parse_program(&mut self.world, src)?;
        for comp in parsed.components {
            for r in comp.rules {
                self.prog.add_rule(c, r.clone());
            }
        }
        Ok(self)
    }

    /// Loads every tuple of `rel` into `object` as facts
    /// `rel.name(t1,…,tn).`.
    pub fn load_relation(&mut self, object: &str, rel: &Relation) -> &mut Self {
        let c = self.object(object);
        let pred = self.world.pred(&rel.name, rel.arity);
        for tuple in rel.scan() {
            // Facts over already-interned ground terms: wrap each id in
            // a constant-like Term by rendering is wasteful; instead we
            // keep the ground id via a synthetic rule built directly.
            let args: Vec<Term> = tuple
                .iter()
                .map(|&t| ground_term_to_term(&self.world, t))
                .collect();
            self.prog.add_rule(c, Rule::fact(Literal::pos(pred, args)));
        }
        self
    }

    /// Direct access to the world (e.g. to intern relation terms).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Grounds the program and returns a queryable [`Kb`].
    pub fn build(self, strategy: GroundStrategy) -> Result<Kb, KbError> {
        self.build_with(strategy, &GroundConfig::default())
    }

    /// Wraps an already-parsed world + program (e.g. a file parsed with
    /// [`olp_parser::parse_program`]) so it can be built into a [`Kb`].
    pub fn from_parts(world: World, prog: olp_core::OrderedProgram) -> Self {
        Self { world, prog }
    }

    /// [`KbBuilder::build`], but runs the `olp_analyze` lint pass first
    /// and refuses ([`KbError::Rejected`]) if *any* finding fires —
    /// warnings included. The strict entry point for loading programs
    /// that are expected to be lint-clean.
    pub fn build_checked(self, strategy: GroundStrategy) -> Result<Kb, KbError> {
        // Info-severity findings (profile notes like W09/W10) never
        // gate: only warnings and errors reject the build.
        let diags: Vec<Diagnostic> = analyze(&self.world, &self.prog)
            .into_iter()
            .filter(|d| d.severity >= Severity::Warn)
            .collect();
        if !diags.is_empty() {
            return Err(KbError::Rejected(diags));
        }
        self.build(strategy)
    }

    /// [`KbBuilder::build`] with explicit grounding bounds.
    pub fn build_with(
        mut self,
        strategy: GroundStrategy,
        cfg: &GroundConfig,
    ) -> Result<Kb, KbError> {
        let (ground, delta, delta_ids) = match strategy {
            GroundStrategy::Smart => {
                let (delta, gp) = DeltaGrounder::new(&mut self.world, &self.prog, cfg)?;
                let ids = sequential_ids(&self.prog);
                (gp, Some(delta), ids)
            }
            GroundStrategy::Exhaustive => (
                ground_exhaustive(&mut self.world, &self.prog, cfg)?,
                None,
                Vec::new(),
            ),
        };
        let n_comps = self.prog.components.len();
        Ok(Kb {
            world: Arc::new(self.world),
            prog: Arc::new(self.prog),
            ground: Arc::new(ground),
            least_cache: FxHashMap::default(),
            flat_cache: FxHashMap::default(),
            stable_cache: FxHashMap::default(),
            stable_results: FxHashMap::default(),
            strategy,
            cfg: cfg.clone(),
            delta,
            delta_ids,
            incremental: strategy == GroundStrategy::Smart,
            epoch: 0,
            touched_log: Vec::new(),
            view_version: vec![0; n_comps],
            ast_version: vec![0; n_comps],
            threads: default_threads(),
            morsel_weight: default_morsel_weight(),
            profiles: FxHashMap::default(),
            profile_guided: true,
        })
    }
}

/// The findings in `after` that are not already in `before`, as a
/// multiset difference keyed on `(code, message)` — rule indices shift
/// under mutation, but the rendered message pins down the finding.
fn findings_introduced(after: Vec<Diagnostic>, before: &[Diagnostic]) -> Vec<Diagnostic> {
    let mut seen: FxHashMap<(olp_analyze::Code, String), usize> = FxHashMap::default();
    for d in before {
        *seen.entry((d.code, d.message.clone())).or_insert(0) += 1;
    }
    after
        .into_iter()
        // Info-severity findings (profile notes) never gate mutations.
        .filter(|d| d.severity >= Severity::Warn)
        .filter(|d| match seen.get_mut(&(d.code, d.message.clone())) {
            Some(n) if *n > 0 => {
                *n -= 1;
                false
            }
            _ => true,
        })
        .collect()
}

/// The delta-grounder ids of a freshly grounded program: registration
/// follows `prog.rules()` order, so ids are sequential per component.
fn sequential_ids(prog: &olp_core::OrderedProgram) -> Vec<Vec<DeltaRuleId>> {
    let mut ids: Vec<Vec<DeltaRuleId>> = vec![Vec::new(); prog.components.len()];
    for (next, (c, _)) in (0..).zip(prog.rules()) {
        ids[c.index()].push(next);
    }
    ids
}

/// Converts an interned ground term back to a syntax [`Term`] (used
/// when loading relations as facts).
fn ground_term_to_term(world: &World, t: olp_core::GTermId) -> Term {
    use olp_core::GTerm;
    match world.terms.get(t) {
        GTerm::Const(s) => Term::Const(*s),
        GTerm::Int(i) => Term::Int(*i),
        GTerm::Func(f, args) => Term::App(
            *f,
            args.iter()
                .map(|&a| ground_term_to_term(world, a))
                .collect(),
        ),
    }
}

/// A least model cached at the knowledge-base epoch it was computed in.
/// A stale entry (older epoch) is never served directly; it is first
/// revalidated. Revalidation is O(1) when no mutation since the entry
/// was cached changed a rule visible from the component (the per-view
/// version counter did not move — a view's least model depends only on
/// the view's rules); otherwise [`least_model_delta_flat`] recomputes
/// only the strata downstream of the atoms touched since. The model is
/// held behind an [`Arc`] so publishing it into a [`crate::KbSnapshot`]
/// is free.
#[derive(Debug)]
struct CachedModel {
    model: Arc<Interpretation>,
    epoch: u64,
    /// The component's view version this model was computed against
    /// (see [`Kb::view_version`]).
    view_version: u64,
}

/// A ground, queryable knowledge base.
///
/// Mutations ([`Kb::assert_rule`] / [`Kb::retract_rule`]) are
/// **incremental** by default under [`GroundStrategy::Smart`]: a
/// [`DeltaGrounder`] re-grounds only the affected instantiations, model
/// caches are kept and revalidated per stratum instead of being thrown
/// away, and stable-model results for untouched independent rule groups
/// are reused from a per-object memo. [`Kb::set_incremental`] toggles
/// the behaviour (off = the original full re-ground on every mutation,
/// also the differential baseline the fuzz suite compares against).
#[derive(Debug)]
pub struct Kb {
    /// Interners, ordered program, and its grounding are shared
    /// copy-on-write: [`Kb::snapshot`] hands the same `Arc`s to a frozen
    /// [`crate::KbSnapshot`] in O(1), and a later mutation clones only
    /// while a snapshot is still alive ([`Arc::make_mut`]). Library use
    /// without snapshots never pays a clone.
    world: Arc<World>,
    prog: Arc<olp_core::OrderedProgram>,
    ground: Arc<GroundProgram>,
    least_cache: FxHashMap<CompId, CachedModel>,
    /// Compiled flat arenas per component, maintained **across
    /// mutations**: [`Kb::commit`] diffs the old and new ground
    /// programs ([`GroundDelta`]) and, per cached component, keeps the
    /// arena untouched (no visible change), splices the changed rules
    /// in place ([`FlatView::apply_delta`]), or drops the entry for a
    /// lazy rebuild when the patch would change the SCC condensation.
    /// Rebuilding the arena from scratch was the dominant cost of the
    /// mutation path (ROADMAP 3c); patching keeps it linear in the
    /// component's rules rather than in Tarjan + rank-sort work.
    flat_cache: FxHashMap<CompId, Arc<FlatView>>,
    /// Per object: memoised stable enumerations keyed by independent
    /// rule-group contents (see [`stable_models_decomposed_cached`]).
    stable_cache: FxHashMap<CompId, FxHashMap<Vec<GroundRule>, Vec<Interpretation>>>,
    /// Per object: the last **complete, uncapped** stable enumeration,
    /// keyed by the view version it was computed at. Serves repeat
    /// `stable()` calls in O(1) when no visible rule changed (the group
    /// memo above still softens recomputation when one did).
    stable_results: FxHashMap<CompId, (u64, Vec<Interpretation>)>,
    strategy: GroundStrategy,
    cfg: GroundConfig,
    /// Persistent incremental grounder (Smart strategy only). `None`
    /// after a full refresh or an incremental failure; rebuilt lazily by
    /// the next incremental mutation.
    delta: Option<DeltaGrounder>,
    /// `delta_ids[c][i]` is the grounder id of `prog.components[c].rules[i]`
    /// (kept aligned with `prog`; empty while `delta` is `None`).
    delta_ids: Vec<Vec<DeltaRuleId>>,
    incremental: bool,
    /// Bumped once per applied mutation; cache entries carry the epoch
    /// they were computed in.
    epoch: u64,
    /// `touched_log[e]` = dense atom indices touched by the mutation
    /// that advanced epoch `e` to `e+1` (heads and bodies of all ground
    /// instances added or removed).
    touched_log: Vec<Vec<usize>>,
    /// `view_version[c]` counts the mutations that changed a ground
    /// instance **visible from** component `c` (bumped by
    /// [`Kb::commit`] using the exact rule diff). A cache entry tagged
    /// with the current version is exact regardless of the global
    /// epoch, which is what makes revalidation O(1) for bystander
    /// components.
    view_version: Vec<u64>,
    /// `ast_version[c]` counts the **rule-text** mutations visible from
    /// component `c`'s view: every successful assert/retract on a
    /// component `d` bumps the version of each `c` with `order.leq(c,
    /// d)`. This is deliberately coarser than `view_version` (which
    /// tracks the *ground* diff): an asserted rule that grounds to
    /// nothing still changes the AST view, and the semantic profile is
    /// a function of the AST view — keying the profile cache on the
    /// ground version would leave it stale exactly there.
    ast_version: Vec<u64>,
    /// Worker threads for **unbudgeted** query evaluation ([`Kb::model`]
    /// and friends; budgeted calls take [`QueryOptions::threads`]).
    /// Initialised to [`default_threads`]; results are identical at
    /// every value.
    threads: usize,
    /// Target morsel weight for parallel evaluation (see
    /// [`default_morsel_weight`]).
    morsel_weight: u64,
    /// Per-component semantic profiles ([`olp_analyze::profile`]),
    /// keyed by the **AST version** they were computed at. The profile
    /// depends only on the component's AST view and the order, and
    /// every successful rule mutation bumps `ast_version` for each
    /// component whose view contains the mutated one
    /// ([`Kb::note_ast_mutation`]) — so a cached entry whose version
    /// matches is exact, and a bumped one is recomputed from the
    /// current program on next use.
    profiles: FxHashMap<CompId, (u64, Arc<ComponentProfile>)>,
    /// Consult profiles to pick fast evaluation paths (stable/skeptical
    /// collapse to the least model on provably single-model views,
    /// negation-free views skip attack bookkeeping). On by default;
    /// [`Kb::set_profile_guided`] turns it off — the differential
    /// baseline the fast-path proptests compare against.
    profile_guided: bool,
}

impl Kb {
    fn comp(&self, object: &str) -> Result<CompId, KbError> {
        let sym = self
            .world
            .syms
            .get(object)
            .ok_or_else(|| KbError::UnknownObject(object.to_string()))?;
        self.prog
            .component_by_name(sym)
            .ok_or_else(|| KbError::UnknownObject(object.to_string()))
    }

    /// The union of atoms touched by every mutation since epoch
    /// `since`, as sorted dense indices.
    fn touched_since(&self, since: u64) -> Vec<usize> {
        let mut set: FxHashSet<usize> = FxHashSet::default();
        for v in &self.touched_log[since as usize..] {
            set.extend(v.iter().copied());
        }
        let mut out: Vec<usize> = set.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// The compiled flat arena for component `c` at the current epoch,
    /// built at most once per epoch (ROADMAP 3c: flatten construction
    /// dominated evaluation, so rebuilding per recompute was the
    /// per-request cost a server cannot afford). [`Kb::commit`] keeps
    /// the cache warm across mutations — untouched components keep
    /// their arena, touched ones get a spliced patch, and only an
    /// SCC-reshaping change falls back to this lazy rebuild; snapshots
    /// receive the same `Arc`s for free.
    fn flat(&mut self, c: CompId) -> Arc<FlatView> {
        if let Some(fv) = self.flat_cache.get(&c) {
            return fv.clone();
        }
        let fv = Arc::new(FlatView::new(&self.ground, c));
        self.flat_cache.insert(c, fv.clone());
        fv
    }

    /// The current view version of component `c` (see the field doc).
    /// Versions start at 0 for components unknown to the log.
    fn view_version(&self, c: CompId) -> u64 {
        self.view_version.get(c.index()).copied().unwrap_or(0)
    }

    /// The current AST version of component `c` (see the field doc).
    fn ast_version(&self, c: CompId) -> u64 {
        self.ast_version.get(c.index()).copied().unwrap_or(0)
    }

    /// Records a successful rule mutation on `target`: bumps the AST
    /// version of every component whose view contains `target` (i.e.
    /// each `c` with `order.leq(c, target)`), invalidating exactly the
    /// cached profiles the mutation can change. If the order is invalid
    /// (no well-defined views) every version is bumped — profiles are
    /// `None` in that state anyway, so over-invalidation is free.
    fn note_ast_mutation(&mut self, target: CompId) {
        let n = self.prog.components.len();
        if self.ast_version.len() < n {
            self.ast_version.resize(n, 0);
        }
        match self.prog.order() {
            Ok(order) => {
                for ci in 0..n {
                    if order.leq(CompId(ci as u32), target) {
                        self.ast_version[ci] += 1;
                    }
                }
            }
            Err(_) => {
                for v in &mut self.ast_version {
                    *v += 1;
                }
            }
        }
    }

    /// Makes `least_cache[c]` present and current (epoch == now). A
    /// stale entry whose view version did not move is re-tagged in O(1)
    /// (its view's rules are unchanged, so its model is still exact);
    /// otherwise it is revalidated with [`least_model_delta_flat`] over
    /// the maintained arena — recomputing only the strata downstream of
    /// atoms touched since it was cached — instead of from scratch.
    fn ensure_model(&mut self, c: CompId) {
        let vv = self.view_version(c);
        let epoch = self.epoch;
        let stale = match self.least_cache.get_mut(&c) {
            Some(e) if e.epoch == epoch => return,
            Some(e) if e.view_version == vv => {
                e.epoch = epoch;
                return;
            }
            Some(e) => Some(e.epoch),
            None => None,
        };
        let model = match stale {
            Some(since) => {
                let touched = self.touched_since(since);
                let old = self.least_cache[&c].model.clone();
                let fv = self.flat(c);
                least_model_delta_flat(&fv, &old, &touched, &Budget::unlimited())
                    .expect_complete("unlimited delta revalidation always completes")
            }
            // Fresh computations compile the flat arena view directly —
            // no interpretive hash-map view on the hot path.
            None if self.threads > 1 => {
                let mut cfg = self.morsel_cfg(self.threads);
                cfg.assume_definite = self.proved_definite(c);
                let fv = self.flat(c);
                least_model_morsel(&fv, &cfg, &Budget::unlimited())
                    .expect_complete("unlimited evaluation always completes")
            }
            None if self.proved_definite(c) => {
                let fv = self.flat(c);
                least_model_flat_definite(&fv, &Budget::unlimited())
                    .expect_complete("unlimited evaluation always completes")
            }
            None => least_model_flat(&self.flat(c)),
        };
        self.least_cache.insert(
            c,
            CachedModel {
                model: Arc::new(model),
                epoch: self.epoch,
                view_version: vv,
            },
        );
    }

    /// The least model of the program *in* `object`, cached across
    /// queries **and mutations** (stale entries are delta-revalidated,
    /// not recomputed).
    pub fn model(&mut self, object: &str) -> Result<&Interpretation, KbError> {
        let c = self.comp(object)?;
        self.ensure_model(c);
        Ok(self.least_cache[&c].model.as_ref())
    }

    /// [`Kb::model`] under [`QueryOptions`] limits. Only a `Complete`
    /// model is cached; an `Interrupted` result carries the partial
    /// interpretation computed so far, which is a **sound
    /// under-approximation** of the least model (every literal in it is
    /// genuinely derivable). A stale cached model (the KB mutated since
    /// it was computed) is revalidated by stratum-local recomputation
    /// under the same budget; if that is interrupted, the stale entry is
    /// kept (never served) and the partial revalidation is returned.
    pub fn model_with(
        &mut self,
        object: &str,
        opts: &QueryOptions,
    ) -> Result<Eval<Interpretation>, KbError> {
        let c = self.comp(object)?;
        Ok(self.model_eval(c, opts))
    }

    /// [`Kb::model_with`] at component granularity (also the engine
    /// behind the profile-guided stable/skeptical fast paths).
    fn model_eval(&mut self, c: CompId, opts: &QueryOptions) -> Eval<Interpretation> {
        let vv = self.view_version(c);
        let epoch = self.epoch;
        let stale = match self.least_cache.get_mut(&c) {
            Some(e) if e.epoch == epoch => return Eval::Complete(e.model.as_ref().clone()),
            Some(e) if e.view_version == vv => {
                // Mutations happened, but none changed a rule visible
                // from `c`: the cached model is exact at this epoch.
                e.epoch = epoch;
                return Eval::Complete(e.model.as_ref().clone());
            }
            Some(e) => Some(e.epoch),
            None => None,
        };
        if let (Some(since), true) = (stale, opts.decomp) {
            let touched = self.touched_since(since);
            let old = self.least_cache[&c].model.clone();
            let fv = self.flat(c);
            let eval = least_model_delta_flat(&fv, &old, &touched, &opts.budget());
            if let Eval::Complete(m) = &eval {
                let model = Arc::new(m.clone());
                self.least_cache.insert(
                    c,
                    CachedModel {
                        model,
                        epoch: self.epoch,
                        view_version: vv,
                    },
                );
            }
            return eval;
        }
        let eval = if !opts.decomp {
            let view = View::new(&self.ground, c);
            least_model_monolithic_budgeted(&view, &opts.budget())
        } else {
            let mut cfg = self.morsel_cfg(opts.threads);
            cfg.target_weight = opts.morsel_weight.max(1);
            cfg.assume_definite = self.proved_definite(c);
            let fv = self.flat(c);
            // `threads <= 1` (and small programs) run the sequential
            // flat path inside `least_model_morsel` verbatim.
            least_model_morsel(&fv, &cfg, &opts.budget())
        };
        if let Eval::Complete(m) = &eval {
            let model = Arc::new(m.clone());
            self.least_cache.insert(
                c,
                CachedModel {
                    model,
                    epoch: self.epoch,
                    view_version: vv,
                },
            );
        }
        eval
    }

    /// Truth of a ground literal (e.g. `"fly(penguin)"` or
    /// `"-fly(penguin)"`) from `object`'s point of view, under the
    /// least (assumption-free) model. A negative query returns `True`
    /// when the negative literal is derivable.
    pub fn truth(&mut self, object: &str, query: &str) -> Result<Truth, KbError> {
        let lit = parse_ground_literal(Arc::make_mut(&mut self.world), query)
            .map_err(|_| KbError::NonGroundQuery(query.to_string()))?;
        let m = self.model(object)?;
        Ok(if m.holds(lit) {
            Truth::True
        } else if m.holds(lit.complement()) {
            Truth::False
        } else {
            Truth::Undefined
        })
    }

    /// [`Kb::truth`] under [`QueryOptions`] limits.
    ///
    /// On a partial result, `True` and `False` verdicts are final (the
    /// partial model only contains genuinely derivable literals);
    /// `Undefined` is provisional — an uninterrupted run might still
    /// decide the query.
    pub fn truth_with(
        &mut self,
        object: &str,
        query: &str,
        opts: &QueryOptions,
    ) -> Result<Eval<Truth>, KbError> {
        let lit = parse_ground_literal(Arc::make_mut(&mut self.world), query)
            .map_err(|_| KbError::NonGroundQuery(query.to_string()))?;
        Ok(self.model_with(object, opts)?.map(|m| {
            if m.holds(lit) {
                Truth::True
            } else if m.holds(lit.complement()) {
                Truth::False
            } else {
                Truth::Undefined
            }
        }))
    }

    /// Whether the query literal is derivably true in `object`.
    pub fn ask(&mut self, object: &str, query: &str) -> Result<bool, KbError> {
        Ok(self.truth(object, query)? == Truth::True)
    }

    /// All true atoms of predicate `name/arity` in `object`'s least
    /// model, rendered.
    pub fn query_pred(
        &mut self,
        object: &str,
        name: &str,
        arity: u32,
    ) -> Result<Vec<String>, KbError> {
        let pred = match self
            .world
            .syms
            .get(name)
            .and_then(|s| self.world.preds.get(s, arity))
        {
            Some(p) => p,
            None => return Ok(Vec::new()),
        };
        let c = self.comp(object)?;
        self.ensure_model(c);
        let m = &self.least_cache[&c].model;
        let mut out: Vec<String> = self
            .world
            .atoms
            .of_pred(pred)
            .iter()
            .filter(|&&a| m.holds(olp_core::GLit::pos(a)))
            .map(|&a| self.world.atom_str(a))
            .collect();
        out.sort();
        Ok(out)
    }

    /// Answers a (possibly non-ground) query pattern, e.g. `"fly(X)"`
    /// or `"-fly(X)"`: every binding of the pattern's variables whose
    /// instance is **true** in `object`'s least model, rendered as
    /// `var=term` pairs in first-occurrence order. A ground pattern
    /// returns one empty binding when it holds and nothing otherwise.
    pub fn query(&mut self, object: &str, pattern: &str) -> Result<Vec<String>, KbError> {
        let lit = olp_parser::parse_literal(Arc::make_mut(&mut self.world), pattern)
            .map_err(KbError::Parse)?;
        let c = self.comp(object)?;
        self.ensure_model(c);
        Ok(self.enumerate_bindings(&lit, &self.least_cache[&c].model))
    }

    /// [`Kb::query`] under [`QueryOptions`] limits. On a partial
    /// result, every returned binding is genuinely true (the partial
    /// model under-approximates), but further bindings may be missing.
    pub fn query_with(
        &mut self,
        object: &str,
        pattern: &str,
        opts: &QueryOptions,
    ) -> Result<Eval<Vec<String>>, KbError> {
        let lit = olp_parser::parse_literal(Arc::make_mut(&mut self.world), pattern)
            .map_err(KbError::Parse)?;
        let eval = self.model_with(object, opts)?;
        Ok(eval.map(|m| self.enumerate_bindings(&lit, &m)))
    }

    /// Every binding of `lit`'s variables whose instance is true in
    /// `m`, rendered `var=term` and sorted.
    fn enumerate_bindings(&self, lit: &Literal, m: &Interpretation) -> Vec<String> {
        let mut vars = Vec::new();
        lit.collect_vars(&mut vars);
        let mut out = Vec::new();
        for &atom in self.world.atoms.of_pred(lit.pred) {
            if !m.holds(olp_core::GLit::new(lit.sign, atom)) {
                continue;
            }
            let args = &self.world.atoms.get(atom).args;
            let mut b = olp_core::term::Bindings::default();
            let matched = lit
                .args
                .iter()
                .zip(args.iter())
                .all(|(pat, &g)| pat.match_ground(g, &self.world.terms, &mut b));
            if matched {
                let binding: Vec<String> = vars
                    .iter()
                    .map(|v| format!("{}={}", self.world.syms.name(*v), self.world.term_str(b[v])))
                    .collect();
                out.push(binding.join(", "));
            }
        }
        out.sort();
        out
    }

    /// Explains why `query` holds (a proof tree) or does not (the fate
    /// of every candidate rule), rendered as indented text.
    pub fn explain(&mut self, object: &str, query: &str) -> Result<String, KbError> {
        let lit = parse_ground_literal(Arc::make_mut(&mut self.world), query)
            .map_err(|_| KbError::NonGroundQuery(query.to_string()))?;
        let c = self.comp(object)?;
        self.ensure_model(c);
        let m = &self.least_cache[&c].model;
        let view = View::new(&self.ground, c);
        let why = olp_semantics::explain_in(&view, m, lit);
        Ok(olp_semantics::render_why(&self.world, &view, &why))
    }

    /// Goal-directed proof: is `query` in `object`'s least model?
    /// Avoids materialising the full model (useful for large KBs with
    /// small relevance cones).
    pub fn prove(&mut self, object: &str, query: &str) -> Result<bool, KbError> {
        let lit = parse_ground_literal(Arc::make_mut(&mut self.world), query)
            .map_err(|_| KbError::NonGroundQuery(query.to_string()))?;
        let c = self.comp(object)?;
        Ok(olp_semantics::prove(&View::new(&self.ground, c), lit))
    }

    /// Whether mutations go through the delta grounder + stratum-local
    /// cache revalidation (Smart strategy only; on by default).
    pub fn is_incremental(&self) -> bool {
        self.incremental && self.strategy == GroundStrategy::Smart
    }

    /// Toggles incremental maintenance. Turning it off makes every
    /// mutation a full re-ground (the differential baseline); turning
    /// it back on rebuilds the delta grounder lazily on the next
    /// mutation.
    pub fn set_incremental(&mut self, on: bool) {
        self.incremental = on;
        if !on {
            self.delta = None;
            self.delta_ids.clear();
        }
    }

    /// The mutation epoch: bumped once per applied assert/retract.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Worker threads used by unbudgeted query evaluation.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the worker-thread count for unbudgeted query evaluation
    /// (clamped to at least 1). `1` takes the sequential code paths
    /// exactly; any value yields identical answers.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Target morsel weight used by parallel query evaluation.
    pub fn morsel_weight(&self) -> u64 {
        self.morsel_weight
    }

    /// Sets the target morsel weight for parallel query evaluation
    /// (clamped to at least 1). Purely a scheduling knob; any value
    /// yields identical answers.
    pub fn set_morsel_weight(&mut self, weight: u64) {
        self.morsel_weight = weight.max(1);
    }

    /// The morsel configuration for a `threads`-wide evaluation.
    fn morsel_cfg(&self, threads: usize) -> MorselCfg {
        MorselCfg {
            threads,
            target_weight: self.morsel_weight,
            ..MorselCfg::default()
        }
    }

    /// The semantic profile of `object`'s view — stratification class,
    /// conflict-freedom, order-relevance, and per-predicate cardinality
    /// bounds ([`olp_analyze::component_profile`]). Cached per AST
    /// version: recomputed only after a mutation asserted or retracted
    /// a rule visible from the component. `None` when the declared
    /// order is invalid
    /// (no well-defined view to profile).
    pub fn component_profile(
        &mut self,
        object: &str,
    ) -> Result<Option<Arc<ComponentProfile>>, KbError> {
        let c = self.comp(object)?;
        Ok(self.profile_of(c))
    }

    fn profile_of(&mut self, c: CompId) -> Option<Arc<ComponentProfile>> {
        let av = self.ast_version(c);
        if let Some((v, p)) = self.profiles.get(&c) {
            if *v == av {
                return Some(p.clone());
            }
        }
        let order = self.prog.order().ok()?;
        let p = Arc::new(olp_analyze::component_profile(&self.prog, &order, c));
        self.profiles.insert(c, (av, p.clone()));
        Some(p)
    }

    /// Whether analysis-guided fast paths are enabled (they are by
    /// default).
    pub fn profile_guided(&self) -> bool {
        self.profile_guided
    }

    /// Enables or disables analysis-guided fast paths. With them off,
    /// every query runs the general engine unconditionally — the
    /// differential baseline the `profile_fastpath_matches_general`
    /// proptest compares byte-for-byte against.
    pub fn set_profile_guided(&mut self, on: bool) {
        self.profile_guided = on;
    }

    /// Profile-proved: `c`'s view is negation-free, so evaluation may
    /// skip all blockedness/attack bookkeeping.
    fn proved_definite(&mut self, c: CompId) -> bool {
        self.profile_guided
            && self
                .profile_of(c)
                .is_some_and(|p| p.strat == StratClass::NegationFree)
    }

    /// Profile-proved: `c`'s view has exactly one stable model — the
    /// least model (conflict-free, or every attack stratified away).
    fn proved_single_model(&mut self, c: CompId) -> bool {
        self.profile_guided && self.profile_of(c).is_some_and(|p| p.single_model)
    }

    /// Installs `new_ground` as the current ground program. The exact
    /// rule-level diff ([`GroundDelta::between`] — a linear sorted
    /// merge, both programs being canonically ordered) drives all
    /// cache maintenance:
    ///
    /// * the touched-atom log (heads and bodies of changed instances)
    ///   feeding stratum-local model revalidation;
    /// * per-component view versions: a component whose view contains
    ///   no changed instance keeps its version, so its cached model
    ///   revalidates in O(1) and its compiled arena survives by
    ///   pointer;
    /// * compiled arenas of affected components are **patched in
    ///   place** ([`FlatView::apply_delta`]) when the change is
    ///   stratum-local, and dropped for a lazy rebuild when the patch
    ///   honestly reports [`FlatPatch::Rebuild`] (the SCC condensation
    ///   moved under the view).
    fn commit(&mut self, new_ground: GroundProgram) {
        let delta = GroundDelta::between(&self.ground, &new_ground);
        self.touched_log
            .push(delta.touched_atoms(&self.ground, &new_ground));
        self.epoch += 1;
        if self.view_version.len() < self.prog.components.len() {
            self.view_version.resize(self.prog.components.len(), 0);
        }
        for ci in 0..self.view_version.len() {
            if delta.affects_view(&self.ground, &new_ground, CompId(ci as u32)) {
                self.view_version[ci] += 1;
            }
        }
        let cached: Vec<CompId> = self.flat_cache.keys().copied().collect();
        for c in cached {
            let (added, removed) = delta.for_view(&self.ground, &new_ground, c);
            if added.is_empty() && removed.is_empty() {
                // Nothing visible from `c` changed: the arena is still
                // exact (its rules are the view's rules), atom growth
                // included — truth queries on it only involve atoms it
                // indexes.
                continue;
            }
            let fv = &self.flat_cache[&c];
            let removed_rules: Vec<&GroundRule> = removed
                .iter()
                .map(|&i| &self.ground.rules[i as usize])
                .collect();
            let patched = fv.locate(&removed_rules).and_then(|flat_removed| {
                match fv.apply_delta(&new_ground, &added, &flat_removed) {
                    FlatPatch::Patched(nv) => Some(nv),
                    FlatPatch::Rebuild => None,
                }
            });
            match patched {
                Some(nv) => {
                    self.flat_cache.insert(c, Arc::new(nv));
                }
                None => {
                    self.flat_cache.remove(&c);
                }
            }
        }
        self.ground = Arc::new(new_ground);
    }

    /// Rebuilds the delta grounder from the current program if it was
    /// dropped (full refresh, incremental failure, or a KB built before
    /// `set_incremental(true)`).
    fn ensure_delta(&mut self) -> Result<(), KbError> {
        if self.delta.is_some() {
            return Ok(());
        }
        let (delta, gp) =
            DeltaGrounder::new(Arc::make_mut(&mut self.world), &self.prog, &self.cfg)?;
        self.delta_ids = sequential_ids(&self.prog);
        self.delta = Some(delta);
        // Same program, same deterministic output as the ground program
        // already installed — no epoch bump, and cached flat arenas
        // stay valid (identical rule ordering).
        self.ground = Arc::new(gp);
        Ok(())
    }

    /// Full re-ground under `gov` (the non-incremental mutation path).
    /// The caller has already mutated `prog`; on interruption or error
    /// the caller rolls that back.
    fn refresh_with(&mut self, gov: &Budget) -> Result<Eval<()>, KbError> {
        self.delta = None;
        self.delta_ids.clear();
        let mut cfg = self.cfg.clone();
        cfg.budget = gov.clone();
        let res = match self.strategy {
            GroundStrategy::Smart => ground_smart(Arc::make_mut(&mut self.world), &self.prog, &cfg),
            GroundStrategy::Exhaustive => {
                ground_exhaustive(Arc::make_mut(&mut self.world), &self.prog, &cfg)
            }
        };
        match res {
            Ok(gp) => {
                self.commit(gp);
                Ok(Eval::Complete(()))
            }
            Err(GroundError::Interrupted(reason)) => Ok(Eval::Interrupted(Interrupted {
                reason,
                partial: (),
            })),
            Err(e) => Err(e.into()),
        }
    }

    /// Runs the `olp_analyze` lint pass over the current program,
    /// returning its findings (sorted, deterministic). Programs
    /// assembled through the builder API carry no spans, so these
    /// diagnostics have `pos: None` but keep component/rule indices.
    pub fn analyze(&self) -> Vec<Diagnostic> {
        analyze(&self.world, &self.prog)
    }

    /// Asserts a new rule (or fact) into `object`. Under incremental
    /// maintenance (Smart strategy, the default) only the new rule's
    /// instantiations and their consequences are grounded, and cached
    /// models stay valid up to stratum-local revalidation.
    pub fn assert_rule(&mut self, object: &str, src: &str) -> Result<(), KbError> {
        self.assert_rule_with(object, src, &QueryOptions::new())
            .map(|ev| ev.expect_complete("unlimited assert cannot be interrupted"))
    }

    /// [`Kb::assert_rule`] under [`QueryOptions`] limits (the budget
    /// governs the grounding work; model recomputation stays lazy).
    ///
    /// On `Interrupted` the mutation is **not applied**: the KB still
    /// answers queries exactly as before the call. An incremental
    /// attempt that trips also drops the delta grounder; the next
    /// mutation rebuilds it from the unchanged program.
    pub fn assert_rule_with(
        &mut self,
        object: &str,
        src: &str,
        opts: &QueryOptions,
    ) -> Result<Eval<()>, KbError> {
        let c = self.comp(object)?;
        let r = parse_rule(Arc::make_mut(&mut self.world), src)?;
        if opts.deny_warnings {
            // Tentative AST-only application: analyze, then roll back
            // before any grounding. `add_rule` records no span, so
            // `pop_rule` restores the table exactly.
            let before = analyze(&self.world, &self.prog);
            Arc::make_mut(&mut self.prog).add_rule(c, r.clone());
            let after = analyze(&self.world, &self.prog);
            Arc::make_mut(&mut self.prog).pop_rule(c);
            let new = findings_introduced(after, &before);
            if !new.is_empty() {
                return Err(KbError::Rejected(new));
            }
            // (`findings_introduced` already drops Info-severity notes —
            // a mutation that merely changes a profile note must not be
            // rejected under `deny_warnings`.)
        }
        let gov = opts.budget();
        if self.is_incremental() {
            self.ensure_delta()?;
            let mut delta = self.delta.take().expect("ensure_delta installed one");
            match delta.assert_rule(Arc::make_mut(&mut self.world), c, &r, &gov) {
                Ok((id, gp)) => {
                    Arc::make_mut(&mut self.prog).add_rule(c, r);
                    self.delta_ids[c.index()].push(id);
                    self.delta = Some(delta);
                    self.commit(gp);
                    self.note_ast_mutation(c);
                    return Ok(Eval::Complete(()));
                }
                // Grounder state is unspecified after an error: leave
                // `delta` as None and keep the pre-mutation KB intact.
                Err(GroundError::Interrupted(reason)) => {
                    return Ok(Eval::Interrupted(Interrupted {
                        reason,
                        partial: (),
                    }))
                }
                Err(e) => return Err(e.into()),
            }
        }
        Arc::make_mut(&mut self.prog).add_rule(c, r);
        let res = self.refresh_with(&gov);
        if matches!(res, Ok(Eval::Complete(()))) {
            self.note_ast_mutation(c);
        } else {
            Arc::make_mut(&mut self.prog).pop_rule(c);
        }
        res
    }

    /// Retracts the first rule of `object` equal to `src` after parsing
    /// — up to **renaming of variables** (`p(X) :- q(X).` retracts
    /// `p(Y) :- q(Y).`); returns whether one was removed.
    pub fn retract_rule(&mut self, object: &str, src: &str) -> Result<bool, KbError> {
        self.retract_rule_with(object, src, &QueryOptions::new())
            .map(|ev| ev.expect_complete("unlimited retract cannot be interrupted"))
    }

    /// [`Kb::retract_rule`] under [`QueryOptions`] limits.
    ///
    /// On `Interrupted` the mutation is **not applied** (the partial
    /// payload is `false`): the matched rule is still present and the
    /// KB answers queries exactly as before the call.
    pub fn retract_rule_with(
        &mut self,
        object: &str,
        src: &str,
        opts: &QueryOptions,
    ) -> Result<Eval<bool>, KbError> {
        let c = self.comp(object)?;
        let r = parse_rule(Arc::make_mut(&mut self.world), src)?;
        let pos = self.prog.components[c.index()]
            .rules
            .iter()
            .position(|existing| *existing == r || existing.alpha_eq(&r));
        let Some(i) = pos else {
            return Ok(Eval::Complete(false));
        };
        if opts.deny_warnings {
            // Retraction can also introduce findings (e.g. removing the
            // last definition of a predicate others depend on makes
            // their rules W02). Tentative removal + rollback, with the
            // removed rule's span saved and restored.
            let before = analyze(&self.world, &self.prog);
            let saved_span = self.prog.spans.rule(c.index(), i).cloned();
            let removed = Arc::make_mut(&mut self.prog).remove_rule(c, i);
            let after = analyze(&self.world, &self.prog);
            Arc::make_mut(&mut self.prog).insert_rule(c, i, removed);
            if let Some(span) = saved_span {
                Arc::make_mut(&mut self.prog)
                    .spans
                    .set_rule(c.index(), i, span);
            }
            let new = findings_introduced(after, &before);
            if !new.is_empty() {
                return Err(KbError::Rejected(new));
            }
        }
        let gov = opts.budget();
        if self.is_incremental() {
            self.ensure_delta()?;
            let mut delta = self.delta.take().expect("ensure_delta installed one");
            let id = self.delta_ids[c.index()][i];
            match delta.retract_rule(Arc::make_mut(&mut self.world), id, &gov) {
                Ok(gp) => {
                    Arc::make_mut(&mut self.prog).remove_rule(c, i);
                    self.delta_ids[c.index()].remove(i);
                    self.delta = Some(delta);
                    self.commit(gp);
                    self.note_ast_mutation(c);
                    return Ok(Eval::Complete(true));
                }
                Err(GroundError::Interrupted(reason)) => {
                    return Ok(Eval::Interrupted(Interrupted {
                        reason,
                        partial: false,
                    }))
                }
                Err(e) => return Err(e.into()),
            }
        }
        let saved_span = self.prog.spans.rule(c.index(), i).cloned();
        let removed = Arc::make_mut(&mut self.prog).remove_rule(c, i);
        let res = self.refresh_with(&gov);
        if matches!(res, Ok(Eval::Complete(()))) {
            self.note_ast_mutation(c);
        } else {
            Arc::make_mut(&mut self.prog).insert_rule(c, i, removed);
            if let Some(span) = saved_span {
                Arc::make_mut(&mut self.prog)
                    .spans
                    .set_rule(c.index(), i, span);
            }
        }
        match res {
            Ok(Eval::Complete(())) => Ok(Eval::Complete(true)),
            Ok(Eval::Interrupted(i)) => Ok(Eval::Interrupted(Interrupted {
                reason: i.reason,
                partial: false,
            })),
            Err(e) => Err(e),
        }
    }

    /// The skeptical consequences in `object`: literals true in every
    /// stable model (exponential; see
    /// [`olp_semantics::skeptical_consequences`]).
    pub fn skeptical(&mut self, object: &str) -> Result<Interpretation, KbError> {
        let c = self.comp(object)?;
        if self.proved_single_model(c) {
            // Profile fast path: one stable model, so the skeptical
            // consequences are exactly the least model.
            self.ensure_model(c);
            return Ok(self.least_cache[&c].model.as_ref().clone());
        }
        Ok(olp_semantics::skeptical_consequences(
            &View::new(&self.ground, c),
            self.ground.n_atoms,
        ))
    }

    /// [`Kb::skeptical`] under [`QueryOptions`] limits.
    ///
    /// **Caveat:** a partial skeptical set intersects only the stable
    /// models found before interruption, so it may *over*-approximate
    /// (contain literals a complete run would drop). Treat it as
    /// "consequences of the explored models", not safe conclusions.
    /// Exception: on a profile-proved single-model view (the fast
    /// path) the partial result is a prefix of the least model and
    /// therefore *under*-approximates, like [`Kb::model_with`].
    pub fn skeptical_with(
        &mut self,
        object: &str,
        opts: &QueryOptions,
    ) -> Result<Eval<Interpretation>, KbError> {
        let c = self.comp(object)?;
        if opts.decomp && self.proved_single_model(c) {
            return Ok(self.model_eval(c, opts));
        }
        Ok(olp_semantics::skeptical_consequences_budgeted(
            &View::new(&self.ground, c),
            self.ground.n_atoms,
            &opts.budget(),
        ))
    }

    /// The stable models of the program in `object` (Definition 9).
    /// Exponential in the contested part; use for choice-style KBs.
    /// Independent rule groups are memoised per object: after a
    /// mutation, groups whose rule instances did not change answer from
    /// the cache.
    pub fn stable(&mut self, object: &str) -> Result<Vec<Interpretation>, KbError> {
        let c = self.comp(object)?;
        if self.proved_single_model(c) {
            // Profile fast path: the view is conflict-free or
            // stratified, so the unique stable model is the least model
            // — one fixpoint instead of assumption-set enumeration plus
            // maximality filtering. Differentially tested byte-identical
            // to the general engine (`profile_fastpath_matches_general`).
            self.ensure_model(c);
            return Ok(vec![self.least_cache[&c].model.as_ref().clone()]);
        }
        Ok(self
            .stable_cached(c, &Budget::unlimited(), None)
            .expect_complete("unlimited stable enumeration cannot be interrupted"))
    }

    /// [`Kb::stable`] under [`QueryOptions`] limits (including
    /// `max_models`). Every model in a partial result is a genuine
    /// assumption-free model, maximal among those explored; models the
    /// search had not reached are missing.
    pub fn stable_with(
        &mut self,
        object: &str,
        opts: &QueryOptions,
    ) -> Result<Eval<Vec<Interpretation>>, KbError> {
        let c = self.comp(object)?;
        // Profile fast path: provably exactly one stable model — the
        // least model. `no_decomp` stays on the general engine (it is
        // the differential baseline), and a cap below 2 keeps the
        // general truncation semantics (`Interrupted(ModelCap)`).
        if opts.decomp && opts.max_models.is_none_or(|cap| cap >= 2) && self.proved_single_model(c)
        {
            return Ok(match self.model_eval(c, opts) {
                Eval::Complete(m) => Eval::Complete(vec![m]),
                // A partial least model is not a stable model: report
                // the interruption with no models, like a search that
                // tripped before its first complete model.
                Eval::Interrupted(i) => Eval::Interrupted(Interrupted {
                    reason: i.reason,
                    partial: Vec::new(),
                }),
            });
        }
        Ok(if !opts.decomp {
            stable_models_monolithic_budgeted(
                &View::new(&self.ground, c),
                self.ground.n_atoms,
                &opts.budget(),
                opts.max_models,
            )
        } else if opts.threads > 1 {
            // Parallel enumeration explores independent rule groups (or
            // propagated search prefixes) on worker threads; budgeted
            // maximality filtering afterwards yields the same stable set
            // as the sequential engine. This path skips the per-group
            // memo.
            stable_models_parallel_budgeted(
                &View::new(&self.ground, c),
                self.ground.n_atoms,
                opts.threads,
                &opts.budget(),
                opts.max_models,
            )
        } else {
            self.stable_cached(c, &opts.budget(), opts.max_models)
        })
    }

    /// Decomposed stable enumeration through two layers of memoisation:
    /// a whole-result memo keyed by view version (O(1) when no visible
    /// rule changed since the last complete, uncapped enumeration) and
    /// the per-group memo (bounded by [`STABLE_CACHE_CAP`]) that reuses
    /// unchanged independent rule groups when one did.
    fn stable_cached(
        &mut self,
        c: CompId,
        budget: &Budget,
        max_models: Option<usize>,
    ) -> Eval<Vec<Interpretation>> {
        let vv = self.view_version(c);
        if max_models.is_none() {
            if let Some((v, models)) = self.stable_results.get(&c) {
                if *v == vv {
                    return Eval::Complete(models.clone());
                }
            }
        }
        let cache = self.stable_cache.entry(c).or_default();
        let view = View::new(&self.ground, c);
        let eval =
            stable_models_decomposed_cached(&view, self.ground.n_atoms, budget, max_models, cache);
        if cache.len() > STABLE_CACHE_CAP {
            cache.clear();
        }
        if max_models.is_none() {
            if let Eval::Complete(models) = &eval {
                self.stable_results.insert(c, (vv, models.clone()));
            }
        }
        eval
    }

    /// Differences between two objects' least models: the literals on
    /// which their verdicts disagree, rendered as
    /// `atom: <truth in a> -> <truth in b>`, sorted. The versioning
    /// use-case (§5): `kb.diff("v2", "v3")` is the semantic changelog.
    pub fn diff(&mut self, a: &str, b: &str) -> Result<Vec<String>, KbError> {
        // Materialise both models (cached).
        self.model(a)?;
        self.model(b)?;
        let ca = self.comp(a)?;
        let cb = self.comp(b)?;
        let ma = self.least_cache[&ca].model.clone();
        let mb = &self.least_cache[&cb].model;
        let mut out = Vec::new();
        for i in 0..self.ground.n_atoms {
            let atom = olp_core::AtomId(i as u32);
            let va = ma.value(atom);
            let vb = mb.value(atom);
            if va != vb {
                out.push(format!("{}: {} -> {}", self.world.atom_str(atom), va, vb));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Renders an interpretation against this KB's symbol table.
    pub fn render(&self, i: &Interpretation) -> String {
        i.render(&self.world)
    }

    /// Renders the evaluation plan for one object: the flat ground
    /// representation (strata, levels, and the morsels the parallel
    /// fixpoint would schedule at the configured weight) followed by
    /// the per-predicate cardinality/distinct statistics that drive
    /// the join planner's body ordering. Purely diagnostic — computing
    /// the report never evaluates a model.
    pub fn plan_report(&self, object: &str) -> Result<String, KbError> {
        let c = self.comp(object)?;
        let fv = FlatView::new(&self.ground, c);
        let morsels = fv.morsels(self.morsel_weight);
        let mut out = format!(
            "plan for `{object}`: {} ground rules in {} strata over {} levels\n\
             schedule: {} morsel{} @ target weight {}, {} thread{}\n",
            fv.len(),
            fv.n_strata(),
            fv.n_levels(),
            morsels.len(),
            if morsels.len() == 1 { "" } else { "s" },
            self.morsel_weight,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
        );
        out.push_str(&ProgramStats::collect(&self.world, &self.ground, c).render(&self.world));
        Ok(out)
    }

    /// The names of all objects in the knowledge base, in declaration
    /// order.
    pub fn objects(&self) -> Vec<&str> {
        self.prog
            .components
            .iter()
            .map(|c| self.world.syms.name(c.name))
            .collect()
    }

    /// Read-only world access.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The underlying ground program (for diagnostics and benches).
    pub fn ground_program(&self) -> &GroundProgram {
        &self.ground
    }

    /// Read-only access to the ordered program (components, rules,
    /// order edges, spans) — what a snapshot serialises.
    pub fn program(&self) -> &olp_core::OrderedProgram {
        &self.prog
    }

    /// Publishes an immutable, thread-safe view of the KB frozen at the
    /// current epoch ([`crate::KbSnapshot`]).
    ///
    /// This is O(components): the world, program, and grounding are
    /// shared by `Arc` (copy-on-write — a later mutation on `self`
    /// clones them only while a snapshot is alive), and every
    /// current-epoch cached model and compiled flat arena is handed to
    /// the snapshot for free. Readers evaluate against the snapshot
    /// concurrently (`&self` everywhere, `Send + Sync`) while this KB
    /// keeps mutating; no reader ever observes a half-applied mutation.
    pub fn snapshot(&self) -> Arc<crate::KbSnapshot> {
        let mut models: FxHashMap<CompId, Arc<Interpretation>> = FxHashMap::default();
        for (c, e) in &self.least_cache {
            if e.epoch == self.epoch {
                models.insert(*c, e.model.clone());
            }
        }
        // Hand over the current-version profiles (the writer warms them
        // with `warm_profiles`); snapshots never recompute analysis.
        let mut profiles: FxHashMap<CompId, Arc<ComponentProfile>> = FxHashMap::default();
        if self.profile_guided {
            for (c, (av, p)) in &self.profiles {
                if *av == self.ast_version(*c) {
                    profiles.insert(*c, p.clone());
                }
            }
        }
        Arc::new(crate::KbSnapshot::from_parts(
            self.world.clone(),
            self.prog.clone(),
            self.ground.clone(),
            self.epoch,
            self.threads,
            self.morsel_weight,
            self.flat_cache.clone(),
            models,
            profiles,
        ))
    }

    /// Computes (or revalidates) the semantic profile of every
    /// component, so the next [`Kb::snapshot`] publishes them all — the
    /// server calls this alongside [`Kb::revalidate_cached_models`]
    /// before each publish.
    pub fn warm_profiles(&mut self) {
        for ci in 0..self.prog.components.len() {
            self.profile_of(CompId(ci as u32));
        }
    }

    /// Brings every *previously cached* least model up to the current
    /// epoch via stratum-local delta revalidation. A writer that calls
    /// this between applying a mutation and publishing a
    /// [`Kb::snapshot`] hands readers warm models, keeping the
    /// incremental-maintenance advantage server-side; objects nobody
    /// has queried stay lazy.
    pub fn revalidate_cached_models(&mut self) {
        let comps: Vec<CompId> = self.least_cache.keys().copied().collect();
        for c in comps {
            self.ensure_model(c);
        }
    }

    /// Bench/diagnostic hook: drops every compiled flat arena, forcing
    /// the next evaluation of each component to reflatten from scratch.
    /// Calling this after every mutation reproduces the pre-patching
    /// mutation path (commit used to clear the cache wholesale) — the
    /// differential baseline for the arena-maintenance benchmarks.
    /// Models, epochs, and view versions are untouched.
    #[doc(hidden)]
    pub fn clear_flat_cache(&mut self) {
        self.flat_cache.clear();
    }

    /// Test/diagnostic hook: the compiled flat arena for `object` at
    /// the current epoch (building and caching it if absent). Two calls
    /// within one epoch return the same `Arc`; a mutation that changes
    /// a rule visible from `object` replaces the arena (patched in
    /// place or rebuilt), while mutations confined to unrelated
    /// components leave the `Arc` untouched.
    #[doc(hidden)]
    pub fn flat_view(&mut self, object: &str) -> Result<Arc<FlatView>, KbError> {
        let c = self.comp(object)?;
        Ok(self.flat(c))
    }

    /// Reassembles a KB from already-grounded parts — a decoded
    /// snapshot (`olp-store`). **No re-parse and no re-ground happens
    /// here**: the ground program is installed as-is; the incremental
    /// delta grounder is rebuilt lazily by the first mutation. The
    /// caller guarantees `ground` is the deterministic grounding of
    /// `prog` in `world` (true for any snapshot this code base wrote —
    /// decoding validates checksums and id ranges).
    pub fn from_ground_parts(
        world: World,
        prog: olp_core::OrderedProgram,
        ground: GroundProgram,
    ) -> Kb {
        let n_comps = prog.components.len();
        Kb {
            world: Arc::new(world),
            prog: Arc::new(prog),
            ground: Arc::new(ground),
            least_cache: FxHashMap::default(),
            flat_cache: FxHashMap::default(),
            stable_cache: FxHashMap::default(),
            stable_results: FxHashMap::default(),
            strategy: GroundStrategy::Smart,
            cfg: GroundConfig::default(),
            delta: None,
            delta_ids: Vec::new(),
            incremental: true,
            epoch: 0,
            touched_log: Vec::new(),
            view_version: vec![0; n_comps],
            ast_version: vec![0; n_comps],
            threads: default_threads(),
            morsel_weight: default_morsel_weight(),
            profiles: FxHashMap::default(),
            profile_guided: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn penguin_kb(strategy: GroundStrategy) -> Kb {
        let mut b = KbBuilder::new();
        b.rules(
            "bird",
            "bird(penguin). bird(pigeon).
             fly(X) :- bird(X).
             -ground_animal(X) :- bird(X).",
        )
        .unwrap();
        b.isa("penguin_view", "bird");
        b.rules(
            "penguin_view",
            "ground_animal(penguin).
             -fly(X) :- ground_animal(X).",
        )
        .unwrap();
        b.build(strategy).unwrap()
    }

    #[test]
    fn inheritance_with_exceptions_both_strategies() {
        for strategy in [GroundStrategy::Exhaustive, GroundStrategy::Smart] {
            let mut kb = penguin_kb(strategy);
            assert_eq!(
                kb.truth("penguin_view", "fly(penguin)").unwrap(),
                Truth::False
            );
            assert_eq!(
                kb.truth("penguin_view", "fly(pigeon)").unwrap(),
                Truth::True
            );
            assert_eq!(kb.truth("bird", "fly(penguin)").unwrap(), Truth::True);
            assert!(kb.ask("penguin_view", "-fly(penguin)").unwrap());
        }
    }

    #[test]
    fn relations_feed_recursive_rules() {
        let mut b = KbBuilder::new();
        let mut parent = Relation::new("parent", 2);
        for (x, y) in [("a", "b"), ("b", "c"), ("c", "d")] {
            parent.insert_consts(b.world_mut(), &[x, y]).unwrap();
        }
        b.load_relation("genealogy", &parent);
        b.rules(
            "genealogy",
            "anc(X,Y) :- parent(X,Y).
             anc(X,Y) :- parent(X,Z), anc(Z,Y).",
        )
        .unwrap();
        let mut kb = b.build(GroundStrategy::Smart).unwrap();
        assert!(kb.ask("genealogy", "anc(a,d)").unwrap());
        assert_eq!(kb.truth("genealogy", "anc(d,a)").unwrap(), Truth::Undefined);
        let ancs = kb.query_pred("genealogy", "anc", 2).unwrap();
        assert_eq!(ancs.len(), 6); // 3 + 2 + 1 pairs on a 4-chain
    }

    #[test]
    fn versioning_shadows_base() {
        let mut b = KbBuilder::new();
        b.rule("pricing_v1", "price(42).").unwrap();
        b.version_of("pricing_v2", "pricing_v1");
        b.rules("pricing_v2", "-price(42). price(45).").unwrap();
        let mut kb = b.build(GroundStrategy::Exhaustive).unwrap();
        assert_eq!(kb.truth("pricing_v1", "price(42)").unwrap(), Truth::True);
        assert_eq!(kb.truth("pricing_v2", "price(42)").unwrap(), Truth::False);
        assert_eq!(kb.truth("pricing_v2", "price(45)").unwrap(), Truth::True);
    }

    #[test]
    fn unknown_object_and_nonground_query_error() {
        let mut kb = penguin_kb(GroundStrategy::Exhaustive);
        assert!(matches!(
            kb.truth("nobody", "fly(pigeon)"),
            Err(KbError::UnknownObject(_))
        ));
        assert!(matches!(
            kb.truth("bird", "fly(X)"),
            Err(KbError::NonGroundQuery(_))
        ));
    }

    #[test]
    fn stable_models_for_defeating_kb() {
        // Mutually defeating experts under an empty child: empty stable
        // set contains only the empty model.
        let mut b = KbBuilder::new();
        b.rule("expert_a", "hire(candidate).").unwrap();
        b.rule("expert_b", "-hire(candidate).").unwrap();
        b.isa("committee", "expert_a");
        b.isa("committee", "expert_b");
        let mut kb = b.build(GroundStrategy::Exhaustive).unwrap();
        assert_eq!(
            kb.truth("committee", "hire(candidate)").unwrap(),
            Truth::Undefined
        );
        let stable = kb.stable("committee").unwrap();
        assert_eq!(stable.len(), 1);
        assert!(stable[0].is_empty());
    }

    #[test]
    fn nonground_queries_enumerate_bindings() {
        let mut kb = penguin_kb(GroundStrategy::Smart);
        let flyers = kb.query("penguin_view", "fly(X)").unwrap();
        assert_eq!(flyers, vec!["X=pigeon"]);
        let grounded = kb.query("penguin_view", "-fly(X)").unwrap();
        assert_eq!(grounded, vec!["X=penguin"]);
        // Ground pattern: one empty binding iff it holds.
        assert_eq!(kb.query("penguin_view", "fly(pigeon)").unwrap(), vec![""]);
        assert!(kb.query("penguin_view", "fly(penguin)").unwrap().is_empty());
        // Multi-variable patterns.
        let mut b = KbBuilder::new();
        b.rules(
            "g",
            "parent(a,b). parent(b,c). anc(X,Y) :- parent(X,Y).
                      anc(X,Y) :- parent(X,Z), anc(Z,Y).",
        )
        .unwrap();
        let mut kb2 = b.build(GroundStrategy::Smart).unwrap();
        let ancs = kb2.query("g", "anc(X, Y)").unwrap();
        assert_eq!(ancs, vec!["X=a, Y=b", "X=a, Y=c", "X=b, Y=c"]);
    }

    #[test]
    fn explain_and_prove_round_trip() {
        let mut kb = penguin_kb(GroundStrategy::Exhaustive);
        let text = kb.explain("penguin_view", "-fly(penguin)").unwrap();
        assert!(text.contains("ground_animal(penguin)"));
        let text2 = kb.explain("penguin_view", "fly(penguin)").unwrap();
        assert!(text2.contains("overruled"));
        assert!(kb.prove("penguin_view", "-fly(penguin)").unwrap());
        assert!(!kb.prove("penguin_view", "fly(penguin)").unwrap());
        assert!(kb.prove("bird", "fly(penguin)").unwrap());
    }

    #[test]
    fn assert_and_retract_reground() {
        let mut kb = penguin_kb(GroundStrategy::Smart);
        // A new bird inherits the default.
        kb.assert_rule("bird", "bird(sparrow).").unwrap();
        assert_eq!(
            kb.truth("penguin_view", "fly(sparrow)").unwrap(),
            Truth::True
        );
        // Make it an exception.
        kb.assert_rule("penguin_view", "ground_animal(sparrow).")
            .unwrap();
        assert_eq!(
            kb.truth("penguin_view", "fly(sparrow)").unwrap(),
            Truth::False
        );
        // Retract the exception fact: back to flying.
        assert!(kb
            .retract_rule("penguin_view", "ground_animal(sparrow).")
            .unwrap());
        assert_eq!(
            kb.truth("penguin_view", "fly(sparrow)").unwrap(),
            Truth::True
        );
        // Retracting something absent reports false and changes nothing.
        assert!(!kb
            .retract_rule("penguin_view", "ground_animal(dodo).")
            .unwrap());
    }

    #[test]
    fn skeptical_surface() {
        let mut b = KbBuilder::new();
        b.rules("opts", "a. b.").unwrap();
        b.isa("chooser", "opts");
        b.rules("chooser", "-a :- b. -b :- a. r :- a. r :- b.")
            .unwrap();
        let mut kb = b.build(GroundStrategy::Exhaustive).unwrap();
        let sk = kb.skeptical("chooser").unwrap();
        let rendered = kb.render(&sk);
        assert_eq!(rendered, "{r}");
        assert_eq!(
            kb.truth("chooser", "r").unwrap(),
            Truth::Undefined,
            "the least model cannot do case analysis; skeptical can"
        );
    }

    #[test]
    fn objects_listed_in_declaration_order() {
        let kb = penguin_kb(GroundStrategy::Smart);
        assert_eq!(kb.objects(), vec!["bird", "penguin_view"]);
    }

    #[test]
    fn diff_between_versions() {
        let mut b = KbBuilder::new();
        b.rule("v1", "price(42).").unwrap();
        b.version_of("v2", "v1");
        b.rules("v2", "-price(42). price(45).").unwrap();
        let mut kb = b.build(GroundStrategy::Exhaustive).unwrap();
        let d = kb.diff("v1", "v2").unwrap();
        assert_eq!(
            d,
            vec![
                "price(42): true -> false".to_string(),
                "price(45): undefined -> true".to_string(),
            ]
        );
        assert!(kb.diff("v1", "v1").unwrap().is_empty());
    }

    #[test]
    fn budgeted_queries_complete_with_headroom() {
        let mut kb = penguin_kb(GroundStrategy::Smart);
        let opts = QueryOptions::new().max_steps(1_000_000);
        let ev = kb
            .truth_with("penguin_view", "fly(penguin)", &opts)
            .unwrap();
        assert!(ev.is_complete());
        assert_eq!(*ev.value(), Truth::False);
        let q = kb.query_with("penguin_view", "fly(X)", &opts).unwrap();
        assert_eq!(q.into_value(), vec!["X=pigeon"]);
        let st = kb.stable_with("penguin_view", &opts).unwrap();
        assert!(st.is_complete());
    }

    #[test]
    fn exhausted_budget_yields_partial_not_panic() {
        let mut kb = penguin_kb(GroundStrategy::Smart);
        let opts = QueryOptions::new().max_steps(1);
        let ev = kb.model_with("penguin_view", &opts).unwrap();
        assert!(ev.is_partial());
        // The partial model under-approximates: re-run unbudgeted and
        // check containment.
        let partial = ev.into_value();
        let full = kb.model("penguin_view").unwrap();
        assert!(partial.is_subset(full));
        // A complete model was never cached by the failed attempt, but
        // the unbudgeted call above cached one; now the budgeted call
        // hits the cache and completes even with max_steps(1).
        let ev2 = kb.model_with("penguin_view", &opts).unwrap();
        assert!(ev2.is_complete());
    }

    #[test]
    fn model_cap_truncates_stable_enumeration() {
        let mut b = KbBuilder::new();
        b.rules("opts", "a. b.").unwrap();
        b.isa("chooser", "opts");
        b.rules("chooser", "-a :- b. -b :- a.").unwrap();
        let mut kb = b.build(GroundStrategy::Exhaustive).unwrap();
        let all = kb.stable("chooser").unwrap();
        assert_eq!(all.len(), 2);
        let capped = kb
            .stable_with("chooser", &QueryOptions::new().max_models(1))
            .unwrap();
        assert!(capped.is_partial());
        for m in capped.value() {
            // Every partial member is a genuine assumption-free model.
            assert!(all.iter().any(|full| m.is_subset(full)));
        }
    }

    #[test]
    fn no_decomp_matches_default_engines() {
        // Two fresh KBs so the least-model cache can't mask the engine
        // choice.
        let mut mono = penguin_kb(GroundStrategy::Smart);
        let mut dec = penguin_kb(GroundStrategy::Smart);
        let m_mono = mono
            .model_with("penguin_view", &QueryOptions::new().no_decomp())
            .unwrap();
        let m_dec = dec
            .model_with("penguin_view", &QueryOptions::new())
            .unwrap();
        assert!(m_mono.is_complete() && m_dec.is_complete());
        assert_eq!(m_mono.value(), m_dec.value());
        let st_mono = mono
            .stable_with("penguin_view", &QueryOptions::new().no_decomp())
            .unwrap();
        let st_dec = dec
            .stable_with("penguin_view", &QueryOptions::new())
            .unwrap();
        assert_eq!(st_mono.value().len(), st_dec.value().len());
        for m in st_mono.value() {
            assert!(st_dec.value().contains(m));
        }
    }

    #[test]
    fn retract_matches_up_to_variable_renaming() {
        // Regression: retraction used plain syntactic equality, so a
        // renamed copy of a rule could not be retracted.
        let mut kb = penguin_kb(GroundStrategy::Smart);
        assert_eq!(
            kb.truth("penguin_view", "fly(penguin)").unwrap(),
            Truth::False
        );
        assert!(kb
            .retract_rule("penguin_view", "-fly(Z) :- ground_animal(Z).")
            .unwrap());
        assert_eq!(
            kb.truth("penguin_view", "fly(penguin)").unwrap(),
            Truth::True
        );
        // Distinct variable *patterns* still do not match.
        let mut b = KbBuilder::new();
        b.rule("g", "p(X,Y) :- q(X), q(Y).").unwrap();
        b.rule("g", "q(a).").unwrap();
        let mut kb2 = b.build(GroundStrategy::Smart).unwrap();
        assert!(!kb2.retract_rule("g", "p(X,X) :- q(X), q(X).").unwrap());
        assert!(kb2.retract_rule("g", "p(U,V) :- q(U), q(V).").unwrap());
        assert_eq!(kb2.truth("g", "p(a,a)").unwrap(), Truth::Undefined);
    }

    #[test]
    fn incremental_mutations_match_full_refresh() {
        let mut inc = penguin_kb(GroundStrategy::Smart);
        let mut full = penguin_kb(GroundStrategy::Smart);
        full.set_incremental(false);
        assert!(inc.is_incremental());
        assert!(!full.is_incremental());
        let script: &[(&str, &str, bool)] = &[
            ("bird", "bird(sparrow).", true),
            ("penguin_view", "ground_animal(sparrow).", true),
            ("bird", "swims(X) :- ground_animal(X).", true),
            ("penguin_view", "ground_animal(sparrow).", false),
            ("bird", "fly(X) :- bird(X).", false),
        ];
        for &(obj, src, is_assert) in script {
            if is_assert {
                inc.assert_rule(obj, src).unwrap();
                full.assert_rule(obj, src).unwrap();
            } else {
                assert_eq!(
                    inc.retract_rule(obj, src).unwrap(),
                    full.retract_rule(obj, src).unwrap()
                );
            }
            for obj in ["bird", "penguin_view"] {
                let mi = inc.model(obj).unwrap().clone();
                let mf = full.model(obj).unwrap().clone();
                assert_eq!(inc.render(&mi), full.render(&mf), "after mutating {obj}");
                let si: Vec<String> = inc
                    .stable(obj)
                    .unwrap()
                    .iter()
                    .map(|m| inc.render(m))
                    .collect();
                let sf: Vec<String> = full
                    .stable(obj)
                    .unwrap()
                    .iter()
                    .map(|m| full.render(m))
                    .collect();
                assert_eq!(si, sf);
            }
        }
        assert_eq!(inc.epoch(), 5);
    }

    #[test]
    fn stale_model_cache_revalidates_by_stratum() {
        let mut kb = penguin_kb(GroundStrategy::Smart);
        // Populate the cache, mutate, then query again: the cached
        // entry is delta-revalidated, not recomputed from scratch.
        let m = kb.model("penguin_view").unwrap().clone();
        let before = kb.render(&m);
        kb.assert_rule("bird", "bird(sparrow).").unwrap();
        assert_eq!(kb.epoch(), 1);
        let m = kb.model("penguin_view").unwrap().clone();
        let after = kb.render(&m);
        assert_ne!(before, after);
        assert!(after.contains("fly(sparrow)"));
        // A fresh KB with the same rules agrees exactly.
        let mut fresh = penguin_kb(GroundStrategy::Smart);
        fresh.assert_rule("bird", "bird(sparrow).").unwrap();
        let m = fresh.model("penguin_view").unwrap().clone();
        let reference = fresh.render(&m);
        assert_eq!(after, reference);
        // Budgeted revalidation of a stale entry is a sound partial.
        kb.assert_rule("bird", "bird(robin).").unwrap();
        let ev = kb
            .model_with("penguin_view", &QueryOptions::new().max_steps(1))
            .unwrap();
        if ev.is_partial() {
            let full = kb.model("penguin_view").unwrap();
            assert!(ev.value().is_subset(full));
        }
    }

    #[test]
    fn interrupted_assert_leaves_kb_unchanged() {
        let mut kb = penguin_kb(GroundStrategy::Smart);
        let m = kb.model("penguin_view").unwrap().clone();
        let before = kb.render(&m);
        let ev = kb
            .assert_rule_with("bird", "bird(sparrow).", &QueryOptions::new().max_steps(0))
            .unwrap();
        assert!(ev.is_partial(), "zero budget must interrupt the mutation");
        assert_eq!(kb.epoch(), 0);
        let m = kb.model("penguin_view").unwrap().clone();
        assert_eq!(
            kb.render(&m),
            before,
            "an interrupted mutation must not change the KB"
        );
        assert_eq!(
            kb.truth("penguin_view", "fly(sparrow)").unwrap(),
            Truth::Undefined
        );
        // The same mutation succeeds unbudgeted afterwards.
        kb.assert_rule("bird", "bird(sparrow).").unwrap();
        assert_eq!(
            kb.truth("penguin_view", "fly(sparrow)").unwrap(),
            Truth::True
        );
        // Interrupted retract reports "not removed" and changes nothing.
        let ev = kb
            .retract_rule_with("bird", "bird(sparrow).", &QueryOptions::new().max_steps(0))
            .unwrap();
        assert!(ev.is_partial());
        assert!(!ev.value());
        assert_eq!(
            kb.truth("penguin_view", "fly(sparrow)").unwrap(),
            Truth::True
        );
    }

    #[test]
    fn flat_view_cached_per_epoch_and_invalidated_by_mutation() {
        let mut kb = penguin_kb(GroundStrategy::Smart);
        // Within one epoch the compiled arena is built once and reused.
        let fv1 = kb.flat_view("penguin_view").unwrap();
        let fv2 = kb.flat_view("penguin_view").unwrap();
        assert!(Arc::ptr_eq(&fv1, &fv2), "same epoch must reuse the arena");
        // Model computation goes through the same cache.
        kb.model("penguin_view").unwrap();
        let fv3 = kb.flat_view("penguin_view").unwrap();
        assert!(Arc::ptr_eq(&fv1, &fv3));
        // Distinct objects get distinct arenas.
        let fv_bird = kb.flat_view("bird").unwrap();
        assert!(!Arc::ptr_eq(&fv1, &fv_bird));
        // A mutation bumps the epoch and invalidates: the next access
        // compiles a fresh arena against the new ground program.
        kb.assert_rule("bird", "bird(sparrow).").unwrap();
        assert_eq!(kb.epoch(), 1);
        let fv4 = kb.flat_view("penguin_view").unwrap();
        assert!(
            !Arc::ptr_eq(&fv1, &fv4),
            "mutation must invalidate the cached arena"
        );
        // And answers stay correct against the fresh arena.
        assert_eq!(
            kb.truth("penguin_view", "fly(sparrow)").unwrap(),
            Truth::True
        );
    }

    /// Two objects with no isa relation and disjoint predicates: a
    /// mutation to one is invisible from the other.
    fn two_island_kb() -> Kb {
        let mut b = KbBuilder::new();
        b.rules("left", "p(a). q(X) :- p(X).").unwrap();
        b.rules("right", "r(z). s(X) :- r(X).").unwrap();
        b.build(GroundStrategy::Smart).unwrap()
    }

    #[test]
    fn untouched_component_keeps_arena_and_model_across_mutation() {
        // Regression for the over-broad invalidation in the mutation
        // path: `commit` used to clear the whole flat cache, so a write
        // to any object forced every reader-side component to recompile
        // its arena and recompute its model from scratch.
        let mut kb = two_island_kb();
        let left = kb.comp("left").unwrap();
        let right = kb.comp("right").unwrap();
        let left_fv = kb.flat_view("left").unwrap();
        let right_fv = kb.flat_view("right").unwrap();
        kb.model("left").unwrap();
        kb.model("right").unwrap();
        let left_model = kb.least_cache[&left].model.clone();

        kb.assert_rule("right", "r(w).").unwrap();
        assert_eq!(kb.epoch(), 1);

        // The untouched component's compiled arena survives by pointer…
        let left_fv2 = kb.flat_view("left").unwrap();
        assert!(
            Arc::ptr_eq(&left_fv, &left_fv2),
            "mutation to `right` must not invalidate `left`'s arena"
        );
        // …and so does its cached model (O(1) re-tag, no recompute).
        kb.model("left").unwrap();
        assert!(
            Arc::ptr_eq(&left_model, &kb.least_cache[&left].model),
            "mutation to `right` must not recompute `left`'s model"
        );
        // The touched component was patched eagerly (the entry is
        // present without an intervening query) and not served stale.
        assert!(kb.flat_cache.contains_key(&right));
        let right_fv2 = kb.flat_view("right").unwrap();
        assert!(!Arc::ptr_eq(&right_fv, &right_fv2));
        // Answers stay exact on both sides.
        assert_eq!(kb.truth("right", "s(w)").unwrap(), Truth::True);
        assert_eq!(kb.truth("right", "s(z)").unwrap(), Truth::True);
        assert_eq!(kb.truth("left", "q(a)").unwrap(), Truth::True);
    }

    #[test]
    fn stable_results_memo_hits_for_unaffected_views() {
        let mut kb = two_island_kb();
        // The islands are definite, so the profile-guided fast path
        // would answer `stable` from the least model without ever
        // touching the memo under test; disable it here.
        kb.set_profile_guided(false);
        let s1 = kb.stable("left").unwrap();
        // A write to `right` leaves `left`'s view version alone, so the
        // whole-result memo answers; a write to `left` moves it.
        kb.assert_rule("right", "r(w).").unwrap();
        let left = kb.comp("left").unwrap();
        assert_eq!(kb.stable_results[&left].0, kb.view_version(left));
        let s2 = kb.stable("left").unwrap();
        assert_eq!(s1, s2);
        kb.assert_rule("left", "p(b).").unwrap();
        assert_ne!(kb.stable_results[&left].0, kb.view_version(left));
        let s3 = kb.stable("left").unwrap();
        assert!(s3.len() == 1 && s3[0].literals().count() == 4);
    }

    #[test]
    fn profile_fast_paths_match_general_and_cache_revalidates() {
        let mut kb = penguin_kb(GroundStrategy::Smart);
        // penguin_view is stratified and order-relevant: the profile
        // proves exactly one stable model, so `stable` answers from
        // the least model without enumerating.
        let p = kb
            .component_profile("penguin_view")
            .unwrap()
            .expect("order is valid");
        assert!(p.single_model, "{}", p.summary());
        assert!(p.order_relevant, "{}", p.summary());
        let fast = kb.stable("penguin_view").unwrap();
        kb.set_profile_guided(false);
        let slow = kb.stable("penguin_view").unwrap();
        assert_eq!(fast, slow, "fast path must be byte-identical");
        kb.set_profile_guided(true);

        // Repeat lookups hit the cache (same Arc, no recompute)…
        let p_again = kb.component_profile("penguin_view").unwrap().unwrap();
        assert!(Arc::ptr_eq(&p, &p_again));

        // …until a mutation bumps the view version, after which the
        // recomputed profile agrees with a from-scratch analysis.
        kb.assert_rule("bird", "bird(ostrich).").unwrap();
        let p2 = kb.component_profile("penguin_view").unwrap().unwrap();
        assert!(!Arc::ptr_eq(&p, &p2), "stale profile must be dropped");
        let c = kb.comp("penguin_view").unwrap();
        let order = kb.prog.order().expect("order stays valid");
        let fresh = olp_analyze::component_profile(&kb.prog, &order, c);
        assert_eq!(*p2, fresh, "revalidated profile == scratch analysis");
        assert_eq!(
            kb.truth("penguin_view", "fly(ostrich)").unwrap(),
            Truth::True
        );
    }

    #[test]
    fn model_caching_is_per_object() {
        let mut kb = penguin_kb(GroundStrategy::Exhaustive);
        let m1 = kb.model("bird").unwrap().clone();
        let m2 = kb.model("penguin_view").unwrap().clone();
        assert_ne!(m1, m2);
        // Second access hits the cache (same result).
        assert_eq!(kb.model("bird").unwrap(), &m1);
    }
}
