//! Durable knowledge bases: a [`Kb`] backed by an `olp-store` database.
//!
//! [`DurableKb`] wraps a [`Kb`] and a [`Db`] so that every committed
//! mutation is appended to the write-ahead log (fsync'd per the
//! [`Durability`] policy) and the snapshot is refreshed by periodic
//! compaction. Opening a database is **decode + replay**: the snapshot
//! restores the interned arenas and the ground program without
//! re-parsing or re-grounding, and the WAL suffix is replayed through
//! the ordinary incremental mutation path ([`Kb::assert_rule`] /
//! [`Kb::retract_rule`] — parser, validation, delta grounder), so a
//! recovered KB is produced by exactly the machinery that produced the
//! original.
//!
//! The write protocol is *apply-then-log*: a mutation is validated and
//! applied to the in-memory KB first, and appended to the WAL only
//! once it has succeeded. A crash between apply and append loses an
//! **unacknowledged** op (the call never returned); a crash after the
//! append is recovered by replay. Ops that fail validation are never
//! logged, so replay cannot fail on well-formed databases.
//!
//! These open semantics are what a long-running `olp serve` process
//! needs: open once at startup (crash recovery included), log per
//! committed mutation, compact in the background, `sync` on demand.

use crate::kb::{Kb, KbError, QueryOptions};
use olp_core::Eval;
use olp_store::wal::WalOpKind;
use olp_store::{Db, Durability, StoreError, WalOp};
use std::ops::{Deref, DerefMut};
use std::path::Path;

/// Compact once the WAL holds this many ops, unless reconfigured with
/// [`DurableKb::set_compact_every`].
pub const DEFAULT_COMPACT_EVERY: u64 = 1024;

/// What [`DurableKb::open`] had to do to recover.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// WAL ops replayed on top of the snapshot.
    pub replayed: usize,
    /// Bytes of torn/corrupt WAL tail dropped (0 on a clean shutdown).
    pub wal_dropped_bytes: u64,
    /// Why the WAL scan stopped early, if it did.
    pub wal_torn: Option<&'static str>,
}

/// A [`Kb`] whose mutations are durably logged to a database directory.
///
/// Dereferences to [`Kb`] for queries; the mutation entry points are
/// shadowed so they append to the WAL after applying. Mutating through
/// [`DurableKb::kb_mut`] bypasses the log — only do that for state you
/// are prepared to lose.
#[derive(Debug)]
pub struct DurableKb {
    kb: Kb,
    db: Db,
    compact_every: u64,
}

impl Deref for DurableKb {
    type Target = Kb;
    fn deref(&self) -> &Kb {
        &self.kb
    }
}

impl DerefMut for DurableKb {
    fn deref_mut(&mut self) -> &mut Kb {
        &mut self.kb
    }
}

impl DurableKb {
    /// Creates a new database at `dir` from an existing in-memory KB
    /// (snapshot written atomically, WAL empty). An existing database
    /// at `dir` is replaced.
    pub fn create(dir: &Path, kb: Kb, policy: Durability) -> Result<DurableKb, KbError> {
        let db = Db::create(dir, kb.world(), kb.program(), kb.ground_program(), policy)?;
        Ok(DurableKb {
            kb,
            db,
            compact_every: DEFAULT_COMPACT_EVERY,
        })
    }

    /// Opens the database at `dir`: decodes the snapshot (no re-parse,
    /// no re-ground), truncates any torn WAL tail, and replays the
    /// logged suffix through the incremental mutation path.
    pub fn open(dir: &Path, policy: Durability) -> Result<(DurableKb, RecoveryReport), KbError> {
        let opened = Db::open(dir, policy)?;
        let snap = opened.snapshot;
        let mut kb = Kb::from_ground_parts(snap.world, snap.prog, snap.ground);
        let report = RecoveryReport {
            replayed: opened.replay.len(),
            wal_dropped_bytes: opened.wal_scan.dropped_bytes,
            wal_torn: opened.wal_scan.torn,
        };
        for (index, rec) in opened.replay.iter().enumerate() {
            let res = match rec.op.kind {
                WalOpKind::Assert => kb.assert_rule(&rec.op.object, &rec.op.rule).map(|()| true),
                WalOpKind::Retract => kb.retract_rule(&rec.op.object, &rec.op.rule),
            };
            match res {
                Ok(_) => {}
                Err(e) => {
                    // A logged op that no longer applies means the
                    // snapshot and log disagree — surface it as a
                    // storage-level failure, never a silent skip.
                    return Err(KbError::Store(StoreError::Replay {
                        index,
                        detail: e.to_string(),
                    }));
                }
            }
        }
        Ok((
            DurableKb {
                kb,
                db: opened.db,
                compact_every: DEFAULT_COMPACT_EVERY,
            },
            report,
        ))
    }

    /// Asserts a rule and logs it. See [`Kb::assert_rule`].
    pub fn assert_rule(&mut self, object: &str, src: &str) -> Result<(), KbError> {
        self.assert_rule_with(object, src, &QueryOptions::new())
            .map(|ev| ev.expect_complete("unlimited assert cannot be interrupted"))
    }

    /// [`Kb::assert_rule_with`], plus WAL logging on commit. An
    /// interrupted (not-applied) mutation is not logged. A logging
    /// failure is reported as [`KbError::Store`]; the mutation is then
    /// applied in memory but **not durable** until a later op or
    /// [`DurableKb::save`] succeeds.
    pub fn assert_rule_with(
        &mut self,
        object: &str,
        src: &str,
        opts: &QueryOptions,
    ) -> Result<Eval<()>, KbError> {
        let ev = self.kb.assert_rule_with(object, src, opts)?;
        if ev.is_complete() {
            self.db.log(WalOp {
                kind: WalOpKind::Assert,
                object: object.to_string(),
                rule: src.to_string(),
            })?;
            self.maybe_compact()?;
        }
        Ok(ev)
    }

    /// Retracts a rule and logs the retraction (only when a rule was
    /// actually removed). See [`Kb::retract_rule`].
    pub fn retract_rule(&mut self, object: &str, src: &str) -> Result<bool, KbError> {
        self.retract_rule_with(object, src, &QueryOptions::new())
            .map(|ev| ev.expect_complete("unlimited retract cannot be interrupted"))
    }

    /// [`Kb::retract_rule_with`], plus WAL logging on commit.
    pub fn retract_rule_with(
        &mut self,
        object: &str,
        src: &str,
        opts: &QueryOptions,
    ) -> Result<Eval<bool>, KbError> {
        let ev = self.kb.retract_rule_with(object, src, opts)?;
        if ev.is_complete() && *ev.value() {
            self.db.log(WalOp {
                kind: WalOpKind::Retract,
                object: object.to_string(),
                rule: src.to_string(),
            })?;
            self.maybe_compact()?;
        }
        Ok(ev)
    }

    fn maybe_compact(&mut self) -> Result<(), StoreError> {
        if self.db.ops_since_snapshot() >= self.compact_every {
            self.db
                .compact(self.kb.world(), self.kb.program(), self.kb.ground_program())?;
        }
        Ok(())
    }

    /// Forces a snapshot of the current state and resets the WAL
    /// (manual compaction).
    pub fn save(&mut self) -> Result<(), KbError> {
        self.db
            .compact(self.kb.world(), self.kb.program(), self.kb.ground_program())?;
        Ok(())
    }

    /// Writes a standalone copy of the current state as a fresh
    /// database at `dir` (this handle keeps using its own directory).
    pub fn save_to(&self, dir: &Path, policy: Durability) -> Result<(), KbError> {
        Db::create(
            dir,
            self.kb.world(),
            self.kb.program(),
            self.kb.ground_program(),
            policy,
        )?;
        Ok(())
    }

    /// Forces every logged op to stable storage regardless of policy.
    pub fn sync(&mut self) -> Result<(), KbError> {
        self.db.sync()?;
        Ok(())
    }

    /// Sequence number of the last durably logged op.
    pub fn seq(&self) -> u64 {
        self.db.seq()
    }

    /// Ops logged since the last snapshot.
    pub fn ops_since_snapshot(&self) -> u64 {
        self.db.ops_since_snapshot()
    }

    /// Compaction threshold (ops in the WAL before a snapshot is
    /// folded). `u64::MAX` disables automatic compaction.
    pub fn set_compact_every(&mut self, every: u64) {
        self.compact_every = every.max(1);
    }

    /// The underlying store handle.
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// Mutable access to the wrapped [`Kb`]. Mutations through this
    /// reference are **not logged**.
    pub fn kb_mut(&mut self) -> &mut Kb {
        &mut self.kb
    }

    /// Consumes the handle, returning the in-memory KB (the database
    /// files stay on disk).
    pub fn into_kb(self) -> Kb {
        self.kb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::{GroundStrategy, KbBuilder};
    use olp_core::Truth;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("olp-durable-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn bird_kb() -> Kb {
        let mut b = KbBuilder::new();
        b.rules("bird", "bird(penguin). bird(pigeon). fly(X) :- bird(X).")
            .unwrap();
        b.isa("penguins", "bird");
        b.rules(
            "penguins",
            "ground_animal(penguin). -fly(X) :- ground_animal(X).",
        )
        .unwrap();
        b.build(GroundStrategy::Smart).unwrap()
    }

    #[test]
    fn create_mutate_reopen_round_trips_models() {
        let dir = tmpdir("roundtrip");
        let mut d = DurableKb::create(&dir, bird_kb(), Durability::OnCommit).unwrap();
        d.assert_rule("bird", "bird(sparrow).").unwrap();
        assert!(d
            .retract_rule("penguins", "ground_animal(penguin).")
            .unwrap());
        assert!(!d.retract_rule("penguins", "ground_animal(dodo).").unwrap());
        assert_eq!(d.seq(), 2, "the no-op retract is not logged");
        let expect = {
            let m = d.model("penguins").unwrap().clone();
            (
                d.render(&m),
                d.truth("penguins", "fly(penguin)").unwrap(),
                d.truth("penguins", "fly(sparrow)").unwrap(),
            )
        };
        drop(d);

        let (mut d, report) = DurableKb::open(&dir, Durability::OnCommit).unwrap();
        assert_eq!(report.replayed, 2);
        assert_eq!(report.wal_dropped_bytes, 0);
        let m = d.model("penguins").unwrap().clone();
        assert_eq!(d.render(&m), expect.0);
        assert_eq!(d.truth("penguins", "fly(penguin)").unwrap(), expect.1);
        assert_eq!(d.truth("penguins", "fly(sparrow)").unwrap(), expect.2);
        // Mutations keep working (and keep being logged) after reopen.
        d.assert_rule("penguins", "ground_animal(sparrow).")
            .unwrap();
        assert_eq!(d.truth("penguins", "fly(sparrow)").unwrap(), Truth::False);
        assert_eq!(d.seq(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_is_transparent() {
        let dir = tmpdir("compact");
        let mut d = DurableKb::create(&dir, bird_kb(), Durability::Batched).unwrap();
        d.set_compact_every(4);
        for i in 0..10 {
            d.assert_rule("bird", &format!("bird(b{i}).")).unwrap();
        }
        assert!(
            d.ops_since_snapshot() < 4,
            "auto-compaction kept the WAL short"
        );
        drop(d);
        let (mut d, report) = DurableKb::open(&dir, Durability::OnCommit).unwrap();
        assert!(report.replayed < 4);
        for i in 0..10 {
            assert_eq!(d.truth("bird", &format!("fly(b{i})")).unwrap(), Truth::True);
        }
        assert_eq!(d.seq(), 10, "sequence numbers survive compaction");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_and_save_to_snapshot_now() {
        let dir = tmpdir("save");
        let copy = tmpdir("save-copy");
        let mut d = DurableKb::create(&dir, bird_kb(), Durability::Off).unwrap();
        d.assert_rule("bird", "bird(sparrow).").unwrap();
        d.save().unwrap();
        assert_eq!(d.ops_since_snapshot(), 0);
        d.save_to(&copy, Durability::Off).unwrap();
        drop(d);
        for p in [&dir, &copy] {
            let (mut d, report) = DurableKb::open(p, Durability::Off).unwrap();
            assert_eq!(report.replayed, 0, "snapshot already holds everything");
            assert_eq!(d.truth("bird", "fly(sparrow)").unwrap(), Truth::True);
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&copy).ok();
    }

    #[test]
    fn interrupted_mutation_is_not_logged() {
        let dir = tmpdir("interrupted");
        let mut d = DurableKb::create(&dir, bird_kb(), Durability::OnCommit).unwrap();
        let ev = d
            .assert_rule_with("bird", "bird(sparrow).", &QueryOptions::new().max_steps(0))
            .unwrap();
        assert!(ev.is_partial());
        assert_eq!(d.seq(), 0);
        drop(d);
        let (d, report) = DurableKb::open(&dir, Durability::OnCommit).unwrap();
        assert_eq!(report.replayed, 0);
        assert_eq!(d.epoch(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_errors_are_real_errors() {
        use std::error::Error as _;
        let dir = tmpdir("missing");
        let err = DurableKb::open(&dir, Durability::OnCommit).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("not a KB database") || msg.contains("failed to"),
            "{msg}"
        );
        // KbError::Store chains to the StoreError for programmatic
        // inspection.
        assert!(matches!(err, KbError::Store(_)));
        if let KbError::Store(ref s) = err {
            let _ = s; // the source chain is exercised below
        }
        assert!(err.source().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
