//! # olp-transform — the paper's program transformations (§3–§4)
//!
//! * [`ordered_version`] — `OV(C)`: a seminegative program under an
//!   explicit closed-world component.
//! * [`extended_version`] — `EV(C)`: adds reflexive rules so *all*
//!   3-valued models are captured (Prop. 5).
//! * [`three_level_version`] — `3V(C)`: negative programs with negative
//!   rules as exceptions to general rules (§4, Def. 10).
//! * [`direct`] — the equivalent direct semantics (Def. 11, Thm. 2)
//!   stated purely in classical terms.
//!
//! The correspondence results (Props. 3–5, Cor. 1, Thm. 2) are
//! validated mechanically in this crate's tests and in the workspace
//! `tests/transform_correspondence.rs` suite.
//!
//! ```
//! use olp_core::World;
//! use olp_ground::{ground_exhaustive, GroundConfig};
//! use olp_parser::{parse_ground_literal, parse_program};
//! use olp_semantics::{least_model, View};
//! use olp_transform::ordered_version;
//!
//! // Example 6: the ancestor program under the explicit closed-world
//! // assumption OV(C).
//! let mut w = World::new();
//! let flat = parse_program(&mut w, "
//!     parent(a,b). parent(b,c).
//!     anc(X,Y) :- parent(X,Y).
//!     anc(X,Y) :- parent(X,Z), anc(Z,Y).
//! ").unwrap();
//! let rules = flat.components[0].rules.clone();
//! let (ov, c) = ordered_version(&mut w, &rules);
//! let g = ground_exhaustive(&mut w, &ov, &GroundConfig::default()).unwrap();
//! let m = least_model(&View::new(&g, c));
//! assert!(m.is_total(g.n_atoms));
//! let q = parse_ground_literal(&mut w, "-anc(c,a)").unwrap();
//! assert!(m.holds(q), "closed world: anc(c,a) is false");
//! ```

#![warn(missing_docs)]

pub mod direct;
pub mod versions;

pub use direct::{
    assumption_free_models_direct, greatest_assumption_set_direct, is_assumption_free_direct,
    is_model_direct, stable_models_direct,
};
pub use versions::{
    extended_version, ordered_version, ordered_version_ground_cwa, three_level_version,
};
