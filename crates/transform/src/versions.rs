//! The paper's program transformations: `OV(C)`, `EV(C)`, `3V(C)`.
//!
//! * **Ordered version** `OV(C) = ⟨{¬B_C, C}, {C < ¬B_C}⟩` (§3): a CWA
//!   component sits *above* the program — "every element of the
//!   Herbrand base is false unless its truth is proved". We emit the
//!   reduced (non-ground) form: one rule `¬p(X1,…,Xn).` per predicate,
//!   so `|OV(C)|` is polynomial in `|C|` (the paper's size claim,
//!   measured in the `transform` bench).
//! * **Extended version** `EV(C)` (§3): `OV(C)` plus a *reflexive rule*
//!   `p(X…) ← p(X…)` per predicate in the lower component. Reflexive
//!   rules are never-blocked potential overrulers of the CWA facts, so
//!   an atom may stay undefined instead of defaulting to false — this
//!   is what lets `EV` capture **all** 3-valued models (Prop. 5a).
//! * **3-level version** `3V(C)` (§4) for negative programs:
//!   `⟨{¬B_C, C⁺, C⁻}, {C⁻ < C⁺ < ¬B_C, C⁻ < ¬B_C}⟩` where `C⁺` holds
//!   the seminegative rules plus all reflexive rules and `C⁻` holds the
//!   negative rules — negative rules become *exceptions* that overrule
//!   the general rules above them. The meaning is taken in `C⁻`.

use olp_core::{
    BodyItem, CompId, FxHashSet, Literal, OrderedProgram, PredId, Rule, Sign, Sym, Term, World,
};

/// Collects every predicate occurring in `rules` (heads and bodies).
fn predicates(rules: &[Rule]) -> Vec<PredId> {
    let mut seen = FxHashSet::default();
    let mut out = Vec::new();
    let mut push = |p: PredId| {
        if seen.insert(p) {
            out.push(p);
        }
    };
    for r in rules {
        push(r.head.pred);
        for l in r.body_lits() {
            push(l.pred);
        }
    }
    out
}

/// Fresh variable arguments `V1,…,Vn` for a predicate of arity `n`.
fn fresh_args(world: &mut World, arity: u32) -> Vec<Term> {
    (1..=arity)
        .map(|i| Term::Var(world.syms.intern(&format!("V{i}"))))
        .collect()
}

/// The CWA rule `¬p(V1,…,Vn).` for predicate `p`.
fn cwa_rule(world: &mut World, pred: PredId) -> Rule {
    let arity = world.preds.arity(pred);
    Rule::fact(Literal::neg(pred, fresh_args(world, arity)))
}

/// The reflexive rule `p(V…) ← p(V…).` for predicate `p`.
fn reflexive_rule(world: &mut World, pred: PredId) -> Rule {
    let arity = world.preds.arity(pred);
    let args = fresh_args(world, arity);
    Rule::new(
        Literal::pos(pred, args.clone()),
        vec![BodyItem::Lit(Literal::pos(pred, args))],
    )
}

/// Builds `OV(C)`. Returns the program and the component (`C`) in which
/// its meaning is taken.
pub fn ordered_version(world: &mut World, rules: &[Rule]) -> (OrderedProgram, CompId) {
    let mut prog = OrderedProgram::new();
    let c = prog.add_component(world.syms.intern("c"));
    let cwa = prog.add_component(world.syms.intern("cwa"));
    prog.add_edge(c, cwa);
    for r in rules {
        prog.add_rule(c, r.clone());
    }
    for p in predicates(rules) {
        let r = cwa_rule(world, p);
        prog.add_rule(cwa, r);
    }
    (prog, c)
}

/// Builds `OV(C)` with the closed-world component written out
/// **ground**: one fact `¬p(t…)` per element of the (materialised)
/// Herbrand base over `constants`, instead of the reduced non-ground
/// form. Semantically identical to [`ordered_version`] for function-free
/// programs over exactly those constants; the source blows up from
/// `O(preds)` to `O(preds · |HU|^arity)` — this is the §3 size claim's
/// strawman, kept for the `transform` bench ablation (#5 in DESIGN.md).
pub fn ordered_version_ground_cwa(
    world: &mut World,
    rules: &[Rule],
    constants: &[Sym],
) -> (OrderedProgram, CompId) {
    let mut prog = OrderedProgram::new();
    let c = prog.add_component(world.syms.intern("c"));
    let cwa = prog.add_component(world.syms.intern("cwa"));
    prog.add_edge(c, cwa);
    for r in rules {
        prog.add_rule(c, r.clone());
    }
    for p in predicates(rules) {
        let arity = world.preds.arity(p) as usize;
        // Cartesian enumeration of constant tuples.
        let mut idx = vec![0usize; arity];
        loop {
            let args: Vec<Term> = idx.iter().map(|&i| Term::Const(constants[i])).collect();
            prog.add_rule(cwa, Rule::fact(Literal::neg(p, args)));
            if arity == 0 {
                break;
            }
            let mut k = 0;
            loop {
                if k == arity {
                    break;
                }
                idx[k] += 1;
                if idx[k] < constants.len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
            if k == arity {
                break;
            }
        }
    }
    (prog, c)
}

/// Builds `EV(C)`: `OV(C)` plus reflexive rules in `C`.
pub fn extended_version(world: &mut World, rules: &[Rule]) -> (OrderedProgram, CompId) {
    let (mut prog, c) = ordered_version(world, rules);
    for p in predicates(rules) {
        let r = reflexive_rule(world, p);
        prog.add_rule(c, r);
    }
    (prog, c)
}

/// Builds `3V(C)` for a negative program. Returns the program and the
/// component (`C⁻`) in which its meaning is taken.
pub fn three_level_version(world: &mut World, rules: &[Rule]) -> (OrderedProgram, CompId) {
    let mut prog = OrderedProgram::new();
    let cminus = prog.add_component(world.syms.intern("c_minus"));
    let cplus = prog.add_component(world.syms.intern("c_plus"));
    let cwa = prog.add_component(world.syms.intern("cwa"));
    prog.add_edge(cminus, cplus);
    prog.add_edge(cplus, cwa);
    prog.add_edge(cminus, cwa);
    for r in rules {
        if r.head.sign == Sign::Pos {
            prog.add_rule(cplus, r.clone());
        } else {
            prog.add_rule(cminus, r.clone());
        }
    }
    for p in predicates(rules) {
        let refl = reflexive_rule(world, p);
        prog.add_rule(cplus, refl);
        let cwa_r = cwa_rule(world, p);
        prog.add_rule(cwa, cwa_r);
    }
    (prog, cminus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use olp_core::Truth;
    use olp_ground::{ground_exhaustive, GroundConfig};
    use olp_parser::{parse_ground_literal, parse_program};
    use olp_semantics::{least_model, View};

    /// Parses a plain (single-module) program into a rule list.
    fn rules_of(world: &mut World, src: &str) -> Vec<Rule> {
        let p = parse_program(world, src).unwrap();
        assert_eq!(p.components.len(), 1, "plain program expected");
        p.components.into_iter().next().unwrap().rules
    }

    #[test]
    fn example6_ancestor_ov() {
        // OV of the ancestor program: CWA gives -parent/-anc defaults,
        // facts and derivations override them.
        let mut w = World::new();
        let rules = rules_of(
            &mut w,
            "parent(a,b). parent(b,c).
             anc(X,Y) :- parent(X,Y).
             anc(X,Y) :- parent(X,Z), anc(Z,Y).",
        );
        let (ov, c) = ordered_version(&mut w, &rules);
        assert_eq!(ov.components.len(), 2);
        // Reduced form: one CWA rule per predicate (parent, anc).
        assert_eq!(ov.components[1].rules.len(), 2);
        let g = ground_exhaustive(&mut w, &ov, &GroundConfig::default()).unwrap();
        let m = least_model(&View::new(&g, c));
        let anc_ac = parse_ground_literal(&mut w, "anc(a,c)").unwrap();
        let anc_ca = parse_ground_literal(&mut w, "-anc(c,a)").unwrap();
        assert!(m.holds(anc_ac));
        assert!(m.holds(anc_ca), "CWA: anc(c,a) is false");
        assert!(m.is_total(g.n_atoms), "OV least model is total here");
    }

    #[test]
    fn example7_ov_vs_ev_on_p_not_p() {
        // C = { p :- -p }. In OV(C): the CWA fact -p is *overruled* by
        // nothing? The rule p :- -p is in C (lower), so it can overrule
        // -p; it is non-blocked until p or -p decides. The paper: {p} is
        // a 3-valued model of C but NOT a model of OV(C) in C.
        let mut w = World::new();
        let rules = rules_of(&mut w, "p :- -p.");
        let (ov, c) = ordered_version(&mut w, &rules);
        let g = ground_exhaustive(&mut w, &ov, &GroundConfig::default()).unwrap();
        let v = View::new(&g, c);
        let p_lit = parse_ground_literal(&mut w, "p").unwrap();
        let m_p = olp_core::Interpretation::from_literals([p_lit]).unwrap();
        assert!(!olp_semantics::is_model(&v, &m_p, g.n_atoms));

        // In EV(C) the reflexive rule p :- p lets p stay undefined:
        // {p} IS a model of EV(C) in C (Prop. 5a: EV captures all
        // 3-valued models).
        let mut w2 = World::new();
        let rules2 = rules_of(&mut w2, "p :- -p.");
        let (ev, c2) = extended_version(&mut w2, &rules2);
        let g2 = ground_exhaustive(&mut w2, &ev, &GroundConfig::default()).unwrap();
        let v2 = View::new(&g2, c2);
        let p2 = parse_ground_literal(&mut w2, "p").unwrap();
        let m_p2 = olp_core::Interpretation::from_literals([p2]).unwrap();
        assert!(olp_semantics::is_model(&v2, &m_p2, g2.n_atoms));
    }

    #[test]
    fn example8_two_level_is_poor_for_negative_programs() {
        // Fig./Example 8: with OV (two levels) the flying abilities of a
        // ground bird are defeated — nothing derivable about fly.
        let mut w = World::new();
        let rules = rules_of(
            &mut w,
            "bird(tweety). ground_animal(tweety).
             fly(X) :- bird(X).
             -fly(X) :- ground_animal(X).",
        );
        let (ov, c) = ordered_version(&mut w, &rules);
        let g = ground_exhaustive(&mut w, &ov, &GroundConfig::default()).unwrap();
        let m = least_model(&View::new(&g, c));
        let fly = parse_ground_literal(&mut w, "fly(tweety)").unwrap();
        assert_eq!(m.value(fly.atom()), Truth::Undefined);
    }

    #[test]
    fn example9_three_level_exceptions_work() {
        // 3V: the negative rule is an exception below the general rule:
        // a ground animal that is also a bird does NOT fly.
        let mut w = World::new();
        let rules = rules_of(
            &mut w,
            "bird(tweety). ground_animal(tweety). bird(robin).
             fly(X) :- bird(X).
             -fly(X) :- ground_animal(X).",
        );
        let (tv, cminus) = three_level_version(&mut w, &rules);
        assert_eq!(tv.components.len(), 3);
        let g = ground_exhaustive(&mut w, &tv, &GroundConfig::default()).unwrap();
        let v = View::new(&g, cminus);
        // The CWA facts are permanently overruled by the (never-blocked)
        // reflexive rules in the least fixpoint, so the *stable* models
        // carry the intended meaning of 3V programs (Def. 10c).
        let stable = olp_semantics::stable_models(&v, g.n_atoms);
        assert_eq!(stable.len(), 1, "unique stable model expected");
        let m = &stable[0];
        let fly_t = parse_ground_literal(&mut w, "fly(tweety)").unwrap();
        let fly_r = parse_ground_literal(&mut w, "fly(robin)").unwrap();
        assert!(m.holds(fly_t.complement()), "tweety does not fly");
        assert!(m.holds(fly_r), "robin flies");
        // The least model still derives the exception for tweety.
        let lm = least_model(&v);
        assert!(lm.holds(fly_t.complement()));
    }

    #[test]
    fn three_level_structure() {
        let mut w = World::new();
        let rules = rules_of(&mut w, "p :- q. -p :- r. q. r.");
        let (tv, cminus) = three_level_version(&mut w, &rules);
        let order = tv.order().unwrap();
        let cplus = CompId(1);
        let cwa = CompId(2);
        assert!(order.lt(cminus, cplus));
        assert!(order.lt(cplus, cwa));
        assert!(order.lt(cminus, cwa));
        // C- holds only the negative rule.
        assert_eq!(tv.components[cminus.index()].rules.len(), 1);
        // C+ holds 3 seminegative rules + 3 reflexive (p, q, r).
        assert_eq!(tv.components[cplus.index()].rules.len(), 6);
        // CWA: 3 predicates.
        assert_eq!(tv.components[cwa.index()].rules.len(), 3);
    }

    #[test]
    fn ground_cwa_variant_is_semantically_identical() {
        use olp_semantics::{least_model, View};
        let src = "p(a). p(b). q(X) :- p(X). r(X) :- q(X), -s(X).";
        let mut w1 = World::new();
        let rules1 = rules_of(&mut w1, src);
        let (ov, c1) = ordered_version(&mut w1, &rules1);
        let g1 = ground_exhaustive(&mut w1, &ov, &GroundConfig::default()).unwrap();
        let m1 = least_model(&View::new(&g1, c1));

        let mut w2 = World::new();
        let rules2 = rules_of(&mut w2, src);
        let consts = [w2.syms.intern("a"), w2.syms.intern("b")];
        let (ovg, c2) = ordered_version_ground_cwa(&mut w2, &rules2, &consts);
        let g2 = ground_exhaustive(&mut w2, &ovg, &GroundConfig::default()).unwrap();
        let m2 = least_model(&View::new(&g2, c2));
        assert_eq!(m1.render(&w1), m2.render(&w2));
        // But the source sizes differ: reduced = 1 CWA rule per pred,
        // ground = |HU|^arity facts per pred.
        assert!(ovg.rule_count() > ov.rule_count());
    }

    #[test]
    fn ov_size_is_linear_in_predicates() {
        // The §3 claim: the reduced OV adds one rule per predicate, not
        // one per Herbrand-base element.
        let mut w = World::new();
        let rules = rules_of(&mut w, "p(a). p(b). p(c). p(d). q(X,Y) :- p(X), p(Y).");
        let (ov, _) = ordered_version(&mut w, &rules);
        assert_eq!(ov.components[1].rules.len(), 2); // p/1 and q/2 only
    }
}
