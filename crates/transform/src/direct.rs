//! The direct semantics of negative programs (Definition 11,
//! Theorem 2).
//!
//! §4 gives negative programs a semantics *without* referring to
//! ordered programs, using only classical notions:
//!
//! * `I` is a **model** iff every ground rule `r` satisfies
//!   `value(H(r)) ≥ value(B(r))` — or there is an **exception**: `H(r)`
//!   is false in `I` and some *negative* rule `r̂` with
//!   `H(r̂) = ¬H(r)` has a true body;
//! * a subset `X ⊆ I⁺` is an **assumption set** iff every rule deriving
//!   a member has body value ≤ U or circularly depends on `X` (the
//!   Saccà–Zaniolo definition); `I` is assumption-free iff no non-empty
//!   subset of `I⁺` is one;
//! * **stable** = maximal assumption-free.
//!
//! Theorem 2 states these coincide with the 3-level semantics
//! (Definition 10); `tests/` and the root `transform_correspondence`
//! suite check the equivalence mechanically on the paper's examples and
//! on random negative programs.

use olp_core::{AtomId, BitSet, FxHashSet, GLit, Interpretation, Sign, Truth};
use olp_ground::GroundRule;

fn truth_rank(t: Truth) -> u8 {
    match t {
        Truth::False => 0,
        Truth::Undefined => 1,
        Truth::True => 2,
    }
}

/// `value(L)` of a ground literal under `i` (classical negation:
/// `value(¬A)` is the complement of `value(A)`).
pub fn lit_value(i: &Interpretation, l: GLit) -> Truth {
    let v = i.value(l.atom());
    match (l.sign(), v) {
        (Sign::Pos, v) => v,
        (Sign::Neg, Truth::True) => Truth::False,
        (Sign::Neg, Truth::False) => Truth::True,
        (Sign::Neg, Truth::Undefined) => Truth::Undefined,
    }
}

/// `value(B(r))`: minimum over body literals; `T` when empty.
pub fn body_value(i: &Interpretation, r: &GroundRule) -> Truth {
    let mut min = Truth::True;
    for &b in r.body.iter() {
        let v = lit_value(i, b);
        if truth_rank(v) < truth_rank(min) {
            min = v;
        }
    }
    min
}

/// Definition 11(a): model of a flat ground negative program.
///
/// A violated rule (`value(H) < value(B)`) with a **positive** head can
/// be excused by an exception — a negative rule `r̂` with
/// `H(r̂) = ¬H(r)`:
///
/// * head **false**: the exception must be *applied* —
///   `value(B(r̂)) = T` (it re-confirms the falsity);
/// * head **undefined** (so `value(B(r)) = T`): the exception must be
///   *non-blocked* — `value(B(r̂)) ≥ U` (it suppresses the derivation
///   without firing).
///
/// The second case reconstructs the paper's terse Def. 11(a)(ii) so
/// that Theorem 2 (equivalence with the 3-level semantics, where an
/// applicable general rule may be *overruled* by a merely non-blocked
/// exception below it) actually holds; validated by the
/// `thm2_direct_equals_three_level` property test. Negative rules sit
/// at the bottom of `3V(C)` and are never excused.
pub fn is_model_direct(rules: &[GroundRule], i: &Interpretation) -> bool {
    rules.iter().all(|r| {
        let hv = lit_value(i, r.head);
        if truth_rank(hv) >= truth_rank(body_value(i, r)) {
            return true;
        }
        if !r.head.is_pos() {
            return false;
        }
        let needed = match hv {
            Truth::False => Truth::True,          // applied exception
            Truth::Undefined => Truth::Undefined, // non-blocked exception
            Truth::True => unreachable!("a true head is never violated"),
        };
        rules.iter().any(|ex| {
            !ex.head.is_pos()
                && ex.head == r.head.complement()
                && truth_rank(body_value(i, ex)) >= truth_rank(needed)
        })
    })
}

/// The greatest assumption set `X ⊆ I⁺` in the **literal** Definition
/// 11(b) / \[SZ\] sense (positive atoms only) — kept as stated in the
/// paper for reference and for the seminegative fragment, where it is
/// exact. For negative programs the primary assumption-freeness check
/// is [`is_assumption_free_direct`], which also demands support for
/// negative literals (see its documentation).
pub fn greatest_assumption_set_direct(rules: &[GroundRule], i: &Interpretation) -> Vec<AtomId> {
    let mut x: FxHashSet<AtomId> = i.pos_atoms().collect();
    loop {
        let mut removed = false;
        let members: Vec<AtomId> = x.iter().copied().collect();
        for a in members {
            let supported = rules.iter().any(|r| {
                r.head == GLit::pos(a)
                    && body_value(i, r) == Truth::True
                    && r.body
                        .iter()
                        .all(|b| !(b.is_pos() && x.contains(&b.atom())))
            });
            if supported {
                x.remove(&a);
                removed = true;
            }
        }
        if !removed {
            let mut out: Vec<AtomId> = x.into_iter().collect();
            out.sort_unstable();
            return out;
        }
    }
}

/// Definition 11(b), reconstructed: assumption-free model.
///
/// The literal Def. 11(b) restricts assumption sets to `X ⊆ I⁺` —
/// negative literals never need support. That reading contradicts the
/// 3-level semantics (Thm. 2's left side): under `3V(C)` a negative
/// literal is supported either by its **closed-world default** (enabled
/// only while every seminegative rule for the atom is blocked) or by an
/// applied **exception**. Property-test soaking produced a model where
/// the two sides disagree (`¬p2` held only by an *overruled* CWA
/// default; pinned in `thm2_negative_literals_need_support`), so this
/// checker mirrors the 3-level support structure exactly, stated in
/// flat classical terms:
///
/// * a **seminegative** rule supports its head when applied and no
///   negative rule with the complementary head is non-blocked (has no
///   false body literal);
/// * a **negative** rule supports its head when applied (exceptions are
///   unattackable);
/// * the **closed-world default** supports `¬A` when `¬A ∈ I` and every
///   seminegative rule for `A` has a false body literal.
///
/// `I` is assumption-free iff the `T`-closure of those supports rebuilds
/// `I` exactly. With this reading Theorem 2 holds (models, AF models
/// and stable models all coincide with `3V(C)`), validated at depth by
/// `thm2_direct_equals_three_level`.
pub fn is_assumption_free_direct(rules: &[GroundRule], i: &Interpretation) -> bool {
    // Atom universe of the flat program (B_C): atoms mentioned anywhere.
    let mut atoms: FxHashSet<AtomId> = FxHashSet::default();
    for r in rules {
        atoms.insert(r.head.atom());
        for &b in r.body.iter() {
            atoms.insert(b.atom());
        }
    }
    let non_blocked =
        |r: &GroundRule| -> bool { r.body.iter().all(|&b| lit_value(i, b) != Truth::False) };
    let applied = |r: &GroundRule| -> bool { i.holds(r.head) && body_value(i, r) == Truth::True };
    let mut enabled: Vec<(GLit, Box<[GLit]>)> = Vec::new();
    // Closed-world defaults.
    for &a in &atoms {
        let neg = GLit::neg(a);
        if i.holds(neg) {
            let overruled = rules
                .iter()
                .any(|r| r.head == GLit::pos(a) && non_blocked(r));
            if !overruled {
                enabled.push((neg, Box::new([])));
            }
        }
    }
    // Program rules.
    for r in rules {
        if !applied(r) {
            continue;
        }
        if r.head.is_pos() {
            let overruled = rules
                .iter()
                .any(|ex| !ex.head.is_pos() && ex.head == r.head.complement() && non_blocked(ex));
            if !overruled {
                enabled.push((r.head, r.body.clone()));
            }
        } else {
            enabled.push((r.head, r.body.clone()));
        }
    }
    // T-closure of the supports must rebuild I exactly.
    let mut derived: FxHashSet<GLit> = FxHashSet::default();
    loop {
        let mut changed = false;
        for (h, body) in &enabled {
            if !derived.contains(h) && body.iter().all(|b| derived.contains(b)) {
                derived.insert(*h);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    i.literals().all(|l| derived.contains(&l)) && derived.iter().all(|&l| i.holds(l))
}

/// Enumerates all assumption-free models (Def. 11 a+b) over the atoms
/// mentioned by the rules. Exponential; for validation suites.
pub fn assumption_free_models_direct(rules: &[GroundRule], n_atoms: usize) -> Vec<Interpretation> {
    let mut mentioned = BitSet::with_capacity(n_atoms);
    for r in rules {
        mentioned.insert(r.head.atom().index());
        for &b in r.body.iter() {
            mentioned.insert(b.atom().index());
        }
    }
    let atoms: Vec<AtomId> = mentioned.iter().map(|a| AtomId(a as u32)).collect();
    let mut out = Vec::new();
    let mut cur = Interpretation::with_capacity(n_atoms);
    fn rec(
        rules: &[GroundRule],
        atoms: &[AtomId],
        at: usize,
        cur: &mut Interpretation,
        out: &mut Vec<Interpretation>,
    ) {
        if at == atoms.len() {
            if is_model_direct(rules, cur) && is_assumption_free_direct(rules, cur) {
                out.push(cur.clone());
            }
            return;
        }
        let a = atoms[at];
        rec(rules, atoms, at + 1, cur, out);
        cur.insert(GLit::pos(a)).expect("fresh");
        rec(rules, atoms, at + 1, cur, out);
        cur.remove(GLit::pos(a));
        cur.insert(GLit::neg(a)).expect("fresh");
        rec(rules, atoms, at + 1, cur, out);
        cur.remove(GLit::neg(a));
    }
    rec(rules, &atoms, 0, &mut cur, &mut out);
    out
}

/// Definition 11(c): stable = maximal assumption-free.
pub fn stable_models_direct(rules: &[GroundRule], n_atoms: usize) -> Vec<Interpretation> {
    let af = assumption_free_models_direct(rules, n_atoms);
    af.iter()
        .filter(|m| !af.iter().any(|n| m.is_proper_subset(n)))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use olp_core::World;
    use olp_ground::{ground_exhaustive, GroundConfig};
    use olp_parser::{parse_ground_literal, parse_program};

    fn ground_flat(src: &str) -> (World, Vec<GroundRule>, usize) {
        let mut w = World::new();
        let p = parse_program(&mut w, src).unwrap();
        assert_eq!(p.components.len(), 1);
        let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).unwrap();
        let n = g.n_atoms;
        (w, g.rules, n)
    }

    #[test]
    fn exception_clause_allows_violation() {
        // fly(t) :- bird(t) violated when -fly(t) holds via the
        // exception -fly(X) :- ground_animal(X).
        let (mut w, rules, _) = ground_flat(
            "bird(tweety). ground_animal(tweety).
             fly(X) :- bird(X).
             -fly(X) :- ground_animal(X).",
        );
        let i = Interpretation::from_literals(
            ["bird(tweety)", "ground_animal(tweety)", "-fly(tweety)"]
                .iter()
                .map(|s| parse_ground_literal(&mut w, s).unwrap()),
        )
        .unwrap();
        assert!(is_model_direct(&rules, &i));
        assert!(is_assumption_free_direct(&rules, &i));
        // Without the exception rule, the same I is not a model.
        let rules_no_ex: Vec<GroundRule> =
            rules.iter().filter(|r| r.head.is_pos()).cloned().collect();
        assert!(!is_model_direct(&rules_no_ex, &i));
    }

    #[test]
    fn example9_colour_choice_stable_models() {
        // The paper glosses this program as "select exactly one of the
        // available non-ugly colours"; under Definition 11 as stated the
        // exception is stronger than the gloss: `-colored(grey)` is
        // *forced* (its body is true and exceptions are rules too),
        // which in turn makes the body of `colored(X) ← color(X),
        // ¬colored(grey), X ≠ grey` true for every other colour — so
        // the unique stable model colours every non-ugly colour. See
        // EXPERIMENTS.md (E10) for the derivation.
        let (w, rules, n) = ground_flat(
            "color(red). color(blue). color(grey).
             ugly_color(grey).
             colored(X) :- color(X), -colored(Y), X != Y.
             -colored(X) :- ugly_color(X).",
        );
        let stable = stable_models_direct(&rules, n);
        assert_eq!(stable.len(), 1);
        let r = stable[0].render(&w);
        assert!(r.contains("-colored(grey)"));
        assert!(r.contains("colored(red)"));
        assert!(r.contains("colored(blue)"));

        // Without an ugly colour the "select exactly one" reading holds
        // on the nose: two stable models, each colouring exactly one of
        // red/blue and refuting the other (negative literals need no
        // derivational support under Def. 11 — assumption sets range
        // over I⁺ only).
        let (w2, rules2, n2) = ground_flat(
            "color(red). color(blue).
             colored(X) :- color(X), -colored(Y), X != Y.",
        );
        let stable2 = stable_models_direct(&rules2, n2);
        let mut renders2: Vec<String> = stable2.iter().map(|m| m.render(&w2)).collect();
        renders2.sort();
        assert_eq!(
            renders2,
            vec![
                "{-colored(blue), color(blue), color(red), colored(red)}".to_string(),
                "{-colored(red), color(blue), color(red), colored(blue)}".to_string(),
            ]
        );
    }

    #[test]
    fn positive_head_violations_are_not_excepted() {
        // q. p :- q. with I = {q, -p}: violated, and the exception
        // clause needs a *negative rule* -p :- … with true body — there
        // is none, so not a model.
        let (mut w, rules, _) = ground_flat("q. p :- q.");
        let i = Interpretation::from_literals(
            ["q", "-p"]
                .iter()
                .map(|s| parse_ground_literal(&mut w, s).unwrap()),
        )
        .unwrap();
        assert!(!is_model_direct(&rules, &i));
    }

    #[test]
    fn assumption_sets_catch_circular_positive_support() {
        let (mut w, rules, _) = ground_flat("p :- q. q :- p.");
        let i = Interpretation::from_literals(
            ["p", "q"]
                .iter()
                .map(|s| parse_ground_literal(&mut w, s).unwrap()),
        )
        .unwrap();
        assert!(is_model_direct(&rules, &i));
        assert!(!is_assumption_free_direct(&rules, &i));
        assert_eq!(greatest_assumption_set_direct(&rules, &i).len(), 2);
    }

    #[test]
    fn undefined_bodies_do_not_support() {
        // p :- q with q undefined: {p} has body value U; X={p} is an
        // assumption set (condition value(B) ≤ U).
        let (mut w, rules, _) = ground_flat("p :- q.");
        let i =
            Interpretation::from_literals([parse_ground_literal(&mut w, "p").unwrap()]).unwrap();
        assert!(!is_assumption_free_direct(&rules, &i));
    }
}
