//! # olp-classic — classical logic programming baselines
//!
//! From-scratch implementations of the classical semantics the paper
//! compares against (§3): the immediate-consequence fixpoint for
//! positive programs, stratified negation with perfect models,
//! well-founded semantics (alternating fixpoint), total stable models
//! (Gelfond–Lifschitz, DPLL-style enumeration over the well-founded
//! residual), and Saccà–Zaniolo 3-valued founded / partial-stable
//! models, and the Fitting (Kripke–Kleene) 3-valued fixpoint.
//!
//! These serve two roles: *baselines* for the benchmark suite, and the
//! *right-hand side* of the paper's correspondence results
//! (Propositions 3–5, Corollary 1), which the `olp-transform` crate
//! validates mechanically.
//!
//! ```
//! use olp_core::{Truth, World};
//! use olp_ground::{ground_exhaustive, GroundConfig};
//! use olp_parser::{parse_ground_literal, parse_program};
//! use olp_classic::{well_founded_model, stable_models_total, NafProgram};
//!
//! let mut w = World::new();
//! let prog = parse_program(&mut w, "
//!     move(a,b). move(b,c).
//!     win(X) :- move(X,Y), -win(Y).
//! ").unwrap();
//! let g = ground_exhaustive(&mut w, &prog, &GroundConfig::default()).unwrap();
//! let p = NafProgram::from_ground(&g).unwrap();
//!
//! // b wins (it can move to the dead end c); a loses.
//! let wfm = well_founded_model(&p);
//! let win_b = parse_ground_literal(&mut w, "win(b)").unwrap();
//! assert_eq!(wfm.value(win_b.atom()), Truth::True);
//! assert_eq!(stable_models_total(&p).len(), 1);
//! ```

#![warn(missing_docs)]

pub mod fitting;
pub mod glstable;
pub mod graph;
pub mod naf;
pub mod partial;
pub mod stratified;
pub mod supported;
pub mod tp;
pub mod wfs;

pub use fitting::{fitting_model, fitting_step};
pub use glstable::{brave_stable, cautious_stable, is_stable_total, stable_models_total};
pub use graph::{DepGraph, Polarity};
pub use naf::{NafProgram, NafRule, NotSeminegative};
pub use partial::{
    body_value, founded_models, is_3valued_model, is_founded, partial_stable_models,
    positive_version,
};
pub use stratified::{is_stratified, perfect_model};
pub use supported::{is_supported, supported_models};
pub use tp::{gamma, least_model_positive};
pub use wfs::{alternating_fixpoint, greatest_unfounded_set, well_founded_model};
