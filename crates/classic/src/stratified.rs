//! Stratified programs and the perfect model (Apt–Blair–Walker \[ABW\],
//! Przymusinski \[P1, P2\]).
//!
//! A ground program is **stratified** when no dependency cycle passes
//! through a NAF edge. Stratified programs have a canonical *perfect
//! model*, computed stratum by stratum: within a stratum only positive
//! recursion remains, and NAF literals refer to strata already fully
//! evaluated (closed-world).

use crate::graph::{DepGraph, Polarity};
use crate::naf::NafProgram;
use olp_core::BitSet;

/// Whether `p` is stratified: no SCC of the dependency graph contains
/// an internal negative edge.
pub fn is_stratified(p: &NafProgram) -> bool {
    let g = DepGraph::new(p);
    let (scc_of, _) = g.sccs();
    for (a, edges) in g.edges.iter().enumerate() {
        for &(b, pol) in edges {
            if pol == Polarity::Negative && scc_of[a] == scc_of[b] {
                return false;
            }
        }
    }
    true
}

/// The perfect model of a stratified program, or `None` if `p` is not
/// stratified.
///
/// Evaluation: SCC ids from Tarjan come in reverse topological order
/// (dependencies first), so a single pass over components in id order
/// sees every NAF-referenced atom fully decided.
pub fn perfect_model(p: &NafProgram) -> Option<BitSet> {
    let g = DepGraph::new(p);
    let (scc_of, n_sccs) = g.sccs();
    // Reject non-stratified input.
    for (a, edges) in g.edges.iter().enumerate() {
        for &(b, pol) in edges {
            if pol == Polarity::Negative && scc_of[a] == scc_of[b] {
                return None;
            }
        }
    }
    // Group rules by the SCC of their head.
    let mut rules_of: Vec<Vec<u32>> = vec![Vec::new(); n_sccs];
    for (ri, r) in p.rules.iter().enumerate() {
        rules_of[scc_of[r.head.index()] as usize].push(ri as u32);
    }
    let mut m = BitSet::with_capacity(p.n_atoms);
    for comp_rules in &rules_of {
        // Within the stratum: positive fixpoint; NAF atoms are in lower
        // strata (or outside any cycle) and already decided — closed
        // world: not in `m` means false.
        loop {
            let mut changed = false;
            for &ri in comp_rules {
                let r = &p.rules[ri as usize];
                if m.contains(r.head.index()) {
                    continue;
                }
                let pos_ok = r.pos.iter().all(|a| m.contains(a.index()));
                let neg_ok = r.neg.iter().all(|a| !m.contains(a.index()));
                if pos_ok && neg_ok {
                    m.insert(r.head.index());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naf::testutil::{atom, naf};
    use crate::tp::gamma;
    use crate::wfs::well_founded_model;
    use olp_core::Truth;

    #[test]
    fn positive_programs_are_stratified() {
        let (_, p) = naf("p :- q. q :- p. r.");
        assert!(is_stratified(&p));
        let m = perfect_model(&p).unwrap();
        assert_eq!(m.len(), 1); // only r
    }

    #[test]
    fn negative_cycle_not_stratified() {
        let (_, p) = naf("p :- -q. q :- -p.");
        assert!(!is_stratified(&p));
        assert!(perfect_model(&p).is_none());
        // Odd loop too.
        let (_, p2) = naf("a :- -a.");
        assert!(!is_stratified(&p2));
    }

    #[test]
    fn negation_across_strata_is_fine() {
        let (mut w, p) = naf("q. p :- -q. r :- -s.");
        assert!(is_stratified(&p));
        let m = perfect_model(&p).unwrap();
        assert!(m.contains(atom(&mut w, "q").index()));
        assert!(!m.contains(atom(&mut w, "p").index()));
        assert!(m.contains(atom(&mut w, "r").index()));
    }

    #[test]
    fn perfect_model_matches_wfs_and_gamma_on_stratified() {
        // On stratified programs: perfect model = total WFS = unique
        // stable model (Γ fixpoint).
        for src in [
            "q. p :- -q. r :- -s.",
            "edge(a,b). edge(b,c). reach(a).
             reach(Y) :- reach(X), edge(X,Y).
             unreachable(X) :- node(X), -reach(X).
             node(a). node(b). node(c).",
            "even(zero).",
        ] {
            let (_, p) = naf(src);
            assert!(is_stratified(&p), "{src}");
            let pm = perfect_model(&p).unwrap();
            let wfm = well_founded_model(&p);
            assert!(wfm.is_total(p.n_atoms), "{src}: WFS not total");
            let wf_true: BitSet = wfm.pos_atoms().map(|a| a.index()).collect();
            assert_eq!(pm, wf_true, "{src}: perfect ≠ WFS");
            assert_eq!(gamma(&p, &pm), pm, "{src}: perfect not Γ-stable");
        }
    }

    #[test]
    fn mixed_recursion_positive_cycle_with_external_negation() {
        let (mut w, p) = naf("p :- q, -blocked. q :- p. seed :- -blocked.");
        // p/q positive cycle, negation points outside it: stratified.
        assert!(is_stratified(&p));
        let m = perfect_model(&p).unwrap();
        // blocked is false, but p/q remain unfounded (no base case).
        assert!(!m.contains(atom(&mut w, "p").index()));
        assert!(m.contains(atom(&mut w, "seed").index()));
        let wfm = well_founded_model(&p);
        assert_eq!(wfm.value(atom(&mut w, "p")), Truth::False);
    }
}
