//! Fitting (Kripke–Kleene) semantics \[FB\].
//!
//! The least fixpoint of the 3-valued immediate-consequence operator
//! `Φ`: an atom becomes **true** when some rule body is true, **false**
//! when *every* rule body is false (in particular: no rules at all).
//! Unlike the well-founded semantics it does not detect unfounded
//! positive loops (`p ← q, q ← p` stays undefined), so
//! `Fitting ⊆ WFS` as sets of literals.
//!
//! Reproduction note: this engine also witnesses a correspondence the
//! paper does not state but which follows from its constructions —
//! **the least model of `OV(C)` in `C` equals the Fitting model of
//! `C`**: a CWA fact `¬p` fires in `V^∞` exactly when every rule for
//! `p` is blocked (some body literal's complement derived), which is
//! `Φ`'s falsity condition; a rule for `p` fires exactly when its body
//! is derived, which is `Φ`'s truth condition. Property-tested in
//! `tests/transform_correspondence.rs`.

use crate::naf::NafProgram;
use crate::partial::body_value;
use olp_core::{AtomId, GLit, Interpretation, Truth};

/// One application of the Fitting operator `Φ` to `i`.
pub fn fitting_step(p: &NafProgram, i: &Interpretation) -> Interpretation {
    let mut out = Interpretation::with_capacity(p.n_atoms);
    for a in 0..p.n_atoms {
        let atom = AtomId(a as u32);
        let mut any_true = false;
        let mut all_false = true;
        for r in p.rules.iter().filter(|r| r.head == atom) {
            match body_value(r, i) {
                Truth::True => {
                    any_true = true;
                    all_false = false;
                }
                Truth::Undefined => all_false = false,
                Truth::False => {}
            }
        }
        if any_true {
            out.insert(GLit::pos(atom)).expect("fresh");
        } else if all_false {
            out.insert(GLit::neg(atom)).expect("fresh");
        }
    }
    out
}

/// The Fitting (Kripke–Kleene) model: `lfp Φ` under the knowledge
/// ordering (iterate from everything-undefined).
pub fn fitting_model(p: &NafProgram) -> Interpretation {
    let mut cur = Interpretation::with_capacity(p.n_atoms);
    loop {
        let next = fitting_step(p, &cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naf::testutil::{atom, naf};
    use crate::wfs::well_founded_model;

    #[test]
    fn facts_and_chains_resolve() {
        let (mut w, p) = naf("a. b :- a. c :- b, -d.");
        let m = fitting_model(&p);
        assert_eq!(m.value(atom(&mut w, "a")), Truth::True);
        assert_eq!(m.value(atom(&mut w, "b")), Truth::True);
        assert_eq!(m.value(atom(&mut w, "d")), Truth::False, "no rules → false");
        assert_eq!(m.value(atom(&mut w, "c")), Truth::True);
    }

    #[test]
    fn positive_loop_stays_undefined_unlike_wfs() {
        let (mut w, p) = naf("p :- q. q :- p.");
        let m = fitting_model(&p);
        assert_eq!(m.value(atom(&mut w, "p")), Truth::Undefined);
        assert_eq!(m.value(atom(&mut w, "q")), Truth::Undefined);
        let wfm = well_founded_model(&p);
        assert_eq!(wfm.value(atom(&mut w, "p")), Truth::False);
    }

    #[test]
    fn negative_loop_undefined_in_both() {
        let (mut w, p) = naf("p :- -q. q :- -p.");
        let m = fitting_model(&p);
        assert_eq!(m.value(atom(&mut w, "p")), Truth::Undefined);
        assert_eq!(m.value(atom(&mut w, "q")), Truth::Undefined);
    }

    #[test]
    fn fitting_is_subset_of_wfs() {
        for src in [
            "a. b :- a. c :- b, -d.",
            "p :- q. q :- p. r :- -p.",
            "move(a,b). move(b,c). win(X) :- move(X,Y), -win(Y).",
            "a :- -a. b :- -c.",
        ] {
            let (_, p) = naf(src);
            let f = fitting_model(&p);
            let w = well_founded_model(&p);
            assert!(f.is_subset(&w), "Fitting ⊄ WFS for {src}");
        }
    }

    #[test]
    fn fitting_is_a_3valued_model() {
        use crate::partial::is_3valued_model;
        for src in ["a. b :- a, -c.", "p :- -q. q :- -p. r :- p."] {
            let (_, p) = naf(src);
            let f = fitting_model(&p);
            assert!(is_3valued_model(&p, &f), "{src}");
        }
    }
}
