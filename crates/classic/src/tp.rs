//! The immediate-consequence operator `T_P` and the Gelfond–Lifschitz
//! transform `Γ`.
//!
//! * [`least_model_positive`] — the unique minimal (Herbrand) model of a
//!   positive program, by semi-naive counter-based closure (van
//!   Emden–Kowalski; \[L, U\] in the paper's references).
//! * [`gamma`] — `Γ(S)`: the least model of the reduct `P^S` (delete
//!   rules with a NAF atom in `S`; drop remaining NAF literals). Stable
//!   models are the fixpoints of `Γ` \[GL1\]; the well-founded model is
//!   built from the alternating fixpoint of `Γ²` (see [`crate::wfs`]).

use crate::naf::NafProgram;
use olp_core::{AtomId, BitSet, FxHashMap};

/// Least model of a **positive** program.
///
/// # Panics
/// Panics (debug assertion) if the program has NAF literals; use
/// [`gamma`] for those.
pub fn least_model_positive(p: &NafProgram) -> BitSet {
    debug_assert!(
        p.is_positive(),
        "least_model_positive needs a positive program"
    );
    gamma_inner(p, None)
}

/// `Γ(S)`: least model of the Gelfond–Lifschitz reduct `P^S`.
pub fn gamma(p: &NafProgram, s: &BitSet) -> BitSet {
    gamma_inner(p, Some(s))
}

fn gamma_inner(p: &NafProgram, s: Option<&BitSet>) -> BitSet {
    // Counter-based closure over the reduct. Rules killed by the reduct
    // are skipped up front.
    let mut unsat: Vec<u32> = Vec::with_capacity(p.rules.len());
    let mut by_pos: FxHashMap<AtomId, Vec<u32>> = FxHashMap::default();
    let mut alive: Vec<bool> = Vec::with_capacity(p.rules.len());
    for (ri, r) in p.rules.iter().enumerate() {
        let killed = match s {
            Some(s) => r.neg.iter().any(|n| s.contains(n.index())),
            None => false,
        };
        alive.push(!killed);
        unsat.push(r.pos.len() as u32);
        if !killed {
            for &a in r.pos.iter() {
                by_pos.entry(a).or_default().push(ri as u32);
            }
        }
    }
    let mut m = BitSet::with_capacity(p.n_atoms);
    let mut queue: Vec<AtomId> = Vec::new();
    for (ri, r) in p.rules.iter().enumerate() {
        if alive[ri] && unsat[ri] == 0 && m.insert(r.head.index()) {
            queue.push(r.head);
        }
    }
    while let Some(a) = queue.pop() {
        if let Some(deps) = by_pos.get(&a) {
            for &ri in deps {
                unsat[ri as usize] -= 1;
                if unsat[ri as usize] == 0 {
                    let h = p.rules[ri as usize].head;
                    if m.insert(h.index()) {
                        queue.push(h);
                    }
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naf::testutil::{atom, naf};

    #[test]
    fn ancestor_least_model() {
        let (mut w, p) = naf("parent(a,b). parent(b,c).
             anc(X,Y) :- parent(X,Y).
             anc(X,Y) :- parent(X,Z), anc(Z,Y).");
        let m = least_model_positive(&p);
        for s in ["anc(a,b)", "anc(b,c)", "anc(a,c)"] {
            assert!(m.contains(atom(&mut w, s).index()), "{s} missing");
        }
        assert!(!m.contains(atom(&mut w, "anc(c,a)").index()));
        // 2 parent facts + 3 anc atoms.
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn gamma_reduct_semantics() {
        // p :- not q.  q :- not p. — Γ({p}) = {p}, Γ({q}) = {q},
        // Γ(∅) = {p, q}: the two stable models are the Γ fixpoints.
        let (mut w, p) = naf("p :- -q. q :- -p.");
        let pa = atom(&mut w, "p").index();
        let qa = atom(&mut w, "q").index();

        let mut sp = BitSet::new();
        sp.insert(pa);
        assert_eq!(gamma(&p, &sp), sp);

        let mut sq = BitSet::new();
        sq.insert(qa);
        assert_eq!(gamma(&p, &sq), sq);

        let g0 = gamma(&p, &BitSet::new());
        assert!(g0.contains(pa) && g0.contains(qa));

        // Γ({p,q}) = ∅ — not a fixpoint.
        let mut both = BitSet::new();
        both.insert(pa);
        both.insert(qa);
        assert!(gamma(&p, &both).is_empty());
    }

    #[test]
    fn gamma_is_antimonotone() {
        let (_, p) = naf("a :- -b. b :- -c. c :- -a. d :- a, -e.");
        // S ⊆ S' ⇒ Γ(S') ⊆ Γ(S).
        let sets: Vec<BitSet> = (0..1u32 << p.n_atoms.min(5))
            .map(|bits| {
                (0..p.n_atoms.min(5))
                    .filter(|i| bits & (1 << i) != 0)
                    .collect()
            })
            .collect();
        for s1 in &sets {
            for s2 in &sets {
                if s1.is_subset(s2) {
                    assert!(gamma(&p, s2).is_subset(&gamma(&p, s1)));
                }
            }
        }
    }

    #[test]
    fn empty_program() {
        let (_, p) = naf("");
        assert!(least_model_positive(&p).is_empty());
    }
}
