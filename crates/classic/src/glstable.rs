//! Total stable models (Gelfond–Lifschitz \[GL1\]).
//!
//! `S` is stable iff `Γ(S) = S`. Enumeration is a DPLL-style search:
//! the well-founded model seeds the forced true/false sets (WFS is a
//! sound approximation of every stable model), Fitting-style unit
//! propagation tightens partial assignments, and complete assignments
//! are verified with the reduct. Exact; exponential in the number of
//! WFS-undefined atoms.

use crate::naf::NafProgram;
use crate::tp::gamma;
use crate::wfs::alternating_fixpoint;
use olp_core::BitSet;

/// Whether `s` is a (total) stable model: `Γ(s) = s`.
pub fn is_stable_total(p: &NafProgram, s: &BitSet) -> bool {
    gamma(p, s) == *s
}

/// Enumerates all total stable models of `p`.
pub fn stable_models_total(p: &NafProgram) -> Vec<BitSet> {
    let (wf_true, wf_possible) = alternating_fixpoint(p);
    // Every stable model S satisfies wf_true ⊆ S ⊆ wf_possible.
    let mut t = wf_true;
    let mut f: BitSet = (0..p.n_atoms)
        .filter(|&a| !wf_possible.contains(a))
        .collect();
    let mut out = Vec::new();
    if !propagate(p, &mut t, &mut f) {
        return out;
    }
    search(p, t, f, &mut out);
    out
}

/// Fitting-style propagation on a partial assignment `(t, f)`:
/// * a rule with satisfied body forces its head true;
/// * an atom whose every rule is dead (some positive body atom false or
///   some NAF atom true) is forced false.
///
/// Returns `false` on conflict.
fn propagate(p: &NafProgram, t: &mut BitSet, f: &mut BitSet) -> bool {
    loop {
        let mut changed = false;
        // Heads with satisfied bodies.
        for r in &p.rules {
            if t.contains(r.head.index()) {
                continue;
            }
            let body_true = r.pos.iter().all(|a| t.contains(a.index()))
                && r.neg.iter().all(|a| f.contains(a.index()));
            if body_true {
                if f.contains(r.head.index()) {
                    return false;
                }
                t.insert(r.head.index());
                changed = true;
            }
        }
        // Atoms with all rules dead.
        for a in 0..p.n_atoms {
            if t.contains(a) || f.contains(a) {
                continue;
            }
            let alive = p.rules.iter().any(|r| {
                r.head.index() == a
                    && r.pos.iter().all(|b| !f.contains(b.index()))
                    && r.neg.iter().all(|b| !t.contains(b.index()))
            });
            if !alive {
                f.insert(a);
                changed = true;
            }
        }
        if !changed {
            return true;
        }
    }
}

fn search(p: &NafProgram, t: BitSet, f: BitSet, out: &mut Vec<BitSet>) {
    // Find an unassigned atom.
    let unassigned = (0..p.n_atoms).find(|&a| !t.contains(a) && !f.contains(a));
    match unassigned {
        None => {
            if is_stable_total(p, &t) {
                out.push(t);
            }
        }
        Some(a) => {
            // Branch true.
            let mut t1 = t.clone();
            let mut f1 = f.clone();
            t1.insert(a);
            if propagate(p, &mut t1, &mut f1) {
                search(p, t1, f1, out);
            }
            // Branch false.
            let mut t2 = t;
            let mut f2 = f;
            f2.insert(a);
            if propagate(p, &mut t2, &mut f2) {
                search(p, t2, f2, out);
            }
        }
    }
}

/// Cautious (skeptical) stable consequences: atoms true in **every**
/// total stable model. Empty-model-set convention: when no stable model
/// exists, every atom is vacuously cautious — callers should check
/// [`stable_models_total`] emptiness first; we return `None` to force
/// that decision.
pub fn cautious_stable(p: &NafProgram) -> Option<BitSet> {
    let models = stable_models_total(p);
    let mut it = models.into_iter();
    let mut acc = it.next()?;
    for m in it {
        let drop: Vec<usize> = acc.iter().filter(|&a| !m.contains(a)).collect();
        for a in drop {
            acc.remove(a);
        }
    }
    Some(acc)
}

/// Brave (credulous) stable consequences: atoms true in **some** total
/// stable model (`None` when no stable model exists).
pub fn brave_stable(p: &NafProgram) -> Option<BitSet> {
    let models = stable_models_total(p);
    let mut it = models.into_iter();
    let mut acc = it.next()?;
    for m in it {
        acc.union_with(&m);
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naf::testutil::{atom, naf};
    use crate::stratified::{is_stratified, perfect_model};
    use crate::wfs::well_founded_model;

    fn render(w: &olp_core::World, ms: &[BitSet]) -> Vec<String> {
        let mut v: Vec<String> = ms.iter().map(|m| NafProgram::render_atoms(w, m)).collect();
        v.sort();
        v
    }

    #[test]
    fn even_loop_has_two_stable_models() {
        let (w, p) = naf("p :- -q. q :- -p.");
        let ms = stable_models_total(&p);
        assert_eq!(render(&w, &ms), vec!["{p}".to_string(), "{q}".to_string()]);
    }

    #[test]
    fn odd_loop_has_no_stable_model() {
        let (_, p) = naf("a :- -a.");
        assert!(stable_models_total(&p).is_empty());
    }

    #[test]
    fn odd_loop_with_side_atom_still_none() {
        let (_, p) = naf("a :- -a. b.");
        assert!(stable_models_total(&p).is_empty());
    }

    #[test]
    fn stratified_has_unique_stable_model_equal_to_perfect() {
        for src in [
            "q. p :- -q. r :- -s.",
            "edge(a,b). edge(b,c). reach(a). reach(Y) :- reach(X), edge(X,Y).
             node(a). node(b). node(c).
             unreachable(X) :- node(X), -reach(X).",
        ] {
            let (_, p) = naf(src);
            assert!(is_stratified(&p));
            let ms = stable_models_total(&p);
            assert_eq!(ms.len(), 1, "{src}");
            assert_eq!(ms[0], perfect_model(&p).unwrap(), "{src}");
        }
    }

    #[test]
    fn wfs_true_false_contained_in_every_stable_model() {
        let (_, p) = naf("p :- -q. q :- -p. r :- p. r :- q. s :- -t.");
        let wfm = well_founded_model(&p);
        let ms = stable_models_total(&p);
        assert_eq!(ms.len(), 2);
        for m in &ms {
            for a in wfm.pos_atoms() {
                assert!(m.contains(a.index()));
            }
            for a in wfm.neg_atoms() {
                assert!(!m.contains(a.index()));
            }
        }
    }

    #[test]
    fn three_coloring_style_choice() {
        // Choice between three exclusive options via NAF.
        let (mut w, p) = naf("r :- -g, -b. g :- -r, -b. b :- -r, -g.");
        let ms = stable_models_total(&p);
        assert_eq!(ms.len(), 3);
        for m in &ms {
            assert_eq!(m.len(), 1);
        }
        let _ = atom(&mut w, "r");
    }

    #[test]
    fn cautious_and_brave_bracket_wfs() {
        let (mut w, p) = naf("p :- -q. q :- -p. r :- p. r :- q. s :- -t.");
        let cautious = cautious_stable(&p).unwrap();
        let brave = brave_stable(&p).unwrap();
        // WFS-true ⊆ cautious ⊆ brave.
        let wfm = well_founded_model(&p);
        for a in wfm.pos_atoms() {
            assert!(cautious.contains(a.index()));
        }
        assert!(cautious.is_subset(&brave));
        // r holds in both stable models (case analysis): cautious.
        assert!(cautious.contains(atom(&mut w, "r").index()));
        // p holds in only one: brave but not cautious.
        let pa = atom(&mut w, "p").index();
        assert!(brave.contains(pa) && !cautious.contains(pa));
        // No stable models → None.
        let (_, odd) = naf("a :- -a.");
        assert!(cautious_stable(&odd).is_none());
        assert!(brave_stable(&odd).is_none());
    }

    #[test]
    fn constraint_via_odd_loop_filters_models() {
        // x :- -y. y :- -x.  plus "forbid y": f :- y, -f. kills the y
        // model.
        let (mut w, p) = naf("x :- -y. y :- -x. f :- y, -f.");
        let ms = stable_models_total(&p);
        assert_eq!(ms.len(), 1);
        assert!(ms[0].contains(atom(&mut w, "x").index()));
    }
}
