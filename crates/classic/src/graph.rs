//! Atom dependency graph and strongly connected components.
//!
//! Used by stratification ([`crate::stratified`]): the head of a rule
//! depends positively on its positive body atoms and negatively on its
//! NAF body atoms. A ground program is stratified (callable by the
//! perfect-model semantics [ABW, P1, P2]) iff no dependency cycle goes
//! through a negative edge.

use crate::naf::NafProgram;
use olp_core::FxHashMap;

/// Polarity of a dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// Through a positive body literal.
    Positive,
    /// Through a NAF body literal.
    Negative,
}

/// The atom dependency graph of a ground program.
#[derive(Debug)]
pub struct DepGraph {
    /// Adjacency: `edges[a]` lists `(b, polarity)` when some rule with
    /// head `a` has `b` in its body.
    pub edges: Vec<Vec<(usize, Polarity)>>,
    n: usize,
}

impl DepGraph {
    /// Builds the dependency graph of `p` over atoms `0..n_atoms`.
    pub fn new(p: &NafProgram) -> Self {
        let n = p.n_atoms;
        let mut edges: Vec<Vec<(usize, Polarity)>> = vec![Vec::new(); n];
        let mut seen: FxHashMap<(usize, usize, bool), ()> = FxHashMap::default();
        for r in &p.rules {
            let h = r.head.index();
            for &b in r.pos.iter() {
                if seen.insert((h, b.index(), true), ()).is_none() {
                    edges[h].push((b.index(), Polarity::Positive));
                }
            }
            for &b in r.neg.iter() {
                if seen.insert((h, b.index(), false), ()).is_none() {
                    edges[h].push((b.index(), Polarity::Negative));
                }
            }
        }
        DepGraph { edges, n }
    }

    /// Number of nodes (atoms).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Tarjan's strongly connected components. Returns `scc_of[atom]`
    /// and the number of components; component ids are in **reverse
    /// topological order** (a component only depends on components with
    /// *smaller* ids — i.e. id 0 is a sink/leaf).
    pub fn sccs(&self) -> (Vec<u32>, usize) {
        // Delegate to the shared iterative Tarjan; polarity is
        // irrelevant for connectivity.
        let adj: Vec<Vec<u32>> = self
            .edges
            .iter()
            .map(|outs| outs.iter().map(|&(w, _)| w as u32).collect())
            .collect();
        olp_core::tarjan_scc(&adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naf::testutil::{atom, naf};

    #[test]
    fn sccs_of_mutual_recursion() {
        let (mut w, p) = naf("p :- q. q :- p. r :- p.");
        let g = DepGraph::new(&p);
        let (scc, _) = g.sccs();
        let pa = atom(&mut w, "p").index();
        let qa = atom(&mut w, "q").index();
        let ra = atom(&mut w, "r").index();
        assert_eq!(scc[pa], scc[qa]);
        assert_ne!(scc[pa], scc[ra]);
        // Reverse topological: r depends on the p/q component, so the
        // p/q component has the smaller id.
        assert!(scc[pa] < scc[ra]);
    }

    #[test]
    fn polarity_recorded() {
        let (mut w, p) = naf("p :- q, -r.");
        let g = DepGraph::new(&p);
        let pa = atom(&mut w, "p").index();
        let qa = atom(&mut w, "q").index();
        let ra = atom(&mut w, "r").index();
        let mut pols: Vec<(usize, Polarity)> = g.edges[pa].clone();
        pols.sort_by_key(|&(t, _)| t);
        let mut want = vec![(qa, Polarity::Positive), (ra, Polarity::Negative)];
        want.sort_by_key(|&(t, _)| t);
        assert_eq!(pols, want);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 2000-atom positive chain — iterative Tarjan must not blow the
        // stack.
        let mut src = String::from("p0.\n");
        for i in 1..2000 {
            src.push_str(&format!("p{} :- p{}.\n", i, i - 1));
        }
        let (_, p) = naf(&src);
        let g = DepGraph::new(&p);
        let (_, n_sccs) = g.sccs();
        assert_eq!(n_sccs, 2000);
    }

    #[test]
    fn duplicate_edges_deduplicated() {
        let (mut w, p) = naf("p :- q. p :- q, r.");
        let g = DepGraph::new(&p);
        let pa = atom(&mut w, "p").index();
        assert_eq!(g.edges[pa].len(), 2); // q once, r once
    }
}
