//! Well-founded semantics (Van Gelder–Ross–Schlipf, \[VRS\]) via the
//! alternating fixpoint of `Γ²`.
//!
//! `Γ` is antimonotone, so `Γ²` is monotone. Iterating `Γ²` from `∅`
//! climbs to its least fixpoint `T∞` = the **well-founded true** atoms;
//! `Γ(T∞)` is the greatest fixpoint = the atoms *not* well-founded
//! false. Everything in between is undefined. The complement of
//! `Γ(T∞)` is exactly the greatest unfounded set w.r.t. the partial
//! model — the notion the paper's assumption sets generalise.

use crate::naf::NafProgram;
use crate::tp::gamma;
use olp_core::{AtomId, BitSet, GLit, Interpretation};

/// The well-founded model of `p`, as a 3-valued [`Interpretation`]:
/// true atoms positive, well-founded-false atoms negative, the rest
/// undefined.
pub fn well_founded_model(p: &NafProgram) -> Interpretation {
    let (t, possible) = alternating_fixpoint(p);
    let mut i = Interpretation::with_capacity(p.n_atoms);
    for a in t.iter() {
        i.insert(GLit::pos(AtomId(a as u32)))
            .expect("true/false parts are disjoint");
    }
    for a in 0..p.n_atoms {
        if !possible.contains(a) {
            i.insert(GLit::neg(AtomId(a as u32)))
                .expect("true ⊆ possible, so no clash");
        }
    }
    i
}

/// The raw alternating fixpoint: `(lfp Γ², Γ(lfp Γ²))` — i.e. (true
/// atoms, possibly-true atoms).
pub fn alternating_fixpoint(p: &NafProgram) -> (BitSet, BitSet) {
    let mut t = BitSet::with_capacity(p.n_atoms);
    loop {
        let possible = gamma(p, &t);
        let t2 = gamma(p, &possible);
        if t2 == t {
            return (t, possible);
        }
        t = t2;
    }
}

/// The greatest unfounded set of `p` w.r.t. the well-founded model: the
/// atoms that are well-founded false.
pub fn greatest_unfounded_set(p: &NafProgram) -> BitSet {
    let (_, possible) = alternating_fixpoint(p);
    (0..p.n_atoms).filter(|&a| !possible.contains(a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naf::testutil::{atom, naf};
    use olp_core::Truth;

    #[test]
    fn stratified_program_total_wfs() {
        // win/lose on an acyclic graph: WFS is total.
        let (mut w, p) = naf("edge(a,b). edge(b,c).
             reach(a).
             reach(Y) :- reach(X), edge(X,Y).
             stuck(X) :- reach(X), -moved(X).
             moved(X) :- edge(X,Y), reach(X).");
        let m = well_founded_model(&p);
        assert!(m.is_total(p.n_atoms));
        assert_eq!(m.value(atom(&mut w, "reach(c)")), Truth::True);
        assert_eq!(m.value(atom(&mut w, "moved(c)")), Truth::False);
        assert_eq!(m.value(atom(&mut w, "stuck(c)")), Truth::True);
        assert_eq!(m.value(atom(&mut w, "stuck(a)")), Truth::False);
    }

    #[test]
    fn two_cycle_is_undefined() {
        // p :- not q. q :- not p. — the classic undefined pair.
        let (mut w, p) = naf("p :- -q. q :- -p.");
        let m = well_founded_model(&p);
        assert_eq!(m.value(atom(&mut w, "p")), Truth::Undefined);
        assert_eq!(m.value(atom(&mut w, "q")), Truth::Undefined);
    }

    #[test]
    fn odd_loop_is_undefined_but_consequences_resolve() {
        // a :- not a. — undefined; b :- not c. with c unfounded → b true.
        let (mut w, p) = naf("a :- -a. b :- -c.");
        let m = well_founded_model(&p);
        assert_eq!(m.value(atom(&mut w, "a")), Truth::Undefined);
        assert_eq!(m.value(atom(&mut w, "b")), Truth::True);
        assert_eq!(m.value(atom(&mut w, "c")), Truth::False);
    }

    #[test]
    fn unfounded_positive_loop_is_false() {
        // p :- q. q :- p. — unfounded; both false in WFS.
        let (mut w, p) = naf("p :- q. q :- p.");
        let m = well_founded_model(&p);
        assert_eq!(m.value(atom(&mut w, "p")), Truth::False);
        assert_eq!(m.value(atom(&mut w, "q")), Truth::False);
        let gus = greatest_unfounded_set(&p);
        assert_eq!(gus.len(), 2);
    }

    #[test]
    fn win_move_game_mixed_values() {
        // The canonical WFS example: win(X) :- move(X,Y), not win(Y).
        // Chain a→b→c: win(b) true (move to dead-end c), win(a) false?
        // a moves only to b which is winning → win(a) false; c has no
        // moves → win(c) false.
        let (mut w, p) = naf("move(a,b). move(b,c).
             win(X) :- move(X,Y), -win(Y).");
        let m = well_founded_model(&p);
        assert_eq!(m.value(atom(&mut w, "win(c)")), Truth::False);
        assert_eq!(m.value(atom(&mut w, "win(b)")), Truth::True);
        assert_eq!(m.value(atom(&mut w, "win(a)")), Truth::False);
        // Add a draw cycle d ↔ e: both undefined.
        let (mut w2, p2) = naf("move(d,e). move(e,d).
             win(X) :- move(X,Y), -win(Y).");
        let m2 = well_founded_model(&p2);
        assert_eq!(m2.value(atom(&mut w2, "win(d)")), Truth::Undefined);
        assert_eq!(m2.value(atom(&mut w2, "win(e)")), Truth::Undefined);
    }
}
