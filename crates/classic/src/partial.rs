//! 3-valued models (Przymusinski \[P3\]) and founded / partial-stable
//! models (Saccà–Zaniolo \[SZ\]) of seminegative programs.
//!
//! These are the classical notions §3 of the paper maps onto ordered
//! programs:
//!
//! * `M` is a **3-valued model** iff `value(H(r)) ≥ value(B(r))` for
//!   every ground rule, with `F < U < T`, body value = min, empty body
//!   = `T`, and `value(not A)` the complement of `value(A)` (Prop. 3/5
//!   relate these to models of `OV(C)` / `EV(C)`).
//! * `M` is **founded** iff `T_{C_M}^∞(∅) = M⁺`, where the *positive
//!   version* `C_M` deletes every non-applied rule and strips NAF
//!   literals from the rest (Prop. 4 ⇔ assumption-free models of
//!   `OV(C)`).
//! * `M` is **(partial) stable** iff it is maximally founded (Cor. 1 ⇔
//!   stable models of `OV(C)`; for total `M` this is Gelfond–Lifschitz
//!   stability).

use crate::naf::{NafProgram, NafRule};
use olp_core::{AtomId, BitSet, GLit, Interpretation, Truth};

fn truth_rank(t: Truth) -> u8 {
    match t {
        Truth::False => 0,
        Truth::Undefined => 1,
        Truth::True => 2,
    }
}

fn neg_truth(t: Truth) -> Truth {
    match t {
        Truth::True => Truth::False,
        Truth::False => Truth::True,
        Truth::Undefined => Truth::Undefined,
    }
}

/// `value(B(r))` under `m`: the minimum over the body literals
/// (`T` for an empty body).
pub fn body_value(r: &NafRule, m: &Interpretation) -> Truth {
    let mut min = Truth::True;
    for &a in r.pos.iter() {
        let v = m.value(a);
        if truth_rank(v) < truth_rank(min) {
            min = v;
        }
    }
    for &a in r.neg.iter() {
        let v = neg_truth(m.value(a));
        if truth_rank(v) < truth_rank(min) {
            min = v;
        }
    }
    min
}

/// Whether `m` is a 3-valued model of `p`.
pub fn is_3valued_model(p: &NafProgram, m: &Interpretation) -> bool {
    p.rules
        .iter()
        .all(|r| truth_rank(m.value(r.head)) >= truth_rank(body_value(r, m)))
}

/// The positive version `C_M`: applied rules (body true, head in `M⁺`)
/// with NAF literals stripped.
pub fn positive_version(p: &NafProgram, m: &Interpretation) -> Vec<(AtomId, Box<[AtomId]>)> {
    p.rules
        .iter()
        .filter(|r| m.value(r.head) == Truth::True && body_value(r, m) == Truth::True)
        .map(|r| (r.head, r.pos.clone()))
        .collect()
}

/// Whether `m` is **founded**: (i) the `T` fixpoint of its positive
/// version rebuilds exactly `M⁺`, and (ii) every *undefined* atom has a
/// witness — a rule whose body is not false.
///
/// Condition (ii) reconstructs the \[SZ\] notion precisely enough for the
/// paper's Proposition 4 to hold (it matches Przymusiński's 3-valued
/// stable reduct, where an atom with no live rule is *false*, never
/// undefined): under `OV(C)` the closed-world component forces exactly
/// this — an atom may stay undefined only while a non-blocked rule for
/// it overrules the CWA fact. Without (ii), `{p0}` with `q` undefined
/// would count as founded for the program `{p0.}` even though `q` has
/// no rules at all, while `OV` makes `¬q` mandatory; the paper's
/// Prop. 4 proof sketch silently assumes (ii). Validated by the
/// `prop4_ov_assumption_free_eq_founded` property test.
pub fn is_founded(p: &NafProgram, m: &Interpretation) -> bool {
    // (ii) witnessed undefinedness.
    for a in 0..p.n_atoms {
        let atom = AtomId(a as u32);
        if m.value(atom) == Truth::Undefined {
            let witnessed = p
                .rules
                .iter()
                .any(|r| r.head == atom && body_value(r, m) != Truth::False);
            if !witnessed {
                return false;
            }
        }
    }
    let rules = positive_version(p, m);
    // Positive closure.
    let mut t = BitSet::with_capacity(p.n_atoms);
    loop {
        let mut changed = false;
        for (h, body) in &rules {
            if !t.contains(h.index()) && body.iter().all(|b| t.contains(b.index())) {
                t.insert(h.index());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let m_pos: BitSet = m.pos_atoms().map(|a| a.index()).collect();
    t == m_pos
}

/// Enumerates all founded 3-valued models of `p`. Exponential; for the
/// correspondence experiments and small programs.
pub fn founded_models(p: &NafProgram) -> Vec<Interpretation> {
    let mut out = Vec::new();
    let mut cur = Interpretation::with_capacity(p.n_atoms);
    fn rec(p: &NafProgram, at: usize, cur: &mut Interpretation, out: &mut Vec<Interpretation>) {
        if at == p.n_atoms {
            if is_3valued_model(p, cur) && is_founded(p, cur) {
                out.push(cur.clone());
            }
            return;
        }
        let a = AtomId(at as u32);
        rec(p, at + 1, cur, out);
        cur.insert(GLit::pos(a)).expect("fresh");
        rec(p, at + 1, cur, out);
        cur.remove(GLit::pos(a));
        cur.insert(GLit::neg(a)).expect("fresh");
        rec(p, at + 1, cur, out);
        cur.remove(GLit::neg(a));
    }
    rec(p, 0, &mut cur, &mut out);
    out
}

/// The **partial stable models**: maximal founded models under
/// literal-set inclusion.
pub fn partial_stable_models(p: &NafProgram) -> Vec<Interpretation> {
    let founded = founded_models(p);
    founded
        .iter()
        .filter(|m| !founded.iter().any(|n| m.is_proper_subset(n)))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glstable::stable_models_total;
    use crate::naf::testutil::{atom, naf};
    use crate::wfs::well_founded_model;

    fn interp(pairs: &[(AtomId, bool)]) -> Interpretation {
        Interpretation::from_literals(pairs.iter().map(
            |&(a, v)| {
                if v {
                    GLit::pos(a)
                } else {
                    GLit::neg(a)
                }
            },
        ))
        .unwrap()
    }

    #[test]
    fn example7_p_not_p() {
        // C = { p :- -p }: {p} is a 3-valued model, but not founded.
        let (mut w, p) = naf("p :- -p.");
        let pa = atom(&mut w, "p");
        let m_p = interp(&[(pa, true)]);
        assert!(is_3valued_model(&p, &m_p));
        assert!(!is_founded(&p, &m_p));
        // The empty interpretation is NOT a 3-valued model (body value U
        // > head value U is fine… value(-p)=U, head U: U ≥ U ✓ — it IS
        // a model), and it is founded.
        let empty = Interpretation::new();
        assert!(is_3valued_model(&p, &empty));
        assert!(is_founded(&p, &empty));
        // {−p} is not a 3-valued model: body value(¬p)=T > head F.
        let m_np = interp(&[(pa, false)]);
        assert!(!is_3valued_model(&p, &m_np));
        // So the only partial stable model is ∅.
        let ps = partial_stable_models(&p);
        assert_eq!(ps.len(), 1);
        assert!(ps[0].is_empty());
    }

    #[test]
    fn founded_requires_noncircular_support() {
        let (mut w, p) = naf("p :- q. q :- p.");
        let pa = atom(&mut w, "p");
        let qa = atom(&mut w, "q");
        let both = interp(&[(pa, true), (qa, true)]);
        assert!(is_3valued_model(&p, &both));
        assert!(!is_founded(&p, &both));
        let none = interp(&[(pa, false), (qa, false)]);
        assert!(is_3valued_model(&p, &none));
        assert!(is_founded(&p, &none), "false atoms need no support");
    }

    #[test]
    fn wfs_is_a_founded_model_and_least_partial_stable() {
        for src in [
            "p :- -q. q :- -p. r :- p. r :- q.",
            "a :- -a. b :- -c.",
            "move(a,b). move(b,c). win(X) :- move(X,Y), -win(Y).",
        ] {
            let (_, p) = naf(src);
            let wfm = well_founded_model(&p);
            assert!(is_3valued_model(&p, &wfm), "{src}");
            assert!(is_founded(&p, &wfm), "{src}");
            // WFS ⊆ every partial stable model [P3].
            for ps in partial_stable_models(&p) {
                assert!(wfm.is_subset(&ps), "{src}");
            }
        }
    }

    #[test]
    fn total_partial_stable_models_are_gl_stable() {
        let (_, p) = naf("p :- -q. q :- -p.");
        let ps = partial_stable_models(&p);
        assert_eq!(ps.len(), 2);
        let gl = stable_models_total(&p);
        assert_eq!(gl.len(), 2);
        for m in &ps {
            assert!(m.is_total(p.n_atoms));
            let m_pos: BitSet = m.pos_atoms().map(|a| a.index()).collect();
            assert!(gl.contains(&m_pos));
        }
    }

    #[test]
    fn odd_loop_partial_stable_is_empty_model() {
        // a :- -a. has no total stable model, but ∅ is partial stable.
        let (_, p) = naf("a :- -a.");
        let ps = partial_stable_models(&p);
        assert_eq!(ps.len(), 1);
        assert!(ps[0].is_empty());
        assert!(stable_models_total(&p).is_empty());
    }

    #[test]
    fn maximal_3valued_models_are_total() {
        // §3 of the paper: "every exhaustive model for C is total" —
        // any non-total 3-valued model extends by setting every
        // undefined atom true (heads only rise; false heads keep false
        // bodies because false literals are unchanged).
        for src in [
            "a. b :- a, -c.",
            "p :- -q. q :- -p. r :- p.",
            "x :- y. y :- x. z :- -x.",
        ] {
            let (_, p) = naf(src);
            // Enumerate all 3-valued models, find the ⊆-maximal ones.
            let mut models = Vec::new();
            let mut cur = Interpretation::with_capacity(p.n_atoms);
            fn rec(
                p: &NafProgram,
                at: usize,
                cur: &mut Interpretation,
                out: &mut Vec<Interpretation>,
            ) {
                if at == p.n_atoms {
                    if is_3valued_model(p, cur) {
                        out.push(cur.clone());
                    }
                    return;
                }
                let a = AtomId(at as u32);
                rec(p, at + 1, cur, out);
                cur.insert(GLit::pos(a)).unwrap();
                rec(p, at + 1, cur, out);
                cur.remove(GLit::pos(a));
                cur.insert(GLit::neg(a)).unwrap();
                rec(p, at + 1, cur, out);
                cur.remove(GLit::neg(a));
            }
            rec(&p, 0, &mut cur, &mut models);
            for m in &models {
                let maximal = !models.iter().any(|n| m.is_proper_subset(n));
                if maximal {
                    assert!(m.is_total(p.n_atoms), "{src}: maximal but not total");
                }
            }
        }
    }

    #[test]
    fn body_value_is_min_and_empty_is_true() {
        let (mut w, p) = naf("h :- a, -b.");
        let a = atom(&mut w, "a");
        let b = atom(&mut w, "b");
        let r = p.rules.iter().find(|r| !r.pos.is_empty()).unwrap();
        assert_eq!(
            body_value(r, &interp(&[(a, true), (b, false)])),
            Truth::True
        );
        assert_eq!(
            body_value(r, &interp(&[(a, true), (b, true)])),
            Truth::False
        );
        assert_eq!(body_value(r, &interp(&[(a, true)])), Truth::Undefined);
        assert_eq!(body_value(r, &interp(&[(b, true)])), Truth::False);
        let fact = p
            .rules
            .iter()
            .find(|r| r.pos.is_empty() && r.neg.is_empty());
        assert!(fact.is_none()); // no facts in this program
    }
}
