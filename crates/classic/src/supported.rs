//! Supported models (Clark's completion \[Cl\]).
//!
//! A total 2-valued interpretation `S` is **supported** when an atom is
//! true *iff* some rule for it has a satisfied body — the models of the
//! program's Clark completion. Supported models are the weakest member
//! of the classical family: every stable model is supported, but a
//! supported model may rest on positive circular support
//! (`p ← p` makes `{p}` supported, not stable).
//!
//! Included as a baseline endpoint for the semantics-lattice property
//! tests: `stable ⊆ supported`, and `WFS`-true atoms belong to every
//! supported model that extends the well-founded core.

use crate::naf::NafProgram;
use olp_core::BitSet;

/// Whether `s` (the set of true atoms) is a supported model.
pub fn is_supported(p: &NafProgram, s: &BitSet) -> bool {
    for a in 0..p.n_atoms {
        let has_support = p.rules.iter().any(|r| {
            r.head.index() == a
                && r.pos.iter().all(|b| s.contains(b.index()))
                && r.neg.iter().all(|b| !s.contains(b.index()))
        });
        if s.contains(a) != has_support {
            return false;
        }
    }
    true
}

/// Enumerates all supported models. Exponential (2^n over mentioned
/// atoms); for validation suites and small programs.
pub fn supported_models(p: &NafProgram) -> Vec<BitSet> {
    assert!(
        p.n_atoms <= 24,
        "supported-model enumeration is 2^n; refusing n_atoms = {}",
        p.n_atoms
    );
    let mut out = Vec::new();
    for bits in 0u64..(1u64 << p.n_atoms) {
        let s: BitSet = (0..p.n_atoms).filter(|&a| bits & (1 << a) != 0).collect();
        if is_supported(p, &s) {
            out.push(s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glstable::stable_models_total;
    use crate::naf::testutil::{atom, naf};

    #[test]
    fn circular_support_is_supported_but_not_stable() {
        let (mut w, p) = naf("p :- p.");
        let sup = supported_models(&p);
        assert_eq!(sup.len(), 2, "∅ and {{p}}");
        let pa = atom(&mut w, "p").index();
        assert!(sup.iter().any(|s| s.contains(pa)));
        let stable = stable_models_total(&p);
        assert_eq!(stable.len(), 1);
        assert!(stable[0].is_empty());
    }

    #[test]
    fn every_stable_model_is_supported() {
        for src in [
            "p :- -q. q :- -p.",
            "a. b :- a, -c. c :- -b.",
            "x :- y. y :- -z.",
        ] {
            let (_, p) = naf(src);
            let sup = supported_models(&p);
            for s in stable_models_total(&p) {
                assert!(sup.contains(&s), "{src}");
                assert!(is_supported(&p, &s), "{src}");
            }
        }
    }

    #[test]
    fn facts_force_truth_and_absence_forces_falsity() {
        let (mut w, p) = naf("a. b :- a.");
        let sup = supported_models(&p);
        assert_eq!(sup.len(), 1);
        assert!(sup[0].contains(atom(&mut w, "a").index()));
        assert!(sup[0].contains(atom(&mut w, "b").index()));
    }

    #[test]
    fn odd_loop_has_no_supported_model() {
        // a :- -a: a true needs a false and vice versa — completion is
        // unsatisfiable.
        let (_, p) = naf("a :- -a.");
        assert!(supported_models(&p).is_empty());
    }
}
