//! Ground normal logic programs (negation as failure).
//!
//! §3 of the paper relates ordered-program semantics to the classical
//! semantics of *seminegative* programs — programs whose rule heads are
//! positive and whose body negation is read as negation-as-failure by
//! the classical proposals (stratified, well-founded, stable, founded).
//! This crate implements those classical baselines from scratch over a
//! ground representation: [`NafRule`] with positive head, positive body
//! atoms, and NAF body atoms.

use olp_core::{AtomId, BitSet, GLit, World};
use olp_ground::GroundProgram;
use std::fmt;

/// A ground normal rule `h ← p1,…,pk, not n1,…,not nm`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NafRule {
    /// Head atom.
    pub head: AtomId,
    /// Positive body atoms.
    pub pos: Box<[AtomId]>,
    /// Negated (NAF) body atoms.
    pub neg: Box<[AtomId]>,
}

impl NafRule {
    /// Builds a rule with canonicalised (sorted, deduplicated) bodies.
    pub fn new(head: AtomId, mut pos: Vec<AtomId>, mut neg: Vec<AtomId>) -> Self {
        pos.sort_unstable();
        pos.dedup();
        neg.sort_unstable();
        neg.dedup();
        NafRule {
            head,
            pos: pos.into_boxed_slice(),
            neg: neg.into_boxed_slice(),
        }
    }
}

/// A ground normal (NAF) program.
#[derive(Debug, Clone, Default)]
pub struct NafProgram {
    /// The rules.
    pub rules: Vec<NafRule>,
    /// Atom universe bound: atoms are `0..n_atoms`.
    pub n_atoms: usize,
}

/// Error converting a ground ordered program: a rule has a negated head
/// (the program is not seminegative).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotSeminegative {
    /// Index of the offending rule in the source ground program.
    pub rule: usize,
}

impl fmt::Display for NotSeminegative {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rule {} has a negated head: not a seminegative program",
            self.rule
        )
    }
}

impl std::error::Error for NotSeminegative {}

impl NafProgram {
    /// Converts a ground (seminegative) ordered program, reading body
    /// negation as NAF. Component structure is ignored — classical
    /// semantics see one flat rule set.
    pub fn from_ground(gp: &GroundProgram) -> Result<NafProgram, NotSeminegative> {
        let mut rules = Vec::with_capacity(gp.rules.len());
        for (ri, r) in gp.rules.iter().enumerate() {
            if !r.head.is_pos() {
                return Err(NotSeminegative { rule: ri });
            }
            let mut pos = Vec::new();
            let mut neg = Vec::new();
            for &b in r.body.iter() {
                if b.is_pos() {
                    pos.push(b.atom());
                } else {
                    neg.push(b.atom());
                }
            }
            rules.push(NafRule::new(r.head.atom(), pos, neg));
        }
        Ok(NafProgram {
            rules,
            n_atoms: gp.n_atoms,
        })
    }

    /// Whether the program is positive (no NAF literals at all).
    pub fn is_positive(&self) -> bool {
        self.rules.iter().all(|r| r.neg.is_empty())
    }

    /// Renders a set of true atoms as `{atom, …}` (sorted, stable).
    pub fn render_atoms(world: &World, s: &BitSet) -> String {
        let mut parts: Vec<String> = s.iter().map(|i| world.atom_str(AtomId(i as u32))).collect();
        parts.sort();
        format!("{{{}}}", parts.join(", "))
    }

    /// The total 2-valued interpretation with exactly `s` true, as a
    /// 3-valued [`olp_core::Interpretation`] over `0..n_atoms`.
    pub fn total_interpretation(&self, s: &BitSet) -> olp_core::Interpretation {
        let mut i = olp_core::Interpretation::with_capacity(self.n_atoms);
        for a in 0..self.n_atoms {
            let lit = if s.contains(a) {
                GLit::pos(AtomId(a as u32))
            } else {
                GLit::neg(AtomId(a as u32))
            };
            i.insert(lit).expect("total assignment is consistent");
        }
        i
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use olp_ground::{ground_exhaustive, GroundConfig};
    use olp_parser::parse_program;

    /// Parses + grounds a seminegative program for tests.
    pub fn naf(src: &str) -> (World, NafProgram) {
        let mut w = World::new();
        let p = parse_program(&mut w, src).unwrap();
        let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).unwrap();
        (w, NafProgram::from_ground(&g).unwrap())
    }

    /// Looks up an atom id by rendering; panics when absent.
    pub fn atom(w: &mut World, s: &str) -> AtomId {
        olp_parser::parse_ground_literal(w, s).unwrap().atom()
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;
    use olp_ground::{ground_exhaustive, GroundConfig};
    use olp_parser::parse_program;

    #[test]
    fn conversion_splits_polarity() {
        let (mut w, p) = naf("p(a). q(X) :- p(X), -r(X).");
        assert_eq!(p.rules.len(), 2);
        let r = p
            .rules
            .iter()
            .find(|r| !r.pos.is_empty() || !r.neg.is_empty())
            .unwrap();
        assert_eq!(r.pos.as_ref(), [atom(&mut w, "p(a)")]);
        assert_eq!(r.neg.as_ref(), [atom(&mut w, "r(a)")]);
        assert!(!p.is_positive());
    }

    #[test]
    fn negated_head_rejected() {
        let mut w = World::new();
        let prog = parse_program(&mut w, "-p :- q.").unwrap();
        let g = ground_exhaustive(&mut w, &prog, &GroundConfig::default()).unwrap();
        assert!(NafProgram::from_ground(&g).is_err());
    }

    #[test]
    fn total_interpretation_round_trip() {
        let (mut w, p) = naf("a. b :- a, -c.");
        let mut s = BitSet::new();
        s.insert(atom(&mut w, "a").index());
        s.insert(atom(&mut w, "b").index());
        let i = p.total_interpretation(&s);
        assert!(i.is_total(p.n_atoms));
        assert_eq!(i.pos_atoms().count(), 2);
        assert_eq!(i.neg_atoms().count(), p.n_atoms - 2);
    }
}
