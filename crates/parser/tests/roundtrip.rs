//! Property: pretty-printing then re-parsing an ordered program is the
//! identity (on components and order edges).
//!
//! Programs are generated structurally with proptest strategies over
//! the full AST surface: multi-module programs, negated heads, compound
//! terms, integer arguments, comparisons with arithmetic.

use olp_core::{Aexp, BodyItem, Cmp, CmpOp, Literal, OrderedProgram, Rule, Sign, Term, World};
use olp_parser::{parse_program, program_to_string};
use proptest::prelude::*;

/// Identifier pools. Kept clear of the parser keywords (`module`,
/// `order`, `mod`).
const PREDS: &[&str] = &["p", "q", "r", "fly", "bird", "anc", "take_loan"];
const CONSTS: &[&str] = &["a", "b", "penguin", "mimmo", "zero"];
const FUNCS: &[&str] = &["s", "f", "pair"];
const VARS: &[&str] = &["X", "Y", "Z", "Acc"];
const MODS: &[&str] = &["m0", "m1", "m2", "m3"];

#[derive(Debug, Clone)]
enum GTerm {
    Var(usize),
    Const(usize),
    Int(i64),
    App(usize, Vec<GTerm>),
}

fn term_strategy() -> impl Strategy<Value = GTerm> {
    let leaf = prop_oneof![
        (0..VARS.len()).prop_map(GTerm::Var),
        (0..CONSTS.len()).prop_map(GTerm::Const),
        (-20i64..100).prop_map(GTerm::Int),
    ];
    leaf.prop_recursive(2, 6, 2, |inner| {
        ((0..FUNCS.len()), prop::collection::vec(inner, 1..3))
            .prop_map(|(f, args)| GTerm::App(f, args))
    })
}

#[derive(Debug, Clone)]
struct GLit {
    neg: bool,
    pred: usize,
    args: Vec<GTerm>,
}

fn lit_strategy() -> impl Strategy<Value = GLit> {
    (
        any::<bool>(),
        0..PREDS.len(),
        prop::collection::vec(term_strategy(), 0..3),
    )
        .prop_map(|(neg, pred, args)| GLit { neg, pred, args })
}

#[derive(Debug, Clone)]
enum GBody {
    Lit(GLit),
    // lhs var, op index, rhs int, with optional addition
    Cmp(usize, usize, i64, Option<i64>),
}

fn body_strategy() -> impl Strategy<Value = GBody> {
    prop_oneof![
        lit_strategy().prop_map(GBody::Lit),
        (
            (0..VARS.len()),
            0..6usize,
            -20i64..100,
            prop::option::of(-5i64..5)
        )
            .prop_map(|(v, op, rhs, add)| GBody::Cmp(v, op, rhs, add)),
    ]
}

#[derive(Debug, Clone)]
struct GRule {
    head: GLit,
    body: Vec<GBody>,
}

fn rule_strategy() -> impl Strategy<Value = GRule> {
    (lit_strategy(), prop::collection::vec(body_strategy(), 0..4))
        .prop_map(|(head, body)| GRule { head, body })
}

#[derive(Debug, Clone)]
struct GProgram {
    /// Rules per module (up to 4 modules, identified by index).
    modules: Vec<Vec<GRule>>,
    /// Order edges (lower index < higher index ⇒ acyclic).
    edges: Vec<(usize, usize)>,
}

fn program_strategy() -> impl Strategy<Value = GProgram> {
    (2..=4usize)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(prop::collection::vec(rule_strategy(), 0..5), n..=n),
                prop::collection::vec((0..n, 0..n), 0..4),
            )
        })
        .prop_map(|(modules, raw_edges)| {
            let edges = raw_edges.into_iter().filter(|&(a, b)| a < b).collect();
            GProgram { modules, edges }
        })
}

fn build_term(w: &mut World, t: &GTerm) -> Term {
    match t {
        GTerm::Var(v) => Term::Var(w.syms.intern(VARS[*v])),
        GTerm::Const(c) => Term::Const(w.syms.intern(CONSTS[*c])),
        GTerm::Int(i) => Term::Int(*i),
        GTerm::App(f, args) => Term::App(
            w.syms.intern(FUNCS[*f]),
            args.iter().map(|a| build_term(w, a)).collect(),
        ),
    }
}

fn build_lit(w: &mut World, l: &GLit) -> Literal {
    let args: Vec<Term> = l.args.iter().map(|t| build_term(w, t)).collect();
    let pred = w.pred(PREDS[l.pred], args.len() as u32);
    Literal {
        sign: if l.neg { Sign::Neg } else { Sign::Pos },
        pred,
        args,
    }
}

const OPS: [CmpOp; 6] = [
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
    CmpOp::Eq,
    CmpOp::Ne,
];

fn build_program(w: &mut World, g: &GProgram) -> OrderedProgram {
    let mut prog = OrderedProgram::new();
    for (mi, rules) in g.modules.iter().enumerate() {
        let c = prog.add_component(w.syms.intern(MODS[mi]));
        for r in rules {
            let head = build_lit(w, &r.head);
            let body: Vec<BodyItem> = r
                .body
                .iter()
                .map(|b| match b {
                    GBody::Lit(l) => BodyItem::Lit(build_lit(w, l)),
                    GBody::Cmp(v, op, rhs, add) => {
                        let lhs = Aexp::Term(Term::Var(w.syms.intern(VARS[*v])));
                        let rhs_expr = match add {
                            None => Aexp::Term(Term::Int(*rhs)),
                            Some(k) => Aexp::Add(
                                Box::new(Aexp::Term(Term::Int(*rhs))),
                                Box::new(Aexp::Term(Term::Int(*k))),
                            ),
                        };
                        BodyItem::Cmp(Cmp {
                            op: OPS[*op % OPS.len()],
                            lhs,
                            rhs: rhs_expr,
                        })
                    }
                })
                .collect();
            prog.add_rule(c, Rule::new(head, body));
        }
    }
    for &(a, b) in &g.edges {
        prog.add_edge(olp_core::CompId(a as u32), olp_core::CompId(b as u32));
    }
    prog
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_round_trip(g in program_strategy()) {
        let mut w = World::new();
        let original = build_program(&mut w, &g);
        let printed = program_to_string(&w, &original);
        let reparsed = parse_program(&mut w, &printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{printed}"));
        prop_assert_eq!(
            &original.components, &reparsed.components,
            "components differ\n---\n{}", printed
        );
        // Edge multiset may differ in order only.
        let mut e1 = original.edges.clone();
        let mut e2 = reparsed.edges.clone();
        e1.sort_unstable();
        e2.sort_unstable();
        prop_assert_eq!(e1, e2, "edges differ\n---\n{}", printed);
    }

    /// Lexing arbitrary bytes never panics (errors are fine).
    #[test]
    fn lexer_never_panics(src in "\\PC*") {
        let _ = olp_parser::lexer::lex(&src);
    }

    /// Parsing arbitrary token soup never panics.
    #[test]
    fn parser_never_panics(src in "[a-zA-Z0-9_ (){},.:<>=+*/%~-]{0,120}") {
        let mut w = World::new();
        let _ = parse_program(&mut w, &src);
    }
}
