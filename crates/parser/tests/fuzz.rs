//! Parser hardening: arbitrary byte soup and mutilated versions of the
//! shipped sample programs must never panic the parser, and every
//! rejection must carry a usable source position (1-based line/column
//! within the input) rendered as `parse error at line:col: msg`.

use olp_core::World;
use olp_parser::{parse_program, ParseError};
use proptest::prelude::*;

/// The paper's sample programs, embedded so the test is hermetic.
const SAMPLES: &[&str] = &[
    include_str!("../../../examples/programs/penguin.olp"),
    include_str!("../../../examples/programs/loan.olp"),
    include_str!("../../../examples/programs/p5.olp"),
];

/// A rejection must point inside the input (or just past its end, for
/// unexpected-EOF errors) and must render with the position.
fn assert_error_is_diagnostic(src: &str, err: &ParseError) {
    let n_lines = src.lines().count().max(1) as u32;
    assert!(err.pos.line >= 1, "line is 1-based: {err}");
    assert!(err.pos.col >= 1, "col is 1-based: {err}");
    assert!(
        err.pos.line <= n_lines + 1,
        "line {} out of range for {n_lines}-line input",
        err.pos.line
    );
    let rendered = err.to_string();
    assert!(
        rendered.contains(&format!("{}:{}", err.pos.line, err.pos.col)),
        "rendered error must cite line:col, got {rendered:?}"
    );
}

/// Feed a candidate program through the parser; the only acceptable
/// outcomes are Ok or a positioned ParseError — never a panic.
fn check(src: &str) {
    let mut w = World::new();
    if let Err(e) = parse_program(&mut w, src) {
        assert_error_is_diagnostic(src, &e);
    }
}

proptest! {
    /// Raw byte soup (lossily decoded: the public entry point takes
    /// &str, so invalid UTF-8 cannot reach the parser).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        check(&String::from_utf8_lossy(&bytes));
    }

    /// ASCII soup biased toward the parser's own alphabet, so deeper
    /// paths (module headers, rules, comparisons) are actually reached.
    #[test]
    fn grammar_flavored_soup_never_panics(
        picks in prop::collection::vec(0usize..20, 0..64)
    ) {
        const FRAGMENTS: &[&str] = &[
            "module ", "order ", "< ", "{ ", "} ", ":- ", ". ", ", ",
            "-", "p(X)", "q(a, b)", "X > Y + 2", "f(s(zero))", "%c\n",
            "take_loan", "17", "(", ")", "!=", "\n",
        ];
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        check(&src);
    }

    /// Truncating a valid program at an arbitrary char boundary.
    #[test]
    fn truncated_samples_never_panic(which in 0usize..3, cut in 0usize..400) {
        let sample = SAMPLES[which];
        let cut = sample
            .char_indices()
            .map(|(i, _)| i)
            .chain([sample.len()])
            .take_while(|&i| i <= cut.min(sample.len()))
            .last()
            .unwrap_or(0);
        check(&sample[..cut]);
    }

    /// Single-byte mutations of a valid program (replace one char with
    /// a printable ASCII char).
    #[test]
    fn mutated_samples_never_panic(
        which in 0usize..3,
        at in 0usize..400,
        replacement in 0x20u8..0x7f
    ) {
        let sample = SAMPLES[which];
        let mut chars: Vec<char> = sample.chars().collect();
        if !chars.is_empty() {
            let at = at % chars.len();
            chars[at] = replacement as char;
        }
        check(&chars.iter().collect::<String>());
    }
}

#[test]
fn samples_parse_clean() {
    // Baseline: the unmutated samples are valid, so the fuzz tests
    // above really do start from parseable inputs.
    for s in SAMPLES {
        let mut w = World::new();
        parse_program(&mut w, s).expect("sample program parses");
    }
}

#[test]
fn error_positions_are_exact() {
    let mut w = World::new();
    let err = parse_program(&mut w, "module m {\n  p :- q,\n}").unwrap_err();
    assert_eq!(err.pos.line, 3, "error on the line with the stray brace");
    assert!(err.to_string().starts_with("parse error at 3:"));
}
