//! Parser hardening: arbitrary byte soup and mutilated versions of the
//! shipped sample programs must never panic the parser, and every
//! rejection must carry a usable source position (1-based line/column
//! within the input) rendered as `parse error at line:col: msg`.

use olp_core::World;
use olp_parser::{parse_program, ParseError};
use proptest::prelude::*;

/// The paper's sample programs, embedded so the test is hermetic.
const SAMPLES: &[&str] = &[
    include_str!("../../../examples/programs/penguin.olp"),
    include_str!("../../../examples/programs/loan.olp"),
    include_str!("../../../examples/programs/p5.olp"),
];

/// A rejection must point inside the input (or just past its end, for
/// unexpected-EOF errors) and must render with the position.
fn assert_error_is_diagnostic(src: &str, err: &ParseError) {
    let n_lines = src.lines().count().max(1) as u32;
    assert!(err.pos.line >= 1, "line is 1-based: {err}");
    assert!(err.pos.col >= 1, "col is 1-based: {err}");
    assert!(
        err.pos.line <= n_lines + 1,
        "line {} out of range for {n_lines}-line input",
        err.pos.line
    );
    let rendered = err.to_string();
    assert!(
        rendered.contains(&format!("{}:{}", err.pos.line, err.pos.col)),
        "rendered error must cite line:col, got {rendered:?}"
    );
}

/// Feed a candidate program through the parser; the only acceptable
/// outcomes are Ok or a positioned ParseError — never a panic.
fn check(src: &str) {
    let mut w = World::new();
    if let Err(e) = parse_program(&mut w, src) {
        assert_error_is_diagnostic(src, &e);
    }
}

proptest! {
    /// Raw byte soup (lossily decoded: the public entry point takes
    /// &str, so invalid UTF-8 cannot reach the parser).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        check(&String::from_utf8_lossy(&bytes));
    }

    /// ASCII soup biased toward the parser's own alphabet, so deeper
    /// paths (module headers, rules, comparisons) are actually reached.
    #[test]
    fn grammar_flavored_soup_never_panics(
        picks in prop::collection::vec(0usize..20, 0..64)
    ) {
        const FRAGMENTS: &[&str] = &[
            "module ", "order ", "< ", "{ ", "} ", ":- ", ". ", ", ",
            "-", "p(X)", "q(a, b)", "X > Y + 2", "f(s(zero))", "%c\n",
            "take_loan", "17", "(", ")", "!=", "\n",
        ];
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        check(&src);
    }

    /// Truncating a valid program at an arbitrary char boundary.
    #[test]
    fn truncated_samples_never_panic(which in 0usize..3, cut in 0usize..400) {
        let sample = SAMPLES[which];
        let cut = sample
            .char_indices()
            .map(|(i, _)| i)
            .chain([sample.len()])
            .take_while(|&i| i <= cut.min(sample.len()))
            .last()
            .unwrap_or(0);
        check(&sample[..cut]);
    }

    /// Single-byte mutations of a valid program (replace one char with
    /// a printable ASCII char).
    #[test]
    fn mutated_samples_never_panic(
        which in 0usize..3,
        at in 0usize..400,
        replacement in 0x20u8..0x7f
    ) {
        let sample = SAMPLES[which];
        let mut chars: Vec<char> = sample.chars().collect();
        if !chars.is_empty() {
            let at = at % chars.len();
            chars[at] = replacement as char;
        }
        check(&chars.iter().collect::<String>());
    }
}

/// Anything that parses must also analyze: no panic, and two runs over
/// the same program agree byte-for-byte (sorted, deterministic output).
fn check_analyze(world: &olp_core::World, prog: &olp_core::OrderedProgram) {
    let a = olp_analyze::analyze(world, prog);
    let b = olp_analyze::analyze(world, prog);
    assert_eq!(a, b, "analyze must be deterministic");
    let n_comps = prog.components.len();
    for d in &a {
        assert!(olp_analyze::Code::parse(d.code.as_str()).is_some());
        if let Some(c) = d.comp {
            assert!((c.index()) < n_comps, "component index out of range");
        }
        if let (Some(c), Some(r)) = (d.comp, d.rule) {
            assert!(
                r < prog.components[c.index()].rules.len(),
                "rule index out of range"
            );
        }
        assert!(!d.message.is_empty());
    }
}

proptest! {
    /// Grammar-flavored soup that happens to parse must analyze without
    /// panicking, deterministically, with in-range attributions.
    #[test]
    fn analyzer_survives_parsed_soup(
        picks in prop::collection::vec(0usize..20, 0..64)
    ) {
        const FRAGMENTS: &[&str] = &[
            "module ", "order ", "< ", "{ ", "} ", ":- ", ". ", ", ",
            "-", "p(X)", "q(a, b)", "X > Y + 2", "f(s(zero))", "%c\n",
            "take_loan", "17", "(", ")", "!=", "\n",
        ];
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let mut w = World::new();
        if let Ok(prog) = parse_program(&mut w, &src) {
            check_analyze(&w, &prog);
        }
    }

    /// Random ordered programs from the workload generator (the same
    /// generator `tests/theorems.rs` uses). These carry no span table,
    /// so this also exercises every `pos: None` path.
    #[test]
    fn analyzer_survives_random_ordered_programs(seed in 0u64..500) {
        let mut w = World::new();
        let prog = olp_workload::random_ordered(
            &mut w,
            &olp_workload::RandomCfg {
                n_atoms: 8,
                n_rules: 24,
                max_body: 3,
                neg_head_prob: 0.35,
                neg_body_prob: 0.4,
                n_components: 4,
                edge_prob: 0.5,
            },
            seed,
        );
        check_analyze(&w, &prog);
    }
}

#[test]
fn samples_parse_clean() {
    // Baseline: the unmutated samples are valid, so the fuzz tests
    // above really do start from parseable inputs.
    for s in SAMPLES {
        let mut w = World::new();
        parse_program(&mut w, s).expect("sample program parses");
    }
}

#[test]
fn error_positions_are_exact() {
    let mut w = World::new();
    let err = parse_program(&mut w, "module m {\n  p :- q,\n}").unwrap_err();
    assert_eq!(err.pos.line, 3, "error on the line with the stray brace");
    assert!(err.to_string().starts_with("parse error at 3:"));
}
