//! Pretty-printing of ordered programs back to parseable surface syntax.
//!
//! `parse(print(p)) == p` up to rule ordering inside modules — this is
//! property-tested in the crate's round-trip tests.

use olp_core::{OrderedProgram, World};

/// Renders a whole ordered program as parseable text: one `module`
/// block per component (in component-id order, so re-parsing assigns
/// identical ids) followed by standalone `order` declarations for the
/// `<` edges.
pub fn program_to_string(world: &World, prog: &OrderedProgram) -> String {
    let mut out = String::new();
    // All module blocks first (so re-parsing assigns the same component
    // indices), then the order edges as standalone declarations.
    for comp in &prog.components {
        out.push_str("module ");
        out.push_str(world.syms.name(comp.name));
        out.push_str(" {\n");
        for rule in &comp.rules {
            out.push_str("    ");
            out.push_str(&world.rule_str(rule));
            out.push('\n');
        }
        out.push_str("}\n");
    }
    for &(lo, hi) in &prog.edges {
        out.push_str(&format!(
            "order {} < {}.\n",
            world.syms.name(prog.components[lo.index()].name),
            world.syms.name(prog.components[hi.index()].name)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn round_trip_fig1() {
        let src = "
            module c2 {
                bird(penguin).
                fly(X) :- bird(X).
                -ground_animal(X) :- bird(X).
            }
            module c1 < c2 {
                ground_animal(penguin).
                -fly(X) :- ground_animal(X).
            }";
        let mut w = World::new();
        let p1 = parse_program(&mut w, src).unwrap();
        let printed = program_to_string(&w, &p1);
        let p2 = parse_program(&mut w, &printed).unwrap();
        assert_eq!(p1.components, p2.components);
        assert_eq!(p1.edges, p2.edges);
    }

    #[test]
    fn round_trip_comparisons_and_compounds() {
        let src = "
            module e3 < e4 {
                take_loan :- inflation(X), loan_rate(Y), X > Y + 2.
                nat(s(s(zero))).
                p(X) :- q(X), X mod 2 = 0, -r(X).
            }
            module e4 { -take_loan :- loan_rate(X), X > 14. }";
        let mut w = World::new();
        let p1 = parse_program(&mut w, src).unwrap();
        let printed = program_to_string(&w, &p1);
        let p2 = parse_program(&mut w, &printed).unwrap();
        assert_eq!(p1.components, p2.components);
        assert_eq!(p1.edges, p2.edges);
    }
}
