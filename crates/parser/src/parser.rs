//! Recursive-descent parser producing [`OrderedProgram`]s.
//!
//! ## Surface syntax
//!
//! ```text
//! program     := item*
//! item        := module | order | rule
//! module      := "module" name ("<" name ("," name)*)? "{" rule* "}"
//! order       := "order" name "<" name ("<" name)* "."
//! rule        := literal (":-" body)? "."
//! body        := bodyitem ("," bodyitem)*
//! bodyitem    := literal | comparison
//! literal     := "-"? atom
//! atom        := ident ("(" term ("," term)* ")")?
//! term        := VAR | INT | "-" INT | ident ("(" term ("," term)* ")")?
//! comparison  := aexpr ("<"|"<="|">"|">="|"="|"=="|"!="|"<>") aexpr
//! aexpr       := aterm (("+"|"-") aterm)*
//! aterm       := afactor (("*"|"/"|"mod") afactor)*
//! afactor     := INT | VAR | "(" aexpr ")" | "-" afactor | term
//! ```
//!
//! Rules outside any `module` block go to an implicit module `main`.
//! Modules may be re-opened; `module a < b { … }` both declares the
//! rules of `a` and the order edge `a < b` (i.e. `a` is more specific
//! and inherits from `b`). A body item starting with a variable,
//! integer, or `(` is a comparison; one starting with an identifier is a
//! literal — so arithmetic is over variables and integers only, exactly
//! what the paper's loan program needs.

use crate::lexer::{lex, LexError, Pos, Tok, Token};
use olp_core::{
    Aexp, BodyItem, Cmp, CmpOp, GLit, Literal, OrderedProgram, Rule, RuleSpan, Sign, Term, World,
};
use std::fmt;

/// Parse errors (including lexical ones), with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the error occurred.
    pub pos: Pos,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            pos: e.pos,
            msg: e.msg,
        }
    }
}

struct Parser<'w> {
    toks: Vec<Token>,
    at: usize,
    world: &'w mut World,
}

impl<'w> Parser<'w> {
    fn new(world: &'w mut World, src: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            toks: lex(src)?,
            at: 0,
            world,
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.at].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.at + 1).min(self.toks.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.at].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.at].tok.clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            pos: self.pos(),
            msg: msg.into(),
        })
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {}", self.peek()))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected {what}, found {other}")),
        }
    }

    // ---- terms ------------------------------------------------------

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.peek().clone() {
            Tok::Var(v) => {
                self.bump();
                Ok(Term::Var(self.world.syms.intern(&v)))
            }
            Tok::Int(i) => {
                self.bump();
                Ok(Term::Int(i))
            }
            Tok::Minus => {
                self.bump();
                match self.peek().clone() {
                    Tok::Int(i) => {
                        self.bump();
                        Ok(Term::Int(-i))
                    }
                    other => self.err(format!(
                        "expected integer after `-` in term position, found {other}"
                    )),
                }
            }
            Tok::Ident(name) => {
                self.bump();
                let sym = self.world.syms.intern(&name);
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = vec![self.term()?];
                    while *self.peek() == Tok::Comma {
                        self.bump();
                        args.push(self.term()?);
                    }
                    self.expect(&Tok::RParen, "`)` closing term arguments")?;
                    Ok(Term::App(sym, args))
                } else {
                    Ok(Term::Const(sym))
                }
            }
            other => self.err(format!("expected a term, found {other}")),
        }
    }

    // ---- literals -----------------------------------------------------

    fn literal(&mut self) -> Result<Literal, ParseError> {
        let sign = if *self.peek() == Tok::Minus {
            self.bump();
            Sign::Neg
        } else {
            Sign::Pos
        };
        let name = self.ident("a predicate name")?;
        let sym = self.world.syms.intern(&name);
        let mut args = Vec::new();
        if *self.peek() == Tok::LParen {
            self.bump();
            args.push(self.term()?);
            while *self.peek() == Tok::Comma {
                self.bump();
                args.push(self.term()?);
            }
            self.expect(&Tok::RParen, "`)` closing literal arguments")?;
        }
        let pred = self.world.preds.intern(sym, args.len() as u32);
        Ok(Literal { sign, pred, args })
    }

    // ---- arithmetic ----------------------------------------------------

    fn afactor(&mut self) -> Result<Aexp, ParseError> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Aexp::Term(Term::Int(i)))
            }
            Tok::Var(v) => {
                self.bump();
                Ok(Aexp::Term(Term::Var(self.world.syms.intern(&v))))
            }
            Tok::LParen => {
                self.bump();
                let e = self.aexpr()?;
                self.expect(&Tok::RParen, "`)` closing arithmetic group")?;
                Ok(e)
            }
            Tok::Minus => {
                self.bump();
                // Constant-fold negative integer literals so that the
                // printed form of `Term::Int(-1)` round-trips to the
                // same AST instead of `Neg(Int(1))`.
                if let Tok::Int(i) = *self.peek() {
                    self.bump();
                    return Ok(Aexp::Term(Term::Int(-i)));
                }
                Ok(Aexp::Neg(Box::new(self.afactor()?)))
            }
            // A constant or compound term: meaningful for the
            // structural `=` / `!=` comparisons (e.g. `P = p(a, a)`),
            // ill-typed (instance dropped) under ordering/arithmetic.
            Tok::Ident(_) => Ok(Aexp::Term(self.term()?)),
            other => self.err(format!(
                "expected an arithmetic factor (integer, variable, `(`, term), found {other}"
            )),
        }
    }

    fn aterm(&mut self) -> Result<Aexp, ParseError> {
        let mut e = self.afactor()?;
        loop {
            match self.peek() {
                Tok::Star => {
                    self.bump();
                    e = Aexp::Mul(Box::new(e), Box::new(self.afactor()?));
                }
                Tok::Slash => {
                    self.bump();
                    e = Aexp::Div(Box::new(e), Box::new(self.afactor()?));
                }
                Tok::Ident(s) if s == "mod" => {
                    self.bump();
                    e = Aexp::Mod(Box::new(e), Box::new(self.afactor()?));
                }
                _ => return Ok(e),
            }
        }
    }

    fn aexpr(&mut self) -> Result<Aexp, ParseError> {
        let mut e = self.aterm()?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.bump();
                    e = Aexp::Add(Box::new(e), Box::new(self.aterm()?));
                }
                Tok::Minus => {
                    self.bump();
                    e = Aexp::Sub(Box::new(e), Box::new(self.aterm()?));
                }
                _ => return Ok(e),
            }
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let op = match self.peek() {
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            other => return self.err(format!("expected a comparison operator, found {other}")),
        };
        self.bump();
        Ok(op)
    }

    // ---- rules ---------------------------------------------------------

    fn body_item(&mut self) -> Result<BodyItem, ParseError> {
        let starts_cmp = match self.peek() {
            Tok::Var(_) | Tok::Int(_) | Tok::LParen => true,
            Tok::Minus => !matches!(self.peek2(), Tok::Ident(_)),
            _ => false,
        };
        if starts_cmp {
            let lhs = self.aexpr()?;
            let op = self.cmp_op()?;
            let rhs = self.aexpr()?;
            Ok(BodyItem::Cmp(Cmp { op, lhs, rhs }))
        } else {
            Ok(BodyItem::Lit(self.literal()?))
        }
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        self.rule_spanned().map(|(r, _)| r)
    }

    /// Parses a rule, also recording where the head and each body item
    /// start (threaded into [`olp_core::SpanTable`] by [`Parser::program`]).
    fn rule_spanned(&mut self) -> Result<(Rule, RuleSpan), ParseError> {
        let head_pos = self.pos();
        let head = self.literal()?;
        let mut body = Vec::new();
        let mut body_pos = Vec::new();
        if *self.peek() == Tok::If {
            self.bump();
            body_pos.push(self.pos());
            body.push(self.body_item()?);
            while *self.peek() == Tok::Comma {
                self.bump();
                body_pos.push(self.pos());
                body.push(self.body_item()?);
            }
        }
        self.expect(&Tok::Dot, "`.` ending the rule")?;
        Ok((
            Rule { head, body },
            RuleSpan {
                head: head_pos,
                body: body_pos,
            },
        ))
    }

    // ---- program ---------------------------------------------------------

    fn program(&mut self) -> Result<OrderedProgram, ParseError> {
        let mut prog = OrderedProgram::new();
        let mut default_comp = None;
        while *self.peek() != Tok::Eof {
            match self.peek().clone() {
                Tok::Ident(kw) if kw == "module" => {
                    self.bump();
                    let name = self.ident("a module name")?;
                    let sym = self.world.syms.intern(&name);
                    let comp = prog
                        .component_by_name(sym)
                        .unwrap_or_else(|| prog.add_component(sym));
                    // Optional inline order: `module a < b, c { … }`.
                    if *self.peek() == Tok::Lt {
                        self.bump();
                        loop {
                            let edge_pos = self.pos();
                            let upper_name = self.ident("a module name after `<`")?;
                            let upper_sym = self.world.syms.intern(&upper_name);
                            let upper = prog
                                .component_by_name(upper_sym)
                                .unwrap_or_else(|| prog.add_component(upper_sym));
                            prog.add_edge_spanned(comp, upper, edge_pos);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::LBrace, "`{` opening the module body")?;
                    while *self.peek() != Tok::RBrace {
                        if *self.peek() == Tok::Eof {
                            return self.err("unterminated module body (missing `}`)");
                        }
                        let (r, span) = self.rule_spanned()?;
                        prog.add_rule_spanned(comp, r, span);
                    }
                    self.bump(); // consume `}`
                }
                Tok::Ident(kw) if kw == "order" => {
                    self.bump();
                    let first = self.ident("a module name")?;
                    let mut cur_sym = self.world.syms.intern(&first);
                    let mut cur = prog
                        .component_by_name(cur_sym)
                        .unwrap_or_else(|| prog.add_component(cur_sym));
                    self.expect(&Tok::Lt, "`<` in order declaration")?;
                    loop {
                        let edge_pos = self.pos();
                        let next = self.ident("a module name")?;
                        cur_sym = self.world.syms.intern(&next);
                        let next_id = prog
                            .component_by_name(cur_sym)
                            .unwrap_or_else(|| prog.add_component(cur_sym));
                        prog.add_edge_spanned(cur, next_id, edge_pos);
                        cur = next_id;
                        if *self.peek() == Tok::Lt {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(&Tok::Dot, "`.` ending the order declaration")?;
                }
                _ => {
                    let (r, span) = self.rule_spanned()?;
                    let comp = *default_comp.get_or_insert_with(|| {
                        let sym = self.world.syms.intern("main");
                        prog.component_by_name(sym)
                            .unwrap_or_else(|| prog.add_component(sym))
                    });
                    prog.add_rule_spanned(comp, r, span);
                }
            }
        }
        Ok(prog)
    }
}

/// Parses a full ordered program.
pub fn parse_program(world: &mut World, src: &str) -> Result<OrderedProgram, ParseError> {
    let mut p = Parser::new(world, src)?;
    p.program()
}

/// Parses a single rule (ending with `.`).
pub fn parse_rule(world: &mut World, src: &str) -> Result<Rule, ParseError> {
    let mut p = Parser::new(world, src)?;
    let r = p.rule()?;
    if *p.peek() != Tok::Eof {
        return p.err("trailing input after rule");
    }
    Ok(r)
}

/// Parses a single (possibly non-ground) literal, e.g. a query pattern
/// `"fly(X)"`. A trailing `.` is permitted.
pub fn parse_literal(world: &mut World, src: &str) -> Result<olp_core::Literal, ParseError> {
    let mut p = Parser::new(world, src)?;
    let lit = p.literal()?;
    if *p.peek() == Tok::Dot {
        p.bump();
    }
    if *p.peek() != Tok::Eof {
        return p.err("trailing input after literal");
    }
    Ok(lit)
}

/// Parses a single **ground** literal (no trailing `.` required) and
/// interns it, e.g. for queries: `"-fly(penguin)"`.
pub fn parse_ground_literal(world: &mut World, src: &str) -> Result<GLit, ParseError> {
    let mut p = Parser::new(world, src)?;
    let lit = p.literal()?;
    if *p.peek() == Tok::Dot {
        p.bump();
    }
    if *p.peek() != Tok::Eof {
        return p.err("trailing input after literal");
    }
    if !lit.is_ground() {
        return Err(ParseError {
            pos: Pos { line: 1, col: 1 },
            msg: "query literal must be ground".into(),
        });
    }
    let empty = olp_core::term::Bindings::default();
    let mut args = Vec::with_capacity(lit.args.len());
    for t in &lit.args {
        args.push(
            t.intern(&mut world.terms, &empty)
                .expect("ground term interning cannot fail"),
        );
    }
    let atom = world.atoms.intern(lit.pred, &args);
    Ok(GLit::new(lit.sign, atom))
}

#[cfg(test)]
mod tests {
    use super::*;
    use olp_core::CompId;

    fn parse(src: &str) -> (World, OrderedProgram) {
        let mut w = World::new();
        let p = parse_program(&mut w, src).unwrap();
        (w, p)
    }

    #[test]
    fn fig1_penguin_program() {
        let (w, p) = parse(
            "module c2 {
                bird(penguin).
                bird(pigeon).
                fly(X) :- bird(X).
                -ground_animal(X) :- bird(X).
             }
             module c1 < c2 {
                ground_animal(penguin).
                -fly(X) :- ground_animal(X).
             }",
        );
        assert_eq!(p.components.len(), 2);
        assert_eq!(p.components[0].rules.len(), 4);
        assert_eq!(p.components[1].rules.len(), 2);
        let o = p.order().unwrap();
        let c2 = p.component_by_name(w.syms.get("c2").unwrap()).unwrap();
        let c1 = p.component_by_name(w.syms.get("c1").unwrap()).unwrap();
        assert!(o.lt(c1, c2));
        // Check the negated-head rule parsed with a negative head.
        let neg_rule = &p.components[0].rules[3];
        assert_eq!(neg_rule.head.sign, Sign::Neg);
        assert_eq!(w.rule_str(neg_rule), "-ground_animal(X) :- bird(X).");
    }

    #[test]
    fn default_module_for_bare_rules() {
        let (w, p) = parse("a :- b. b.");
        assert_eq!(p.components.len(), 1);
        assert_eq!(w.syms.name(p.components[0].name), "main");
        assert_eq!(p.components[0].rules.len(), 2);
    }

    #[test]
    fn order_declaration_chain() {
        let (_, p) = parse(
            "module a { x. }
             module b { y. }
             module c { z. }
             order a < b < c.",
        );
        let o = p.order().unwrap();
        assert!(o.lt(CompId(0), CompId(1)));
        assert!(o.lt(CompId(1), CompId(2)));
        assert!(o.lt(CompId(0), CompId(2)));
    }

    #[test]
    fn module_reopening_merges() {
        let (_, p) = parse("module m { a. } module m { b. }");
        assert_eq!(p.components.len(), 1);
        assert_eq!(p.components[0].rules.len(), 2);
    }

    #[test]
    fn inline_multi_parent() {
        let (_, p) = parse("module kid < ma, pa { x. }");
        assert_eq!(p.components.len(), 3);
        let o = p.order().unwrap();
        assert!(o.lt(CompId(0), CompId(1)));
        assert!(o.lt(CompId(0), CompId(2)));
        assert!(o.incomparable(CompId(1), CompId(2)));
    }

    #[test]
    fn loan_program_comparisons() {
        let (w, p) = parse(
            "module expert2 { take_loan :- inflation(X), X > 11. }
             module expert4 { -take_loan :- loan_rate(X), X > 14. }
             module expert3 < expert4 {
                take_loan :- inflation(X), loan_rate(Y), X > Y + 2.
             }
             module myself < expert2, expert3 { }",
        );
        assert_eq!(p.components.len(), 4);
        let r = &p.components[2].rules[0];
        assert_eq!(
            w.rule_str(r),
            "take_loan :- inflation(X), loan_rate(Y), X > (Y + 2)."
        );
        assert_eq!(r.body_cmps().count(), 1);
        assert_eq!(r.body_lits().count(), 2);
    }

    #[test]
    fn negative_body_literal_vs_negative_number() {
        let mut w = World::new();
        let r = parse_rule(&mut w, "p(X) :- q(X), -r(X), X > -3.").unwrap();
        assert_eq!(r.body.len(), 3);
        assert!(matches!(&r.body[1], BodyItem::Lit(l) if l.sign == Sign::Neg));
        assert!(matches!(&r.body[2], BodyItem::Cmp(_)));
    }

    #[test]
    fn arithmetic_precedence() {
        let mut w = World::new();
        let r = parse_rule(&mut w, "p :- X = 1 + 2 * 3.").unwrap();
        let BodyItem::Cmp(c) = &r.body[0] else {
            panic!()
        };
        // 1 + (2*3), not (1+2)*3.
        assert_eq!(w.cmp_str(c), "X = (1 + (2 * 3))");
    }

    #[test]
    fn mod_and_division() {
        let mut w = World::new();
        let r = parse_rule(&mut w, "p :- X mod 2 = 0, Y / 2 > 1.").unwrap();
        assert_eq!(r.body.len(), 2);
    }

    #[test]
    fn compound_terms_parse() {
        let mut w = World::new();
        let r = parse_rule(&mut w, "nat(s(s(zero))).").unwrap();
        assert!(r.head.is_ground());
        assert_eq!(w.rule_str(&r), "nat(s(s(zero))).");
    }

    #[test]
    fn tilde_negation_alias() {
        let mut w = World::new();
        let r = parse_rule(&mut w, "~fly(X) :- ground_animal(X).").unwrap();
        assert_eq!(r.head.sign, Sign::Neg);
    }

    #[test]
    fn parse_ground_literal_queries() {
        let mut w = World::new();
        let l1 = parse_ground_literal(&mut w, "fly(penguin)").unwrap();
        let l2 = parse_ground_literal(&mut w, "-fly(penguin)").unwrap();
        assert_eq!(l1.atom(), l2.atom());
        assert_eq!(l1.complement(), l2);
        assert!(parse_ground_literal(&mut w, "fly(X)").is_err());
    }

    #[test]
    fn error_messages_carry_position() {
        let mut w = World::new();
        let e = parse_program(&mut w, "p :- q r.").unwrap_err();
        assert_eq!(e.pos.line, 1);
        assert!(e.msg.contains("expected"));
        let e2 = parse_program(&mut w, "module m { p.").unwrap_err();
        assert!(e2.msg.contains("unterminated") || e2.msg.contains('}'));
    }

    #[test]
    fn empty_module_ok() {
        let (_, p) = parse("module myself < expert2 { }");
        assert_eq!(p.components[0].rules.len(), 0);
    }

    #[test]
    fn zero_arity_predicates() {
        let mut w = World::new();
        let r = parse_rule(&mut w, "take_loan :- sunny.").unwrap();
        assert!(r.head.args.is_empty());
    }

    #[test]
    fn cycle_in_order_is_reported_by_order() {
        let (_, p) = parse("order a < b. order b < a.");
        assert!(p.order().is_err());
    }
}
