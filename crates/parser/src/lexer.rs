//! Lexer for the ordered-logic surface syntax.
//!
//! Tokens follow Prolog conventions: identifiers starting with a lower
//! case letter are constants/functors/predicate names, identifiers
//! starting with an upper case letter or `_` are variables. `%` and `//`
//! start line comments. `:-` separates head from body; `-` is both the
//! classical-negation prefix and arithmetic minus (the parser
//! disambiguates).

use std::fmt;

// The position type lives in `olp-core` (diagnostics produced by the
// `olp_analyze` lint pass carry it without depending on the parser);
// re-exported here so `olp_parser::Pos` keeps working.
pub use olp_core::span::Pos;

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// lower-case identifier (constant / functor / predicate / keyword)
    Ident(String),
    /// variable (upper-case or `_`-leading identifier)
    Var(String),
    /// integer literal
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:-`
    If,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=` or `==`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// end of input
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Var(s) => write!(f, "variable `{s}`"),
            Tok::Int(i) => write!(f, "integer `{i}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::If => write!(f, "`:-`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Ne => write!(f, "`!=`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Lexing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Where the error occurred.
    pub pos: Pos,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenises `src` fully (appending an [`Tok::Eof`] sentinel).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! pos {
        () => {
            Pos { line, col }
        };
    }
    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        // whitespace
        if c.is_ascii_whitespace() {
            bump!();
            continue;
        }
        // comments: `%` or `//` to end of line
        if c == '%' || (c == '/' && bytes.get(i + 1) == Some(&b'/')) {
            while i < bytes.len() && bytes[i] != b'\n' {
                bump!();
            }
            continue;
        }
        let start = pos!();
        // identifiers & variables
        if c.is_ascii_alphabetic() || c == '_' {
            let s = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                bump!();
            }
            let word = &src[s..i];
            let tok = if c.is_ascii_uppercase() || c == '_' {
                Tok::Var(word.to_string())
            } else {
                Tok::Ident(word.to_string())
            };
            out.push(Token { tok, pos: start });
            continue;
        }
        // integers
        if c.is_ascii_digit() {
            let s = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                bump!();
            }
            let text = &src[s..i];
            let val: i64 = text.parse().map_err(|_| LexError {
                pos: start,
                msg: format!("integer literal `{text}` out of range"),
            })?;
            out.push(Token {
                tok: Tok::Int(val),
                pos: start,
            });
            continue;
        }
        // operators & punctuation (byte-pair match: slicing the &str at
        // arbitrary byte offsets would panic inside multi-byte UTF-8)
        let two = if i + 1 < bytes.len() {
            Some((bytes[i], bytes[i + 1]))
        } else {
            None
        };
        let (tok, width) = match two {
            Some((b':', b'-')) => (Tok::If, 2),
            Some((b'<', b'=')) => (Tok::Le, 2),
            Some((b'>', b'=')) => (Tok::Ge, 2),
            Some((b'=', b'=')) => (Tok::Eq, 2),
            Some((b'!', b'=')) => (Tok::Ne, 2),
            Some((b'<', b'>')) => (Tok::Ne, 2),
            _ => match c {
                '(' => (Tok::LParen, 1),
                ')' => (Tok::RParen, 1),
                '{' => (Tok::LBrace, 1),
                '}' => (Tok::RBrace, 1),
                ',' => (Tok::Comma, 1),
                '.' => (Tok::Dot, 1),
                '<' => (Tok::Lt, 1),
                '>' => (Tok::Gt, 1),
                '=' => (Tok::Eq, 1),
                '+' => (Tok::Plus, 1),
                '-' => (Tok::Minus, 1),
                '~' => (Tok::Minus, 1), // `~p` accepted as alias for `-p`
                '*' => (Tok::Star, 1),
                '/' => (Tok::Slash, 1),
                _ => {
                    // Escape for display exactly once, here: a raw
                    // control character must not reach a terminal
                    // verbatim, and downstream encoders (the CLI's
                    // JSON mode) must see plain text they can quote
                    // without guessing whether it was pre-escaped.
                    return Err(LexError {
                        pos: start,
                        msg: format!("unexpected character `{}`", c.escape_default()),
                    });
                }
            },
        };
        for _ in 0..width {
            bump!();
        }
        out.push(Token { tok, pos: start });
    }
    out.push(Token {
        tok: Tok::Eof,
        pos: pos!(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_vars_ints() {
        assert_eq!(
            toks("bird X _y 42"),
            vec![
                Tok::Ident("bird".into()),
                Tok::Var("X".into()),
                Tok::Var("_y".into()),
                Tok::Int(42),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn rule_tokens() {
        assert_eq!(
            toks("fly(X) :- bird(X)."),
            vec![
                Tok::Ident("fly".into()),
                Tok::LParen,
                Tok::Var("X".into()),
                Tok::RParen,
                Tok::If,
                Tok::Ident("bird".into()),
                Tok::LParen,
                Tok::Var("X".into()),
                Tok::RParen,
                Tok::Dot,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= > >= = == != <>"),
            vec![
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Eq,
                Tok::Eq,
                Tok::Ne,
                Tok::Ne,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a % comment\nb // another\nc"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn tilde_is_minus_alias() {
        assert_eq!(
            toks("~fly"),
            vec![Tok::Minus, Tok::Ident("fly".into()), Tok::Eof]
        );
    }

    #[test]
    fn positions_tracked() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unexpected_char_errors() {
        let err = lex("p :- q ? r").unwrap_err();
        assert!(err.msg.contains('?'));
        assert_eq!(err.pos.line, 1);
    }

    #[test]
    fn big_int_overflow_errors() {
        assert!(lex("99999999999999999999999").is_err());
    }
}
