//! # olp-parser — surface syntax for ordered logic programs
//!
//! A lexer, recursive-descent parser and pretty-printer for the textual
//! form of ordered logic programs. Example (Fig. 1 of the paper):
//!
//! ```
//! use olp_core::World;
//! use olp_parser::parse_program;
//!
//! let mut world = World::new();
//! let program = parse_program(&mut world, "
//!     module c2 {
//!         bird(penguin).
//!         bird(pigeon).
//!         fly(X) :- bird(X).
//!         -ground_animal(X) :- bird(X).
//!     }
//!     module c1 < c2 {
//!         ground_animal(penguin).
//!         -fly(X) :- ground_animal(X).
//!     }
//! ").unwrap();
//! assert_eq!(program.components.len(), 2);
//! ```
//!
//! See [`parser`] for the grammar. [`mod@print`] renders programs back to
//! parseable text (round-tripping is property-tested).

#![warn(missing_docs)]

pub mod lexer;
pub mod parser;
pub mod print;

pub use lexer::{LexError, Pos, Tok, Token};
pub use parser::{parse_ground_literal, parse_literal, parse_program, parse_rule, ParseError};
pub use print::program_to_string;
