//! Positive and negative cases for every analysis (W01–W08, E01).

use olp_analyze::{analyze, max_severity, Code, Diagnostic, Severity};
use olp_core::World;
use olp_parser::parse_program;

fn run(src: &str) -> Vec<Diagnostic> {
    let mut world = World::new();
    let prog = parse_program(&mut world, src).expect("test program must parse");
    analyze(&world, &prog)
}

fn codes(src: &str) -> Vec<&'static str> {
    run(src).iter().map(|d| d.code.as_str()).collect()
}

// ---- W01: unsafe rule -------------------------------------------------

#[test]
fn w01_fires_on_head_var_unbound_by_body() {
    assert_eq!(codes("q(a). p(X) :- q(a)."), vec!["W01"]);
}

#[test]
fn w01_fires_on_unsafe_fact() {
    let diags = run("p(X).");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, Code::UnsafeRule);
    assert!(diags[0].message.contains("`X`"));
}

#[test]
fn w01_quiet_when_body_binds_all_vars() {
    assert_eq!(codes("q(a). p(X) :- q(X)."), Vec::<&str>::new());
}

// ---- W02: undefined predicate -----------------------------------------

#[test]
fn w02_fires_on_undefined_body_predicate() {
    assert_eq!(codes("p(a) :- q(a)."), vec!["W02"]);
}

#[test]
fn w02_is_sign_aware() {
    // `q` is defined positively but `-q` never is: classical negation
    // in the body needs its own rules.
    assert_eq!(codes("q(a). p(a) :- -q(a)."), vec!["W02"]);
}

#[test]
fn w02_sees_definitions_from_lower_components() {
    // `hi`'s rule participates in the view of `lo`, which contains
    // `lo`'s rules — so `q` counts as defined.
    let src = "module lo < hi { q(a). }\nmodule hi { p(X) :- q(X). }";
    assert_eq!(codes(src), Vec::<&str>::new());
}

#[test]
fn w02_fires_when_definition_is_in_unreachable_component() {
    // `a` and `b` are incomparable with nothing below both: no view
    // ever contains `a`'s facts alongside `b`'s rule.
    let src = "module a { q(1). }\nmodule b { p :- q(1). }";
    assert_eq!(codes(src), vec!["W02"]);
}

#[test]
fn w02_quiet_when_defined() {
    assert_eq!(codes("q(a). p(a) :- q(a)."), Vec::<&str>::new());
}

// ---- W03: arity mismatch ----------------------------------------------

#[test]
fn w03_fires_on_mixed_arity() {
    let diags = run("p(a). p(a, b).");
    assert_eq!(
        diags.iter().map(|d| d.code).collect::<Vec<_>>(),
        vec![Code::ArityMismatch]
    );
    assert!(diags[0].message.contains("arity 2"));
    assert!(diags[0].message.contains("arity 1"));
}

#[test]
fn w03_reports_each_new_arity_once() {
    assert_eq!(codes("p(a). p(a, b). p(b, c). p."), vec!["W03", "W03"]);
}

#[test]
fn w03_quiet_on_consistent_arity() {
    assert_eq!(codes("p(a). p(b)."), Vec::<&str>::new());
}

// ---- W04: singleton variable ------------------------------------------

#[test]
fn w04_fires_on_body_singleton() {
    let diags = run("q(a, b). p(X) :- q(X, Y).");
    assert_eq!(
        diags.iter().map(|d| d.code).collect::<Vec<_>>(),
        vec![Code::SingletonVariable]
    );
    assert!(diags[0].message.contains("`Y`"));
    assert!(diags[0].message.contains("`_Y`"));
}

#[test]
fn w04_quiet_on_underscore_prefix() {
    assert_eq!(codes("q(a, b). p(X) :- q(X, _Y)."), Vec::<&str>::new());
}

#[test]
fn w04_quiet_on_repeated_var_and_defers_head_singletons_to_w01() {
    // `X` used twice: fine. A head-only singleton is W01's finding, not
    // a W04 on top.
    assert_eq!(codes("q(a). r(X) :- q(X), q(X)."), Vec::<&str>::new());
    assert_eq!(codes("q(a). p(X) :- q(a)."), vec!["W01"]);
}

#[test]
fn w04_counts_comparison_uses() {
    assert_eq!(codes("q(1). p(X) :- q(X), X > 0."), Vec::<&str>::new());
}

// ---- W05: always-overruled rule ---------------------------------------

const PENGUIN: &str = "module c1 < c2 {\n    bird(penguin).\n    ground_animal(penguin).\n}\nmodule c2 {\n    -ground_animal(X) :- bird(X).\n}\n";

#[test]
fn w05_fires_on_fig1_penguin_shadow() {
    let diags = run(PENGUIN);
    assert_eq!(
        diags.iter().map(|d| d.code).collect::<Vec<_>>(),
        vec![Code::AlwaysOverruled]
    );
    assert!(diags[0].message.contains("ground_animal(penguin)"));
    assert!(diags[0].message.contains("`c1`"));
}

#[test]
fn w05_quiet_without_matching_fact() {
    // The specific component talks about a different individual, so the
    // heads don't unify.
    let src = "module c1 < c2 {\n    bird(penguin).\n    ground_animal(emu).\n}\nmodule c2 {\n    -ground_animal(penguin) :- bird(penguin).\n}\n";
    assert_eq!(codes(src), Vec::<&str>::new());
}

#[test]
fn w05_quiet_when_attacker_not_strictly_lower() {
    // Same program, order removed: the components are incomparable, so
    // the fact defeats rather than overrules (and W06 needs
    // co-occurrence, which also fails here).
    let src = "module c1 {\n    bird(penguin).\n    ground_animal(penguin).\n}\nmodule c2 {\n    -ground_animal(X) :- bird(X).\n}\n";
    let found = codes(src);
    assert!(!found.contains(&"W05"), "got {found:?}");
}

// ---- W06: guaranteed-defeat pair --------------------------------------

#[test]
fn w06_fires_on_fig2_incomparable_complementary_facts() {
    // Fig. 2: birds and penguins are incomparable; any view built below
    // both sees `fly(mimmo)` and `-fly(mimmo)` defeat each other.
    let src = "module birds { fly(mimmo). }\nmodule penguins { -fly(mimmo). }\nmodule obs < birds, penguins { bird(mimmo). }";
    let diags = run(src);
    assert_eq!(
        diags.iter().map(|d| d.code).collect::<Vec<_>>(),
        vec![Code::GuaranteedDefeat]
    );
    assert!(diags[0].message.contains("fly(mimmo)"));
}

#[test]
fn w06_fires_within_one_module() {
    let diags = run("p(a). -p(a).");
    assert_eq!(
        diags.iter().map(|d| d.code).collect::<Vec<_>>(),
        vec![Code::GuaranteedDefeat]
    );
    assert!(diags[0].message.contains("within module"));
}

#[test]
fn w06_quiet_without_a_view_containing_both() {
    // Incomparable and nothing below both: the facts never meet.
    let src = "module birds { fly(mimmo). }\nmodule penguins { -fly(mimmo). }";
    assert_eq!(codes(src), Vec::<&str>::new());
}

#[test]
fn w06_becomes_w05_when_order_decides() {
    // Once `penguins < birds`, the specific fact overrules instead of
    // defeating: W05 on the general fact, no W06.
    let src = "module penguins < birds { -fly(mimmo). }\nmodule birds { fly(mimmo). }";
    let found = codes(src);
    assert_eq!(found, vec!["W05"]);
}

#[test]
fn w06_quiet_on_different_arguments() {
    assert_eq!(codes("p(a). -p(b)."), Vec::<&str>::new());
}

// ---- W07: redundant order edge ----------------------------------------

#[test]
fn w07_fires_on_transitively_implied_edge() {
    let diags = run("module a {} module b {} module c {}\norder a < b < c.\norder a < c.");
    assert_eq!(
        diags.iter().map(|d| d.code).collect::<Vec<_>>(),
        vec![Code::RedundantOrderEdge]
    );
    assert!(diags[0].message.contains("implied transitively"));
}

#[test]
fn w07_fires_on_duplicate_edge() {
    let diags = run("module a {} module b {}\norder a < b.\norder a < b.");
    assert_eq!(
        diags.iter().map(|d| d.code).collect::<Vec<_>>(),
        vec![Code::RedundantOrderEdge]
    );
    assert!(diags[0].message.contains("more than once"));
}

#[test]
fn w07_quiet_on_a_chain() {
    assert_eq!(
        codes("module a {} module b {} module c {}\norder a < b < c."),
        Vec::<&str>::new()
    );
}

// ---- W08: statically dead rule ----------------------------------------

#[test]
fn w08_fires_on_transitive_undefinedness() {
    // `u` is defined but underivable (its only rule needs `missing`),
    // so `p`'s rule is dead — but only `u`'s own rule gets the W02.
    let diags = run("u(a) :- missing(a).\np(a) :- u(a).");
    assert_eq!(
        diags.iter().map(|d| d.code).collect::<Vec<_>>(),
        vec![Code::UndefinedPredicate, Code::DeadRule]
    );
    assert!(diags[1].message.contains("u(a)"));
}

#[test]
fn w08_keeps_self_supporting_cycles_alive() {
    // `-b :- -b.` licenses choosing `-b` (p5.olp): a least-fixpoint
    // analysis would flag it, the greatest fixpoint correctly does not.
    assert_eq!(codes("-b :- -b."), Vec::<&str>::new());
    assert_eq!(codes("a :- b.\nb :- a.\nc :- a."), Vec::<&str>::new());
}

#[test]
fn w08_quiet_on_derivable_chain() {
    assert_eq!(
        codes("base(a).\nu(X) :- base(X).\np(X) :- u(X)."),
        Vec::<&str>::new()
    );
}

// ---- E01: order errors ------------------------------------------------

#[test]
fn e01_fires_on_order_cycle() {
    let diags = run("module a {} module b {}\norder a < b.\norder b < a.");
    assert_eq!(
        diags.iter().map(|d| d.code).collect::<Vec<_>>(),
        vec![Code::OrderCycle]
    );
    assert_eq!(diags[0].severity, Severity::Error);
    assert_eq!(max_severity(&diags), Some(Severity::Error));
}

#[test]
fn e01_fires_on_self_edge() {
    let diags = run("module a < a {}");
    assert_eq!(
        diags.iter().map(|d| d.code).collect::<Vec<_>>(),
        vec![Code::OrderCycle]
    );
    assert!(diags[0].message.contains("below itself"));
}

#[test]
fn e01_skips_order_dependent_lints_but_not_the_rest() {
    // The cycle makes W02/W05-W08 unanswerable; W01 still runs.
    let diags = run("module a { p(X). }\nmodule b {}\norder a < b.\norder b < a.");
    let mut found: Vec<_> = diags.iter().map(|d| d.code).collect();
    found.sort();
    assert_eq!(found, vec![Code::UnsafeRule, Code::OrderCycle]);
}

#[test]
fn e01_quiet_on_valid_order() {
    assert_eq!(
        codes("module a {} module b {}\norder a < b."),
        Vec::<&str>::new()
    );
}

// ---- cross-cutting ----------------------------------------------------

#[test]
fn diagnostics_are_sorted_and_deterministic() {
    let src =
        "module m1 { p(X) :- miss_one(X). }\nmodule m2 { q(Y) :- miss_two(Y). }\norder m1 < m2.";
    let a = run(src);
    let b = run(src);
    assert_eq!(a, b);
    let comps: Vec<_> = a.iter().map(|d| d.comp.unwrap().0).collect();
    let mut sorted = comps.clone();
    sorted.sort_unstable();
    assert_eq!(comps, sorted);
}

#[test]
fn clean_program_has_no_diagnostics() {
    let src = "module c1 < c2 {\n    bird(tweety).\n}\nmodule c2 {\n    fly(X) :- bird(X).\n}\n";
    assert_eq!(run(src), Vec::<Diagnostic>::new());
}
