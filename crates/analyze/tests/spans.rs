//! Span regression tests: positions recorded by the lexer must survive
//! parsing and come out of the analyzer attached to the right
//! diagnostic — including through comments and multi-line rules.

use olp_analyze::{analyze, Code, Diagnostic};
use olp_core::{Pos, World};
use olp_parser::parse_program;

fn run(src: &str) -> Vec<Diagnostic> {
    let mut world = World::new();
    let prog = parse_program(&mut world, src).expect("test program must parse");
    analyze(&world, &prog)
}

fn pos(d: &Diagnostic) -> Pos {
    d.pos.expect("diagnostic should carry a span")
}

#[test]
fn rule_head_position_reaches_the_diagnostic() {
    // W01 anchors at the rule head.
    let src = "q(a).\n  p(X) :- q(a).\n";
    let diags = run(src);
    assert_eq!(diags[0].code, Code::UnsafeRule);
    assert_eq!(pos(&diags[0]), Pos { line: 2, col: 3 });
}

#[test]
fn body_literal_position_survives_comments_and_newlines() {
    // W02 anchors at the offending body literal, which sits on its own
    // line after a `%` comment and a blank line.
    let src =
        "% leading comment\nq(a).\n\np(X) :-\n    q(X),\n    missing(X). % trailing comment\n";
    let diags = run(src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, Code::UndefinedPredicate);
    assert_eq!(pos(&diags[0]), Pos { line: 6, col: 5 });
}

#[test]
fn slash_slash_comments_do_not_shift_spans() {
    let src = "// comment\nq(a). // same line\np(a) :- missing(a).\n";
    let diags = run(src);
    assert_eq!(diags[0].code, Code::UndefinedPredicate);
    assert_eq!(pos(&diags[0]), Pos { line: 3, col: 9 });
}

#[test]
fn penguin_w05_span_points_at_the_shadowed_rule() {
    // Mirrors examples/programs/penguin.olp: the always-overruled rule
    // is the module body's rule on line 5, indented four spaces.
    let src = "module c1 < c2 {\n    bird(penguin).\n    ground_animal(penguin).\n}\nmodule c2 {\n    -ground_animal(X) :- bird(X).\n}\n";
    let diags = run(src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, Code::AlwaysOverruled);
    assert_eq!(pos(&diags[0]), Pos { line: 6, col: 5 });
}

#[test]
fn order_edge_position_reaches_e01_and_w07() {
    // The edge span is the position of the upper module name.
    let cyc = "module a {}\nmodule b {}\norder a < b.\norder b < a.\n";
    let diags = run(cyc);
    assert_eq!(diags[0].code, Code::OrderCycle);
    // First edge mentioning the cyclic component: `a < b` on line 3,
    // where `b` starts at column 11.
    assert_eq!(pos(&diags[0]), Pos { line: 3, col: 11 });

    let red = "module a {}\nmodule b {}\nmodule c {}\norder a < b < c.\norder a < c.\n";
    let diags = run(red);
    assert_eq!(diags[0].code, Code::RedundantOrderEdge);
    assert_eq!(pos(&diags[0]), Pos { line: 5, col: 11 });
}

#[test]
fn spans_track_rules_inside_module_bodies() {
    let src = "module m {\n    q(a).\n    p(a, b) :- q(a).\n    p(a) :- q(a).\n}\n";
    let diags = run(src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, Code::ArityMismatch);
    // `p(a)` head on line 4, col 5 (first use fixed arity 2).
    assert_eq!(pos(&diags[0]), Pos { line: 4, col: 5 });
}

#[test]
fn multibyte_free_ascii_columns_are_one_based() {
    let diags = run("p(X).");
    assert_eq!(pos(&diags[0]), Pos { line: 1, col: 1 });
}
