//! `olp-analyze` — order-aware static analysis for ordered logic
//! programs.
//!
//! The analyzer runs a battery of lints over a parsed (non-ground)
//! [`OrderedProgram`](olp_core::OrderedProgram) and returns structured
//! [`Diagnostic`]s. Several lints are specific to *ordered* logic
//! programming: they read the component order `≤` as a static object
//! and predict, before any fixpoint runs, which rules can never
//! contribute to a model (always overruled by a more specific
//! component, guaranteed to be defeated by an incomparable one, or dead
//! because the dependency graph bottoms out in undefined predicates).
//!
//! | Code | Name | Meaning |
//! |------|------|---------|
//! | W01  | unsafe-rule | rule variable unbound by any body literal |
//! | W02  | undefined-predicate | body literal underivable in every view |
//! | W03  | arity-mismatch | one predicate symbol, several arities |
//! | W04  | singleton-variable | variable occurs exactly once |
//! | W05  | always-overruled | head complementary to a more specific fact |
//! | W06  | guaranteed-defeat | complementary facts defeat each other |
//! | W07  | redundant-order-edge | `<` edge implied by the others |
//! | W08  | dead-rule | body depends transitively on undefined predicates |
//! | W09  | unstratified-view | attack edge closes a dependency cycle |
//! | W10  | inert-order-edge | `<` edge never decides any conflict |
//! | W11  | single-model-stable | `stable` query on a provably single-model view |
//! | E01  | order-cycle | `<` is not a strict partial order |
//!
//! Beyond the lints, [`profile`](profile()) computes a semantic
//! [`ProgramProfile`] per component — stratification class,
//! conflict-freedom, order-relevance, and counting-domain cardinality
//! bounds — which the engine consults to pick fast paths.
//!
//! See `docs/ANALYSIS.md` for examples of each. Typical use:
//!
//! ```
//! use olp_core::World;
//! use olp_parser::parse_program;
//!
//! let mut world = World::new();
//! let prog = parse_program(
//!     &mut world,
//!     "module c1 < c2 { bird(tweety). }\n\
//!      module c2 { fly(X) :- bird(X), winged(X). }",
//! )
//! .unwrap();
//! let diags = olp_analyze::analyze(&world, &prog);
//! assert_eq!(diags.len(), 1); // W02: `winged` is never defined
//! assert_eq!(diags[0].code, olp_analyze::Code::UndefinedPredicate);
//! assert_eq!(diags[0].pos.unwrap().line, 2);
//! ```

#![warn(clippy::pedantic)]
#![allow(
    clippy::must_use_candidate,
    clippy::missing_panics_doc,
    clippy::module_name_repetitions,
    clippy::cast_possible_truncation,
    clippy::doc_markdown,
    clippy::too_many_lines,
    clippy::similar_names
)]

mod diag;
mod lints;
mod profile;

pub use diag::{max_severity, to_json_array, Code, Diagnostic, Severity, ALL_CODES};
pub use lints::analyze;
pub use profile::{
    component_profile, profile, ComponentProfile, PredBound, ProgramProfile, StratClass,
};
