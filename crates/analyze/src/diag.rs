//! Diagnostics: codes, severities, rendering (human and JSON).
//!
//! A [`Diagnostic`] is the analyzer's unit of output: a stable [`Code`],
//! a [`Severity`], a human-readable message, and — when the program came
//! through the parser — the component, rule index, and source [`Pos`] of
//! the offending syntax. Rendering follows the `file:line:col:
//! severity[CODE]: message` convention so editors and CI log matchers
//! can jump to the site.

use olp_core::{CompId, Pos};
use std::fmt;
use std::fmt::Write as _;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never gates.
    Info,
    /// Probable authoring mistake; gates under `--deny warnings`.
    Warn,
    /// The program is ill-formed (e.g. a cyclic component order);
    /// always gates.
    Error,
}

impl Severity {
    /// Lower-case label used in rendered diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Stable diagnostic codes, one per analysis (see `docs/ANALYSIS.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// W01 — a rule variable is not bound by any body literal.
    UnsafeRule,
    /// W02 — a body literal's predicate (with its sign) has no defining
    /// rule in any view the rule participates in.
    UndefinedPredicate,
    /// W03 — one predicate symbol used at several arities.
    ArityMismatch,
    /// W04 — a variable occurs exactly once in a rule.
    SingletonVariable,
    /// W05 — a rule head is complementary to an unconditional rule of a
    /// strictly more specific component: matching instances are always
    /// overruled.
    AlwaysOverruled,
    /// W06 — complementary unconditional heads in mutually defeating
    /// components: both conclusions are statically undefined.
    GuaranteedDefeat,
    /// W07 — a declared `<` edge already follows from the other
    /// declarations.
    RedundantOrderEdge,
    /// W08 — a rule body depends, through the dependency graph, on a
    /// predicate that can never be derived.
    DeadRule,
    /// W09 — a component's view is unstratified: an attack edge closes
    /// a dependency cycle, so stable models may branch. Informational —
    /// choice via unresolved conflicts is a legitimate modelling idiom.
    UnstratifiedView,
    /// W10 — a declared `<` edge that never decides a conflict (no
    /// complementary-head rule pair becomes comparable through it), in
    /// a program where the order decides at least one conflict.
    InertOrderEdge,
    /// W11 — a component is provably single-model (conflict-free or
    /// stratified) but was queried with `stable`: enumeration adds
    /// nothing over the least model. Emitted at query sites, not by
    /// [`crate::lints::analyze`].
    SingleModelStable,
    /// E01 — the declared component order is not a strict partial order.
    OrderCycle,
    /// E02 — the source is not syntactically well-formed. Produced by
    /// the CLI's machine-readable mode so `check --format json` always
    /// emits a JSON array, never a bare text line.
    ParseError,
}

/// Every code, in rendering order.
pub const ALL_CODES: &[Code] = &[
    Code::OrderCycle,
    Code::ParseError,
    Code::UnsafeRule,
    Code::UndefinedPredicate,
    Code::ArityMismatch,
    Code::SingletonVariable,
    Code::AlwaysOverruled,
    Code::GuaranteedDefeat,
    Code::RedundantOrderEdge,
    Code::DeadRule,
    Code::UnstratifiedView,
    Code::InertOrderEdge,
    Code::SingleModelStable,
];

impl Code {
    /// The stable short code (`W01`…`W08`, `E01`).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnsafeRule => "W01",
            Code::UndefinedPredicate => "W02",
            Code::ArityMismatch => "W03",
            Code::SingletonVariable => "W04",
            Code::AlwaysOverruled => "W05",
            Code::GuaranteedDefeat => "W06",
            Code::RedundantOrderEdge => "W07",
            Code::DeadRule => "W08",
            Code::UnstratifiedView => "W09",
            Code::InertOrderEdge => "W10",
            Code::SingleModelStable => "W11",
            Code::OrderCycle => "E01",
            Code::ParseError => "E02",
        }
    }

    /// A short kebab-case name for the analysis.
    pub fn name(self) -> &'static str {
        match self {
            Code::UnsafeRule => "unsafe-rule",
            Code::UndefinedPredicate => "undefined-predicate",
            Code::ArityMismatch => "arity-mismatch",
            Code::SingletonVariable => "singleton-variable",
            Code::AlwaysOverruled => "always-overruled",
            Code::GuaranteedDefeat => "guaranteed-defeat",
            Code::RedundantOrderEdge => "redundant-order-edge",
            Code::DeadRule => "dead-rule",
            Code::UnstratifiedView => "unstratified-view",
            Code::InertOrderEdge => "inert-order-edge",
            Code::SingleModelStable => "single-model-stable",
            Code::OrderCycle => "order-cycle",
            Code::ParseError => "parse-error",
        }
    }

    /// The code's severity.
    pub fn severity(self) -> Severity {
        match self {
            Code::OrderCycle | Code::ParseError => Severity::Error,
            Code::UnstratifiedView | Code::InertOrderEdge | Code::SingleModelStable => {
                Severity::Info
            }
            _ => Severity::Warn,
        }
    }

    /// Parses a short code (`"W05"`) back to a [`Code`].
    pub fn parse(s: &str) -> Option<Code> {
        ALL_CODES.iter().copied().find(|c| c.as_str() == s)
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which analysis fired.
    pub code: Code,
    /// Its severity (normally [`Code::severity`]).
    pub severity: Severity,
    /// Human-readable description, with names already rendered.
    pub message: String,
    /// The component the finding is attributed to, if any.
    pub comp: Option<CompId>,
    /// Rule index within that component, if the finding is rule-level.
    pub rule: Option<usize>,
    /// Source position, when the parser recorded spans.
    pub pos: Option<Pos>,
}

impl Diagnostic {
    /// Builds a diagnostic with the code's default severity.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            comp: None,
            rule: None,
            pos: None,
        }
    }

    /// Attributes the finding to a component.
    #[must_use]
    pub fn in_comp(mut self, comp: CompId) -> Self {
        self.comp = Some(comp);
        self
    }

    /// Attributes the finding to a rule of the component.
    #[must_use]
    pub fn at_rule(mut self, rule: usize) -> Self {
        self.rule = Some(rule);
        self
    }

    /// Attaches a source position.
    #[must_use]
    pub fn at(mut self, pos: Option<Pos>) -> Self {
        self.pos = pos;
        self
    }

    /// Renders as `file:line:col: severity[CODE]: message` (the
    /// location is dropped when no span was recorded).
    pub fn render(&self, file: &str) -> String {
        match self.pos {
            Some(p) => format!(
                "{file}:{p}: {}[{}]: {}",
                self.severity.label(),
                self.code,
                self.message
            ),
            None => format!(
                "{file}: {}[{}]: {}",
                self.severity.label(),
                self.code,
                self.message
            ),
        }
    }

    /// Renders as one JSON object (no trailing newline).
    pub fn to_json(&self, file: &str) -> String {
        let mut s = String::from("{");
        push_json_kv(&mut s, "file", file);
        s.push(',');
        push_json_kv(&mut s, "code", self.code.as_str());
        s.push(',');
        push_json_kv(&mut s, "name", self.code.name());
        s.push(',');
        push_json_kv(&mut s, "severity", self.severity.label());
        s.push(',');
        push_json_kv(&mut s, "message", &self.message);
        if let Some(p) = self.pos {
            let _ = write!(s, ",\"line\":{},\"col\":{}", p.line, p.col);
        }
        if let Some(c) = self.comp {
            let _ = write!(s, ",\"component\":{}", c.0);
        }
        if let Some(r) = self.rule {
            let _ = write!(s, ",\"rule\":{r}");
        }
        s.push('}');
        s
    }
}

/// The highest severity among `diags`, if any.
pub fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

/// Renders a full diagnostic list as a JSON array (pretty enough for
/// logs: one object per line).
pub fn to_json_array(diags: &[Diagnostic], file: &str) -> String {
    if diags.is_empty() {
        return "[]".to_string();
    }
    let body: Vec<String> = diags
        .iter()
        .map(|d| format!("  {}", d.to_json(file)))
        .collect();
    format!("[\n{}\n]", body.join(",\n"))
}

fn push_json_kv(out: &mut String, key: &str, val: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for ch in val.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_have_severities() {
        for &c in ALL_CODES {
            assert_eq!(Code::parse(c.as_str()), Some(c));
            match c {
                Code::OrderCycle | Code::ParseError => {
                    assert_eq!(c.severity(), Severity::Error);
                }
                Code::UnstratifiedView | Code::InertOrderEdge | Code::SingleModelStable => {
                    assert_eq!(c.severity(), Severity::Info);
                }
                _ => assert_eq!(c.severity(), Severity::Warn),
            }
        }
        assert_eq!(Code::parse("W99"), None);
    }

    #[test]
    fn render_with_and_without_pos() {
        let d = Diagnostic::new(Code::AlwaysOverruled, "shadowed");
        assert_eq!(d.render("p.olp"), "p.olp: warning[W05]: shadowed");
        let d = d.at(Some(Pos { line: 5, col: 5 }));
        assert_eq!(d.render("p.olp"), "p.olp:5:5: warning[W05]: shadowed");
    }

    #[test]
    fn json_escapes_and_carries_span() {
        let d = Diagnostic::new(Code::UnsafeRule, "a \"quoted\"\nthing")
            .at(Some(Pos { line: 2, col: 3 }))
            .in_comp(CompId(1))
            .at_rule(4);
        let j = d.to_json("a b.olp");
        assert!(j.contains("\"code\":\"W01\""));
        assert!(j.contains("\\\"quoted\\\"\\n"));
        assert!(j.contains("\"line\":2,\"col\":3"));
        assert!(j.contains("\"component\":1"));
        assert!(j.contains("\"rule\":4"));
        assert!(to_json_array(&[], "x").starts_with('['));
        let arr = to_json_array(&[d.clone(), d], "x.olp");
        assert!(arr.starts_with("[\n") && arr.ends_with("\n]"));
    }

    #[test]
    fn severity_ordering_and_max() {
        assert!(Severity::Info < Severity::Warn && Severity::Warn < Severity::Error);
        assert_eq!(max_severity(&[]), None);
        let w = Diagnostic::new(Code::UnsafeRule, "w");
        let e = Diagnostic::new(Code::OrderCycle, "e");
        assert_eq!(max_severity(std::slice::from_ref(&w)), Some(Severity::Warn));
        assert_eq!(max_severity(&[w, e]), Some(Severity::Error));
    }
}
