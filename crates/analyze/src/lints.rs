//! The analyses (W01–W08, E01).
//!
//! Every lint works on the *non-ground* program — the analyzer runs
//! before grounding, so findings point at the rules as written. The
//! order-aware lints (W02, W05–W08, E01) treat the component order as a
//! statically analyzable object, in the spirit of Defs. 2–4 of the
//! paper: which rules can ever be applicable, overruled, or defeated is
//! decidable from heads, facts, and `≤` alone.

use crate::diag::{Code, Diagnostic};
use olp_core::{
    tarjan_scc, BodyItem, CompId, FxHashMap, FxHashSet, Literal, Order, OrderError, OrderedProgram,
    Pos, PredId, Rule, Sign, Sym, Term, World,
};

/// A signed predicate: the unit of definition/derivability tracking.
/// Body negation is classical in this language, so `-q(X)` requires a
/// rule with head `-q`, not the absence of `q`.
type Key = (PredId, Sign);

/// Runs every analysis over `prog`, returning diagnostics sorted by
/// source position (component, rule, span, code). Deterministic: equal
/// inputs produce byte-identical output.
pub fn analyze(world: &World, prog: &OrderedProgram) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let order = match prog.order() {
        Ok(o) => Some(o),
        Err(e) => {
            diags.push(e01_order_error(world, prog, &e));
            None
        }
    };
    w01_unsafe_rules(world, prog, &mut diags);
    w03_arity_mismatch(world, prog, &mut diags);
    w04_singleton_variables(world, prog, &mut diags);
    if let Some(order) = &order {
        let avail = available_components(prog, order);
        w02_w08_definedness(world, prog, &avail, &mut diags);
        w05_always_overruled(world, prog, order, &mut diags);
        w06_guaranteed_defeat(world, prog, order, &mut diags);
        w07_redundant_edges(world, prog, &mut diags);
        crate::profile::w09_w10_profile(world, prog, order, &mut diags);
    }
    diags.sort_by(|a, b| sort_key(a).cmp(&sort_key(b)));
    diags
}

#[allow(clippy::type_complexity)]
fn sort_key(d: &Diagnostic) -> (u32, usize, u32, u32, &'static str, &str) {
    let (line, col) = d.pos.map_or((u32::MAX, u32::MAX), |p| (p.line, p.col));
    (
        d.comp.map_or(u32::MAX, |c| c.0),
        d.rule.unwrap_or(usize::MAX),
        line,
        col,
        d.code.as_str(),
        &d.message,
    )
}

fn comp_name<'w>(world: &'w World, prog: &OrderedProgram, c: CompId) -> &'w str {
    world.syms.name(prog.components[c.index()].name)
}

fn rule_pos(prog: &OrderedProgram, c: CompId, r: usize) -> Option<Pos> {
    prog.spans.rule_pos(c.index(), r)
}

fn body_pos(prog: &OrderedProgram, c: CompId, r: usize, item: usize) -> Option<Pos> {
    prog.spans
        .rule(c.index(), r)
        .and_then(|s| s.body_pos(item))
        .or_else(|| rule_pos(prog, c, r))
}

// ---- E01: order errors ------------------------------------------------

fn e01_order_error(world: &World, prog: &OrderedProgram, e: &OrderError) -> Diagnostic {
    let (comp, msg) = match e {
        OrderError::Cycle(c) => {
            (*c, {
                let name = comp_name(world, prog, *c);
                format!("component order is cyclic through `{name}`: `<` must be a strict partial order")
            })
        }
        OrderError::SelfEdge(c) => (*c, {
            let name = comp_name(world, prog, *c);
            format!("component `{name}` is declared below itself")
        }),
        OrderError::UnknownComponent(c) => {
            (*c, format!("order edge mentions unknown component {}", c.0))
        }
    };
    // Best-effort span: the first declared edge touching the component.
    let pos = prog
        .edges
        .iter()
        .position(|&(lo, hi)| lo == comp || hi == comp)
        .and_then(|i| prog.spans.edge_pos(i));
    Diagnostic::new(Code::OrderCycle, msg).in_comp(comp).at(pos)
}

// ---- W01: unsafe rules ------------------------------------------------

fn w01_unsafe_rules(world: &World, prog: &OrderedProgram, diags: &mut Vec<Diagnostic>) {
    for &(c, ri) in &prog.unsafe_rules() {
        let rule = &prog.components[c.index()].rules[ri];
        let mut body_vars = Vec::new();
        for l in rule.body_lits() {
            l.collect_vars(&mut body_vars);
        }
        let unbound: Vec<&str> = rule
            .vars()
            .into_iter()
            .filter(|v| !body_vars.contains(v))
            .map(|v| world.syms.name(v))
            .collect();
        diags.push(
            Diagnostic::new(
                Code::UnsafeRule,
                format!(
                    "unsafe rule: variable{} {} not bound by any body literal in `{}`",
                    if unbound.len() == 1 { "" } else { "s" },
                    unbound
                        .iter()
                        .map(|v| format!("`{v}`"))
                        .collect::<Vec<_>>()
                        .join(", "),
                    world.rule_str(rule)
                ),
            )
            .in_comp(c)
            .at_rule(ri)
            .at(rule_pos(prog, c, ri)),
        );
    }
}

// ---- W03: arity mismatches --------------------------------------------

fn w03_arity_mismatch(world: &World, prog: &OrderedProgram, diags: &mut Vec<Diagnostic>) {
    // First use of each predicate *symbol* fixes the expected arity;
    // later uses at a different arity are flagged once per new arity.
    let mut first: FxHashMap<Sym, u32> = FxHashMap::default();
    let mut reported: FxHashSet<(Sym, u32)> = FxHashSet::default();
    let mut visit = |world: &World,
                     diags: &mut Vec<Diagnostic>,
                     lit: &Literal,
                     c: CompId,
                     ri: usize,
                     pos: Option<Pos>| {
        let info = world.preds.info(lit.pred);
        let arity = lit.args.len() as u32;
        match first.get(&info.name) {
            None => {
                first.insert(info.name, arity);
            }
            Some(&a) if a != arity && reported.insert((info.name, arity)) => {
                diags.push(
                    Diagnostic::new(
                        Code::ArityMismatch,
                        format!(
                            "predicate `{}` used with arity {arity} but first used with arity {a}",
                            world.syms.name(info.name)
                        ),
                    )
                    .in_comp(c)
                    .at_rule(ri)
                    .at(pos),
                );
            }
            Some(_) => {}
        }
    };
    for (ci, comp) in prog.components.iter().enumerate() {
        let c = CompId(ci as u32);
        for (ri, rule) in comp.rules.iter().enumerate() {
            visit(world, diags, &rule.head, c, ri, rule_pos(prog, c, ri));
            for (bi, item) in rule.body.iter().enumerate() {
                if let BodyItem::Lit(l) = item {
                    visit(world, diags, l, c, ri, body_pos(prog, c, ri, bi));
                }
            }
        }
    }
}

// ---- W04: singleton variables -----------------------------------------

/// Where a variable occurrence sits in a rule.
#[derive(Clone, Copy)]
struct VarUse {
    count: usize,
    /// Body-item index of the first occurrence, if it is a body literal.
    first_body_lit: Option<usize>,
}

fn w04_singleton_variables(world: &World, prog: &OrderedProgram, diags: &mut Vec<Diagnostic>) {
    for (ci, comp) in prog.components.iter().enumerate() {
        let c = CompId(ci as u32);
        for (ri, rule) in comp.rules.iter().enumerate() {
            let mut uses: Vec<(Sym, VarUse)> = Vec::new();
            let mut bump =
                |v: Sym, body_lit: Option<usize>| match uses.iter_mut().find(|(s, _)| *s == v) {
                    Some((_, u)) => u.count += 1,
                    None => uses.push((
                        v,
                        VarUse {
                            count: 1,
                            first_body_lit: body_lit,
                        },
                    )),
                };
            for t in &rule.head.args {
                count_term_vars(t, &mut |v| bump(v, None));
            }
            for (bi, item) in rule.body.iter().enumerate() {
                match item {
                    BodyItem::Lit(l) => {
                        for t in &l.args {
                            count_term_vars(t, &mut |v| bump(v, Some(bi)));
                        }
                    }
                    BodyItem::Cmp(cmp) => {
                        let mut vars = Vec::new();
                        cmp.collect_vars(&mut vars);
                        // collect_vars dedups per call; comparisons only
                        // ever *consume* bindings, so one count is right
                        // for singleton detection.
                        for v in vars {
                            bump(v, None);
                        }
                    }
                }
            }
            for (v, u) in uses {
                let name = world.syms.name(v);
                // `_`-prefixed names opt out, Prolog-style; a lone
                // occurrence outside a body literal is W01's business
                // (the rule is unsafe there).
                if u.count == 1 && !name.starts_with('_') {
                    if let Some(bi) = u.first_body_lit {
                        diags.push(
                            Diagnostic::new(
                                Code::SingletonVariable,
                                format!(
                                    "singleton variable `{name}` in `{}` (rename to `_{name}` if intentional)",
                                    world.rule_str(rule)
                                ),
                            )
                            .in_comp(c)
                            .at_rule(ri)
                            .at(body_pos(prog, c, ri, bi)),
                        );
                    }
                }
            }
        }
    }
}

/// Calls `f` once per variable *occurrence* (no deduplication — unlike
/// `Term::collect_vars`, which is first-occurrence-only).
fn count_term_vars(t: &Term, f: &mut impl FnMut(Sym)) {
    match t {
        Term::Var(v) => f(*v),
        Term::Const(_) | Term::Int(_) => {}
        Term::App(_, args) => {
            for a in args {
                count_term_vars(a, f);
            }
        }
    }
}

// ---- W02 + W08: definedness and static deadness ------------------------

/// `avail[j]` = the components whose rules are visible from *some* view
/// that contains component `j`'s rules, i.e. `{k | ∃c ≤ j with c ≤ k}`.
/// A rule of `j` participates exactly in the views of components `c ≤
/// j`, so a body predicate undefined across `avail[j]` is undefined in
/// every view where the rule could ever fire.
fn available_components(prog: &OrderedProgram, order: &Order) -> Vec<Vec<u32>> {
    let n = prog.components.len();
    let mut avail = vec![vec![false; n]; n];
    for c in 0..n {
        let up: Vec<usize> = order.upset(CompId(c as u32)).map(CompId::index).collect();
        for (j, row) in avail.iter_mut().enumerate() {
            if order.leq(CompId(c as u32), CompId(j as u32)) {
                for &k in &up {
                    row[k] = true;
                }
            }
        }
    }
    avail
        .into_iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .filter_map(|(k, &b)| b.then_some(k as u32))
                .collect()
        })
        .collect()
}

/// Definedness facts for one set of visible components, shared between
/// W02 and W08.
struct Definedness {
    /// Signed predicates with at least one defining rule head.
    defined: Vec<Key>,
    /// Signed predicates that could be derived by *some* chain of rules
    /// (greatest fixpoint: cyclic self-support counts, so stable-model
    /// style choices like `-b :- -b.` are not flagged). Everything not
    /// here is statically underivable.
    supportable: Vec<Key>,
}

impl Definedness {
    fn is_defined(&self, k: Key) -> bool {
        self.defined.binary_search(&k).is_ok()
    }
    fn is_supportable(&self, k: Key) -> bool {
        self.supportable.binary_search(&k).is_ok()
    }
}

fn w02_w08_definedness(
    world: &World,
    prog: &OrderedProgram,
    avail: &[Vec<u32>],
    diags: &mut Vec<Diagnostic>,
) {
    // Memoise per distinct visible-component set: many components share
    // one (e.g. every leaf of a chain sees the whole program).
    let mut memo: FxHashMap<Vec<u32>, Definedness> = FxHashMap::default();
    for (ci, comp) in prog.components.iter().enumerate() {
        let c = CompId(ci as u32);
        let visible = &avail[ci];
        if !memo.contains_key(visible) {
            let rules: Vec<&Rule> = visible
                .iter()
                .flat_map(|&k| prog.components[k as usize].rules.iter())
                .collect();
            memo.insert(visible.clone(), definedness(&rules));
        }
        let def = &memo[visible];
        for (ri, rule) in comp.rules.iter().enumerate() {
            let mut direct_undefined = false;
            let mut dead_via: Option<(usize, &Literal)> = None;
            for (bi, item) in rule.body.iter().enumerate() {
                let BodyItem::Lit(l) = item else { continue };
                let key = (l.pred, l.sign);
                if !def.is_defined(key) {
                    direct_undefined = true;
                    diags.push(
                        Diagnostic::new(
                            Code::UndefinedPredicate,
                            format!(
                                "body literal `{}` can never hold: no rule or fact in any view of `{}` has a {} `{}` head",
                                world.lit_str(l),
                                comp_name(world, prog, c),
                                if l.sign == Sign::Pos { "positive" } else { "negative" },
                                world.syms.name(world.preds.info(l.pred).name),
                            ),
                        )
                        .in_comp(c)
                        .at_rule(ri)
                        .at(body_pos(prog, c, ri, bi)),
                    );
                } else if !def.is_supportable(key) && dead_via.is_none() {
                    dead_via = Some((bi, l));
                }
            }
            // W08 only when no body literal is *directly* undefined —
            // that case is W02's, and repeating it as W08 is noise.
            if let (false, Some((bi, l))) = (direct_undefined, dead_via) {
                diags.push(
                    Diagnostic::new(
                        Code::DeadRule,
                        format!(
                            "rule `{}` is statically dead: body literal `{}` is defined but every derivation chain for it bottoms out in an undefined predicate",
                            world.rule_str(rule),
                            world.lit_str(l),
                        ),
                    )
                    .in_comp(c)
                    .at_rule(ri)
                    .at(body_pos(prog, c, ri, bi)),
                );
            }
        }
    }
}

/// Computes defined + supportable signed predicates for a rule set.
///
/// Supportability is evaluated SCC-by-SCC on the signed dependency
/// graph (head → body edges, condensed with [`olp_core::tarjan_scc`]),
/// in reverse-topological component order so every dependency is
/// resolved before its dependents; within an SCC a greatest-fixpoint
/// pruning loop keeps cyclic self-support alive.
fn definedness(rules: &[&Rule]) -> Definedness {
    // Dense ids for every signed predicate mentioned anywhere.
    let mut ids: FxHashMap<Key, u32> = FxHashMap::default();
    let mut keys: Vec<Key> = Vec::new();
    let mut id_of = |k: Key, keys: &mut Vec<Key>| -> u32 {
        *ids.entry(k).or_insert_with(|| {
            keys.push(k);
            (keys.len() - 1) as u32
        })
    };
    let mut heads: Vec<Vec<usize>> = Vec::new(); // node -> rule indices
    let mut bodies: Vec<Vec<u32>> = Vec::new(); // rule -> body nodes
    let mut adj: Vec<Vec<u32>> = Vec::new();
    let ensure_node = |n: u32, heads: &mut Vec<Vec<usize>>, adj: &mut Vec<Vec<u32>>| {
        while heads.len() <= n as usize {
            heads.push(Vec::new());
            adj.push(Vec::new());
        }
    };
    for (ri, rule) in rules.iter().enumerate() {
        let h = id_of((rule.head.pred, rule.head.sign), &mut keys);
        ensure_node(h, &mut heads, &mut adj);
        heads[h as usize].push(ri);
        let mut body_nodes = Vec::new();
        for l in rule.body_lits() {
            let b = id_of((l.pred, l.sign), &mut keys);
            ensure_node(b, &mut heads, &mut adj);
            adj[h as usize].push(b);
            body_nodes.push(b);
        }
        bodies.push(body_nodes);
    }
    let n = keys.len();
    let defined: Vec<bool> = (0..n).map(|v| !heads[v].is_empty()).collect();
    let (scc_of, n_sccs) = tarjan_scc(&adj);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_sccs];
    for (v, &s) in scc_of.iter().enumerate() {
        members[s as usize].push(v);
    }
    let mut supportable = vec![false; n];
    // Component id 0 is a sink; increasing id order visits dependencies
    // first (tarjan_scc's reverse-topological guarantee).
    for scc in &members {
        // Optimistic start: every defined member might be supportable.
        let mut live: Vec<bool> = scc.iter().map(|&v| defined[v]).collect();
        loop {
            let mut changed = false;
            for (i, &v) in scc.iter().enumerate() {
                if !live[i] {
                    continue;
                }
                let supported = heads[v].iter().any(|&ri| {
                    bodies[ri].iter().all(|&b| {
                        let b = b as usize;
                        match scc.iter().position(|&m| m == b) {
                            Some(j) => live[j],
                            None => supportable[b],
                        }
                    })
                });
                if !supported {
                    live[i] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (i, &v) in scc.iter().enumerate() {
            supportable[v] = live[i];
        }
    }
    let mut defined_keys: Vec<Key> = keys
        .iter()
        .enumerate()
        .filter_map(|(v, &k)| defined[v].then_some(k))
        .collect();
    let mut supportable_keys: Vec<Key> = keys
        .iter()
        .enumerate()
        .filter_map(|(v, &k)| supportable[v].then_some(k))
        .collect();
    defined_keys.sort_unstable();
    supportable_keys.sort_unstable();
    Definedness {
        defined: defined_keys,
        supportable: supportable_keys,
    }
}

// ---- W05: always-overruled rules --------------------------------------

/// A ground fact in a strictly more specific component is unconditional:
/// always applicable, never blocked. Any less specific rule whose head
/// unifies with the fact's complement is overruled on every matching
/// instance (Fig. 1's penguin shadow, read off the order alone).
fn w05_always_overruled(
    world: &World,
    prog: &OrderedProgram,
    order: &Order,
    diags: &mut Vec<Diagnostic>,
) {
    let facts = ground_facts(prog);
    for (cj, comp) in prog.components.iter().enumerate() {
        let victim_comp = CompId(cj as u32);
        for (rj, rule) in comp.rules.iter().enumerate() {
            let mut attackers: Vec<&(CompId, usize, &Literal)> = facts
                .iter()
                .filter(|(ci, _, f)| {
                    order.lt(*ci, victim_comp)
                        && f.pred == rule.head.pred
                        && f.sign == rule.head.sign.flip()
                        && match_pattern(&rule.head.args, &f.args)
                })
                .collect();
            attackers.sort_by_key(|(ci, fi, _)| (ci.0, *fi));
            if let Some((ci, _, f)) = attackers.first() {
                let extra = if attackers.len() > 1 {
                    format!(" (and {} more)", attackers.len() - 1)
                } else {
                    String::new()
                };
                diags.push(
                    Diagnostic::new(
                        Code::AlwaysOverruled,
                        format!(
                            "rule `{}` is always overruled on instances matching `{}`: more specific component `{}` asserts the complement unconditionally{extra}",
                            world.rule_str(rule),
                            world.lit_str(f),
                            comp_name(world, prog, *ci),
                        ),
                    )
                    .in_comp(victim_comp)
                    .at_rule(rj)
                    .at(rule_pos(prog, victim_comp, rj)),
                );
            }
        }
    }
}

// ---- W06: guaranteed-defeat pairs -------------------------------------

/// Complementary ground facts in components that defeat each other
/// (equal or incomparable) knock each other out in every view that sees
/// both: both conclusions are statically undefined (Fig. 2's `mimmo`).
fn w06_guaranteed_defeat(
    world: &World,
    prog: &OrderedProgram,
    order: &Order,
    diags: &mut Vec<Diagnostic>,
) {
    let facts = ground_facts(prog);
    let n = prog.components.len();
    for (i, (c1, _r1, f1)) in facts.iter().enumerate() {
        for (c2, r2, f2) in facts.iter().skip(i + 1) {
            if f1.pred != f2.pred || f1.sign != f2.sign.flip() || f1.args != f2.args {
                continue;
            }
            if !order.can_defeat(*c1, *c2) {
                continue;
            }
            // Only meaningful if some view contains both facts.
            let co_occur = (0..n)
                .any(|w| order.leq(CompId(w as u32), *c1) && order.leq(CompId(w as u32), *c2));
            if !co_occur {
                continue;
            }
            let where_ = if c1 == c2 {
                format!("within module `{}`", comp_name(world, prog, *c1))
            } else {
                format!(
                    "from incomparable modules `{}` and `{}`",
                    comp_name(world, prog, *c1),
                    comp_name(world, prog, *c2),
                )
            };
            diags.push(
                Diagnostic::new(
                    Code::GuaranteedDefeat,
                    format!(
                        "facts `{}` and `{}` {where_} defeat each other: both conclusions are statically undefined in every view that sees them",
                        world.lit_str(f1),
                        world.lit_str(f2),
                    ),
                )
                .in_comp(*c2)
                .at_rule(*r2)
                .at(rule_pos(prog, *c2, *r2)),
            );
        }
    }
}

/// All ground facts as `(component, rule index, head literal)`.
fn ground_facts(prog: &OrderedProgram) -> Vec<(CompId, usize, &Literal)> {
    let mut out = Vec::new();
    for (ci, comp) in prog.components.iter().enumerate() {
        for (ri, rule) in comp.rules.iter().enumerate() {
            if rule.is_fact() && rule.head.is_ground() {
                out.push((CompId(ci as u32), ri, &rule.head));
            }
        }
    }
    out
}

/// Matches pattern terms (may contain variables, bound consistently)
/// against ground terms.
fn match_pattern(pattern: &[Term], ground: &[Term]) -> bool {
    let mut bindings: Vec<(Sym, &Term)> = Vec::new();
    pattern
        .iter()
        .zip(ground)
        .all(|(p, g)| term_match(p, g, &mut bindings))
}

fn term_match<'a>(p: &Term, g: &'a Term, bindings: &mut Vec<(Sym, &'a Term)>) -> bool {
    match p {
        Term::Var(v) => {
            if let Some((_, bound)) = bindings.iter().find(|(s, _)| s == v) {
                *bound == g
            } else {
                bindings.push((*v, g));
                true
            }
        }
        Term::Const(c) => matches!(g, Term::Const(d) if c == d),
        Term::Int(i) => matches!(g, Term::Int(j) if i == j),
        Term::App(f, fargs) => match g {
            Term::App(gf, gargs) if gf == f && gargs.len() == fargs.len() => fargs
                .iter()
                .zip(gargs)
                .all(|(a, b)| term_match(a, b, bindings)),
            _ => false,
        },
    }
}

// ---- W07: redundant order edges ---------------------------------------

/// A declared `<` edge already implied by the others (transitively, or
/// an outright duplicate) adds nothing to the order.
fn w07_redundant_edges(world: &World, prog: &OrderedProgram, diags: &mut Vec<Diagnostic>) {
    for (ei, &(lo, hi)) in prog.edges.iter().enumerate() {
        let duplicate = prog.edges[..ei].contains(&(lo, hi));
        let implied = duplicate || {
            // Exclude *every* copy of this edge, so a duplicated pair
            // is reported once (as a duplicate) rather than twice.
            let rest: Vec<(CompId, CompId)> = prog
                .edges
                .iter()
                .filter(|&&e| e != (lo, hi))
                .copied()
                .collect();
            match Order::from_edges(prog.components.len(), &rest) {
                Ok(o) => o.lt(lo, hi),
                Err(_) => false,
            }
        };
        if implied {
            diags.push(
                Diagnostic::new(
                    Code::RedundantOrderEdge,
                    format!(
                        "order edge `{} < {}` is {}",
                        comp_name(world, prog, lo),
                        comp_name(world, prog, hi),
                        if duplicate {
                            "declared more than once"
                        } else {
                            "already implied transitively by the other declarations"
                        },
                    ),
                )
                .in_comp(lo)
                .at(prog.spans.edge_pos(ei)),
            );
        }
    }
}
