//! Program profiles: per-component abstract interpretation over the
//! predicate graph.
//!
//! Where the lints (W01–W08) point at probable authoring mistakes, the
//! profile answers *semantic* questions the engine can act on, computed
//! from the non-ground program alone:
//!
//! * **conflict-freedom** — can any pair of complementary heads ever be
//!   co-derived? If not, no rule is ever overruled or defeated and the
//!   view has exactly one stable model (the least model).
//! * **stratification class** — negation-free / stratified /
//!   unstratified, over the signed predicate dependency graph with
//!   *attack edges* (victim head → complement of attacker body
//!   literal, the literals whose derivation *blocks* the attacker). A
//!   stratified view resolves every attack strictly below the attacked
//!   stratum, so the least fixpoint is its unique stable model and
//!   enumeration is unnecessary.
//! * **order-relevance** — does any declared `<` edge ever decide a
//!   conflict (overrule rather than defeat)? If not, preference never
//!   changes a model.
//! * **cardinality bounds** — a counting abstract domain per signed
//!   predicate: how many ground facts define it and whether non-fact
//!   rules can grow it (seed statistics for the join planner before any
//!   measured stats exist).
//!
//! Everything here **over-approximates** the ground program: the
//! abstraction maps every ground instance of a rule onto its predicate
//! skeleton, so any ground attack or dependency edge has a pre-image in
//! the abstract graph (see `docs/ANALYSIS.md`, "Program profiles", for
//! the soundness argument). The profile may therefore miss a fast path
//! (claim `Unstratified` for a semantically tame program) but never
//! claims one that does not hold.

use crate::diag::{Code, Diagnostic};
use olp_core::{
    tarjan_scc, CompId, FxHashMap, FxHashSet, Literal, Order, OrderedProgram, PredId, Rule, Sign,
    Sym, Term, World,
};

/// Stratification class of a component's view, coarsest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StratClass {
    /// No negative heads and no negative body literals anywhere in the
    /// view: a plain definite program. No attack machinery is needed at
    /// all.
    NegationFree,
    /// Negation (complementary heads) occurs, but every attack is
    /// resolved strictly below the attacked stratum: the least model is
    /// the unique stable model.
    Stratified,
    /// Some strongly connected component of the dependency graph
    /// contains an attack edge: stable models may branch.
    Unstratified,
}

impl StratClass {
    /// Lower-case label used in rendered profiles.
    pub fn label(self) -> &'static str {
        match self {
            StratClass::NegationFree => "negation-free",
            StratClass::Stratified => "stratified",
            StratClass::Unstratified => "unstratified",
        }
    }
}

/// Counting-domain bound for one signed predicate of a view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredBound {
    /// The predicate.
    pub pred: PredId,
    /// Which sign of it this bound describes.
    pub sign: Sign,
    /// Distinct ground facts with this signed head in the view.
    pub facts: usize,
    /// `true` when no non-fact rule can derive it: `facts` is then the
    /// exact cardinality of the predicate in every model.
    pub exact: bool,
}

/// The profile of one component's view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentProfile {
    /// The component this profile describes (the view is `C*`).
    pub comp: CompId,
    /// Rules visible from the component (its own plus all inherited).
    pub rules_in_view: usize,
    /// Rule pairs with complementary, unifiable heads: the potential
    /// attacks (overrules and defeats) of the view.
    pub conflict_pairs: usize,
    /// Conflict pairs whose components are strictly ordered — the
    /// attacks the preference order *decides* (overrules).
    pub ordered_conflicts: usize,
    /// Whether any preference edge can ever change a model of this
    /// view: `ordered_conflicts > 0`.
    pub order_relevant: bool,
    /// Stratification class of the view (see [`StratClass`]).
    pub strat: StratClass,
    /// No conflict pairs at all: no rule is ever overruled or defeated.
    pub conflict_free: bool,
    /// Provably exactly one stable model (= the least model): the view
    /// is conflict-free or stratified.
    pub single_model: bool,
    /// A witness for unstratifiedness: the signed predicate at the head
    /// of an attack edge that closes a cycle.
    pub unstrat_witness: Option<(PredId, Sign)>,
    /// Counting-domain cardinality bounds, sorted by `(pred, sign)`.
    pub pred_bounds: Vec<PredBound>,
}

impl ComponentProfile {
    /// One-line machine-greppable summary (used by `olp check
    /// --explain` and the CI profile gate).
    pub fn summary(&self) -> String {
        format!(
            "strat={} order={} conflicts={} overrules={} single-model={} rules-in-view={}",
            self.strat.label(),
            if self.order_relevant {
                "relevant"
            } else {
                "irrelevant"
            },
            self.conflict_pairs,
            self.ordered_conflicts,
            if self.single_model { "yes" } else { "no" },
            self.rules_in_view,
        )
    }

    /// The bound for one signed predicate, if the view mentions it.
    pub fn bound(&self, pred: PredId, sign: Sign) -> Option<&PredBound> {
        self.pred_bounds
            .iter()
            .find(|b| b.pred == pred && b.sign == sign)
    }
}

/// The whole program's profile: one [`ComponentProfile`] per component,
/// in declaration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramProfile {
    /// Per-component profiles, indexed by [`CompId::index`].
    pub components: Vec<ComponentProfile>,
}

/// Profiles every component of `prog`. Returns `None` when the
/// declared order is not a strict partial order (E01 territory — there
/// is no well-defined view to profile).
pub fn profile(prog: &OrderedProgram) -> Option<ProgramProfile> {
    let order = prog.order().ok()?;
    Some(ProgramProfile {
        components: (0..prog.components.len())
            .map(|ci| component_profile(prog, &order, CompId(ci as u32)))
            .collect(),
    })
}

/// Profiles a single component's view `C*` (see module docs).
pub fn component_profile(prog: &OrderedProgram, order: &Order, c: CompId) -> ComponentProfile {
    let rules = view_rules(prog, order, c);
    let (conflicts, ordered_conflicts) = conflict_pairs(&rules, order);
    let negation_free = rules
        .iter()
        .all(|(_, r)| r.head.sign == Sign::Pos && r.body_lits().all(|l| l.sign == Sign::Pos));
    let (strat, unstrat_witness) = if negation_free {
        (StratClass::NegationFree, None)
    } else {
        stratify(&rules, &conflicts)
    };
    let conflict_free = conflicts.is_empty();
    ComponentProfile {
        comp: c,
        rules_in_view: rules.len(),
        conflict_pairs: conflicts.len(),
        ordered_conflicts,
        order_relevant: ordered_conflicts > 0,
        strat,
        conflict_free,
        single_model: conflict_free || strat != StratClass::Unstratified,
        unstrat_witness,
        pred_bounds: pred_bounds(&rules),
    }
}

/// The rules of the view `C*`: every rule of a component `d` with
/// `c ≤ d`, tagged with its component.
fn view_rules<'p>(prog: &'p OrderedProgram, order: &Order, c: CompId) -> Vec<(CompId, &'p Rule)> {
    let mut out = Vec::new();
    for (di, comp) in prog.components.iter().enumerate() {
        let d = CompId(di as u32);
        if order.leq(c, d) {
            out.extend(comp.rules.iter().map(|r| (d, r)));
        }
    }
    out
}

/// All conflict pairs of a rule set — indices `(i, j)` with `i < j`
/// whose heads are complementary and unifiable — plus how many of them
/// are decided by a strict order edge.
fn conflict_pairs(rules: &[(CompId, &Rule)], order: &Order) -> (Vec<(usize, usize)>, usize) {
    // Bucket rule indices by head predicate so the quadratic pass only
    // runs within a predicate.
    let mut by_pred: FxHashMap<PredId, Vec<usize>> = FxHashMap::default();
    for (i, (_, r)) in rules.iter().enumerate() {
        by_pred.entry(r.head.pred).or_default().push(i);
    }
    let mut pairs = Vec::new();
    let mut ordered = 0usize;
    for idxs in by_pred.values() {
        for (k, &i) in idxs.iter().enumerate() {
            for &j in &idxs[k + 1..] {
                let (ci, ri) = rules[i];
                let (cj, rj) = rules[j];
                if ri.head.sign == rj.head.sign.flip() && heads_unify(&ri.head, &rj.head) {
                    if order.lt(ci, cj) || order.lt(cj, ci) {
                        ordered += 1;
                    }
                    pairs.push((i, j));
                }
            }
        }
    }
    pairs.sort_unstable();
    (pairs, ordered)
}

/// Stratification over the signed predicate graph: positive edges `head
/// → body literal` per rule, attack edges `victim head → complement of
/// attacker body literal` per conflict pair. The attack edges encode
/// *blocking*: a suppressed victim can only start firing once some
/// attacker body literal's **complement** is derived, so the victim's
/// derivation depends on those complements. A view is stratified iff no
/// SCC contains an attack edge — every blocking resolution then lives
/// strictly below the victim, the least fixpoint decides every attack
/// the same way modelhood does, and the least model is the unique
/// stable model (`docs/ANALYSIS.md` has the full argument). Note the
/// complement is essential: `-p. p :- q, p.` has the attack edge
/// `(p,-) → (p,-)` (deriving `-p` is what blocks the attacker), a
/// self-loop — pointing at the body literal `(p,+)` instead would
/// wrongly classify this self-justifying pattern as stratified.
fn stratify(
    rules: &[(CompId, &Rule)],
    conflicts: &[(usize, usize)],
) -> (StratClass, Option<(PredId, Sign)>) {
    let mut ids: FxHashMap<(PredId, Sign), u32> = FxHashMap::default();
    let mut keys: Vec<(PredId, Sign)> = Vec::new();
    let mut adj: Vec<Vec<u32>> = Vec::new();
    let mut id_of = |k: (PredId, Sign), keys: &mut Vec<(PredId, Sign)>, adj: &mut Vec<Vec<u32>>| {
        *ids.entry(k).or_insert_with(|| {
            keys.push(k);
            adj.push(Vec::new());
            (keys.len() - 1) as u32
        })
    };
    let mut neg_edges: Vec<(u32, u32)> = Vec::new();
    for (_, r) in rules {
        let h = id_of((r.head.pred, r.head.sign), &mut keys, &mut adj);
        for l in r.body_lits() {
            let b = id_of((l.pred, l.sign), &mut keys, &mut adj);
            adj[h as usize].push(b);
        }
    }
    // Attack edges, both directions of each conflict pair: a suppressed
    // victim fires only after some attacker body literal's *complement*
    // is derived (blocking), so the victim's head depends on those
    // complements.
    for &(i, j) in conflicts {
        for (victim, attacker) in [(i, j), (j, i)] {
            let vh = rules[victim].1.head.clone();
            let v = id_of((vh.pred, vh.sign), &mut keys, &mut adj);
            for l in rules[attacker].1.body_lits() {
                let b = id_of((l.pred, l.sign.flip()), &mut keys, &mut adj);
                adj[v as usize].push(b);
                neg_edges.push((v, b));
            }
        }
    }
    let (scc_of, _) = tarjan_scc(&adj);
    for &(u, v) in &neg_edges {
        if scc_of[u as usize] == scc_of[v as usize] {
            return (StratClass::Unstratified, Some(keys[u as usize]));
        }
    }
    (StratClass::Stratified, None)
}

/// Counting-domain bounds: distinct ground facts per signed head, and
/// whether non-fact rules (or non-ground facts) can derive more.
fn pred_bounds(rules: &[(CompId, &Rule)]) -> Vec<PredBound> {
    let mut facts: FxHashMap<(PredId, Sign), FxHashSet<&Literal>> = FxHashMap::default();
    let mut open: FxHashSet<(PredId, Sign)> = FxHashSet::default();
    for (_, r) in rules {
        let key = (r.head.pred, r.head.sign);
        if r.is_fact() && r.head.is_ground() {
            facts.entry(key).or_default().insert(&r.head);
        } else {
            open.insert(key);
            facts.entry(key).or_default();
        }
    }
    let mut out: Vec<PredBound> = facts
        .into_iter()
        .map(|((pred, sign), heads)| PredBound {
            pred,
            sign,
            facts: heads.len(),
            exact: !open.contains(&(pred, sign)),
        })
        .collect();
    out.sort_unstable_by_key(|b| (b.pred.0, b.sign == Sign::Neg));
    out
}

/// Two-sided unification of head literals (variables of the two rules
/// are distinct namespaces). Over-approximates: no occurs check, so a
/// cyclic binding counts as unifiable — the sound direction for
/// conflict detection.
pub(crate) fn heads_unify(a: &Literal, b: &Literal) -> bool {
    if a.pred != b.pred || a.args.len() != b.args.len() {
        return false;
    }
    let mut sub: FxHashMap<(bool, Sym), (bool, Term)> = FxHashMap::default();
    a.args
        .iter()
        .zip(&b.args)
        .all(|(x, y)| unify((false, x.clone()), (true, y.clone()), &mut sub))
}

fn resolve(
    mut side: bool,
    mut t: Term,
    sub: &FxHashMap<(bool, Sym), (bool, Term)>,
) -> (bool, Term) {
    while let Term::Var(v) = &t {
        match sub.get(&(side, *v)) {
            Some((s2, t2)) => {
                side = *s2;
                t = t2.clone();
            }
            None => break,
        }
    }
    (side, t)
}

fn unify(a: (bool, Term), b: (bool, Term), sub: &mut FxHashMap<(bool, Sym), (bool, Term)>) -> bool {
    let (sa, ta) = resolve(a.0, a.1, sub);
    let (sb, tb) = resolve(b.0, b.1, sub);
    match (ta, tb) {
        (Term::Var(v), Term::Var(w)) if sa == sb && v == w => true,
        (Term::Var(v), tb) => {
            sub.insert((sa, v), (sb, tb));
            true
        }
        (ta, Term::Var(v)) => {
            sub.insert((sb, v), (sa, ta));
            true
        }
        (Term::Const(x), Term::Const(y)) => x == y,
        (Term::Int(x), Term::Int(y)) => x == y,
        (Term::App(f, fa), Term::App(g, ga)) => {
            f == g
                && fa.len() == ga.len()
                && fa
                    .into_iter()
                    .zip(ga)
                    .all(|(x, y)| unify((sa, x), (sb, y), sub))
        }
        _ => false,
    }
}

// ---- W09 + W10: profile-derived notes ----------------------------------

/// Emits the informational profile lints:
///
/// * **W09** — a component whose view is unstratified (stable
///   enumeration may branch there);
/// * **W10** — a declared order edge that never decides a conflict, in
///   a program where the order *does* decide at least one (edges in a
///   wholly order-irrelevant program are the profile's business, not a
///   per-edge note; edges already implied transitively are W07's).
pub(crate) fn w09_w10_profile(
    world: &World,
    prog: &OrderedProgram,
    order: &Order,
    diags: &mut Vec<Diagnostic>,
) {
    let comp_name = |c: CompId| world.syms.name(prog.components[c.index()].name);
    let mut any_ordered_conflict = false;
    // Global conflict comp-pairs drive W10; per-view profiles drive W09.
    let all_rules = view_all(prog);
    let (global_conflicts, _) = conflict_pairs(&all_rules, order);
    let conflict_comps: FxHashSet<(CompId, CompId)> = global_conflicts
        .iter()
        .map(|&(i, j)| {
            let (a, b) = (all_rules[i].0, all_rules[j].0);
            if a.0 <= b.0 {
                (a, b)
            } else {
                (b, a)
            }
        })
        .collect();
    for &(a, b) in &conflict_comps {
        if order.lt(a, b) || order.lt(b, a) {
            any_ordered_conflict = true;
        }
    }
    for ci in 0..prog.components.len() {
        let c = CompId(ci as u32);
        let p = component_profile(prog, order, c);
        if p.strat == StratClass::Unstratified {
            let through = p.unstrat_witness.map_or(String::new(), |(pred, sign)| {
                format!(
                    " through `{}{}`",
                    if sign == Sign::Neg { "-" } else { "" },
                    world.syms.name(world.preds.info(pred).name)
                )
            });
            diags.push(
                Diagnostic::new(
                    Code::UnstratifiedView,
                    format!(
                        "view of `{}` is unstratified: a negation cycle{through} lets stable \
                         models branch (enumeration may be exponential; the least model stays \
                         polynomial)",
                        comp_name(c),
                    ),
                )
                .in_comp(c),
            );
        }
    }
    if !any_ordered_conflict {
        return;
    }
    for (ei, &(lo, hi)) in prog.edges.iter().enumerate() {
        // Skip duplicates/implied edges (W07 reports those) and edges
        // whose removal leaves no valid order to compare against.
        let rest: Vec<(CompId, CompId)> = prog
            .edges
            .iter()
            .filter(|&&e| e != (lo, hi))
            .copied()
            .collect();
        let Ok(reduced) = Order::from_edges(prog.components.len(), &rest) else {
            continue;
        };
        if reduced.lt(lo, hi) {
            continue;
        }
        let decides = conflict_comps.iter().any(|&(a, b)| {
            let full = order.lt(a, b) || order.lt(b, a);
            let without = reduced.lt(a, b) || reduced.lt(b, a);
            full != without
        });
        if !decides {
            diags.push(
                Diagnostic::new(
                    Code::InertOrderEdge,
                    format!(
                        "order edge `{} < {}` never decides a conflict: no complementary-head \
                         rule pair becomes comparable through it (the edge only imports rules)",
                        comp_name(lo),
                        comp_name(hi),
                    ),
                )
                .in_comp(lo)
                .at(prog.spans.edge_pos(ei)),
            );
        }
    }
}

/// Every rule of the program, tagged with its component (the "view"
/// used for global conflict detection).
fn view_all(prog: &OrderedProgram) -> Vec<(CompId, &Rule)> {
    let mut out = Vec::new();
    for (ci, comp) in prog.components.iter().enumerate() {
        out.extend(comp.rules.iter().map(|r| (CompId(ci as u32), r)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use olp_parser::parse_program;

    fn profiled(src: &str) -> (World, OrderedProgram, ProgramProfile) {
        let mut world = World::new();
        let prog = parse_program(&mut world, src).expect("test program parses");
        let p = profile(&prog).expect("valid order");
        (world, prog, p)
    }

    fn by_name<'p>(
        world: &World,
        prog: &OrderedProgram,
        p: &'p ProgramProfile,
        name: &str,
    ) -> &'p ComponentProfile {
        let c = prog
            .component_by_name(world.syms.get(name).unwrap())
            .unwrap();
        &p.components[c.index()]
    }

    const PENGUIN: &str = "
        module c2 {
            bird(penguin). bird(pigeon).
            fly(X) :- bird(X).
            -ground_animal(X) :- bird(X).
        }
        module c1 < c2 {
            ground_animal(penguin).
            -fly(X) :- ground_animal(X).
        }";

    #[test]
    fn penguin_is_order_relevant_stratified_single_model() {
        let (world, prog, p) = profiled(PENGUIN);
        let c1 = by_name(&world, &prog, &p, "c1");
        assert_eq!(c1.strat, StratClass::Stratified);
        assert!(c1.order_relevant && c1.single_model && !c1.conflict_free);
        // fly and ground_animal are each contested once.
        assert_eq!(c1.conflict_pairs, 2);
        assert_eq!(c1.ordered_conflicts, 2);
        // c2 sees only its own rules: no conflicts at all.
        let c2 = by_name(&world, &prog, &p, "c2");
        assert!(c2.conflict_free && c2.single_model && !c2.order_relevant);
        assert_eq!(c2.strat, StratClass::Stratified, "has a negative head");
    }

    #[test]
    fn p5_choice_program_is_unstratified() {
        let (world, prog, p) = profiled(
            "module c2 { a. b. c. }
             module c1 < c2 { -a :- b, c. -b :- a. -b :- -b. }",
        );
        let c1 = by_name(&world, &prog, &p, "c1");
        assert_eq!(c1.strat, StratClass::Unstratified);
        assert!(!c1.single_model);
        assert!(c1.unstrat_witness.is_some());
        let c2 = by_name(&world, &prog, &p, "c2");
        assert_eq!(c2.strat, StratClass::NegationFree);
        assert!(c2.single_model && c2.conflict_free);
    }

    #[test]
    fn self_attack_is_conservatively_unstratified() {
        let (world, prog, p) = profiled("a. -a :- a.");
        let m = by_name(&world, &prog, &p, "main");
        assert_eq!(m.strat, StratClass::Unstratified);
        assert!(!m.single_model);
    }

    #[test]
    fn fact_only_defeat_is_stratified_single_model() {
        // Mutual defeat between facts: the attack is decided trivially
        // (facts are never blocked), no cycle through any body.
        let (world, prog, p) =
            profiled("module a { hire. } module b { -hire. } module c < a, b {}");
        let c = by_name(&world, &prog, &p, "c");
        assert_eq!(c.strat, StratClass::Stratified);
        assert!(c.single_model && !c.conflict_free && !c.order_relevant);
    }

    #[test]
    fn counting_bounds_are_exact_without_rules() {
        let (world, prog, p) = profiled("p(a). p(b). q(X) :- p(X). q(c).");
        let m = by_name(&world, &prog, &p, "main");
        let wp = world.syms.get("p").unwrap();
        let pb = m
            .pred_bounds
            .iter()
            .find(|b| world.preds.info(b.pred).name == wp)
            .unwrap();
        assert_eq!((pb.facts, pb.exact), (2, true));
        let wq = world.syms.get("q").unwrap();
        let qb = m
            .pred_bounds
            .iter()
            .find(|b| world.preds.info(b.pred).name == wq)
            .unwrap();
        assert_eq!((qb.facts, qb.exact), (1, false));
    }

    #[test]
    fn heads_unify_respects_bindings_across_sides() {
        let mut world = World::new();
        let prog = parse_program(
            &mut world,
            "p(X, X) :- q(X). -p(a, b) :- q(a). -p(Y, Y) :- q(Y).",
        )
        .unwrap();
        let rules = &prog.components[0].rules;
        // p(X,X) cannot unify with -p(a,b) (X would need a = b)…
        assert!(!heads_unify(&rules[0].head, &rules[1].head));
        // …but unifies with -p(Y,Y).
        assert!(heads_unify(&rules[0].head, &rules[2].head));
    }

    #[test]
    fn summary_is_greppable() {
        let (world, prog, p) = profiled(PENGUIN);
        let s = by_name(&world, &prog, &p, "c1").summary();
        assert!(s.contains("strat=stratified"), "{s}");
        assert!(s.contains("order=relevant"), "{s}");
        assert!(s.contains("single-model=yes"), "{s}");
    }

    #[test]
    fn invalid_order_yields_no_profile() {
        let mut world = World::new();
        let prog = parse_program(
            &mut world,
            "module a {} module b {}\norder a < b.\norder b < a.",
        )
        .unwrap();
        assert!(profile(&prog).is_none());
    }
}
