//! A small, robust JSON parser and writer for the wire protocol.
//!
//! The workspace is offline-vendored (no serde), and the server's
//! malformed-frame fuzz battery feeds this module arbitrary bytes, so
//! the priorities are: never panic, bound recursion depth, and reject
//! garbage with a positioned error instead of guessing. The writer
//! emits keys in insertion order, which is what makes protocol golden
//! tests and the snapshot-isolation differential oracle byte-exact.

use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`] — far above any
/// legitimate protocol frame, low enough that a `[[[[…` bomb cannot
/// overflow the stack.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Objects preserve insertion order (no map), so
/// `parse → render` round-trips key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fractional part that fits an `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON value; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// A non-negative integer payload.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders as compact single-line JSON (insertion key order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x}"));
                } else {
                    // JSON has no NaN/Inf; null is the conventional spill.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Builds an object from ordered pairs (protocol responses fix their
/// key order through this).
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Builds an array of strings.
pub fn str_arr<S: AsRef<str>>(items: &[S]) -> Json {
    Json::Arr(
        items
            .iter()
            .map(|s| Json::Str(s.as_ref().to_string()))
            .collect(),
    )
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &'static [u8], v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(c)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 advanced past the digits already.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar. The input came from
                    // `from_utf8_lossy`, so boundaries are valid.
                    let s = &self.bytes[self.pos..];
                    let ch_len = utf8_len(s[0]);
                    let chunk = s.get(..ch_len).ok_or_else(|| self.err("truncated utf-8"))?;
                    let ch = std::str::from_utf8(chunk)
                        .map_err(|_| self.err("invalid utf-8"))?
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push(ch);
                    self.pos += ch_len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = s.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match s.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Float(x)),
            _ => Err(self.err("invalid number")),
        }
    }
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let src = r#"{"cmd":"query","object":"bird","pattern":"fly(X)","timeout_ms":50,"n":[1,2,3],"b":true,"x":null}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.render(), src);
        assert_eq!(v.get("cmd").unwrap().as_str(), Some("query"));
        assert_eq!(v.get("timeout_ms").unwrap().as_u64(), Some(50));
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{0001}é".to_string());
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        let parsed = Json::parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(parsed, Json::Str("é😀".to_string()));
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "+1",
            "1.2.3",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "{\"a\":1}x",
            "[\u{0007}]",
            "--2",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Json::parse(&deep).is_err(), "depth bomb must be rejected");
    }

    #[test]
    fn integers_and_floats_split() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
    }
}
