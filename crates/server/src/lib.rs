//! # olp-server — a concurrent multi-client KB server
//!
//! `olp serve` wraps a [`Kb`] (or [`DurableKb`]) in a long-running TCP
//! process speaking a line-oriented JSON protocol: one request object
//! per line in, one response object per line out (see `SERVER.md` for
//! the grammar). The concurrency model is the paper's KB story taken
//! seriously: many agents consult one knowledge base while it evolves.
//!
//! ## Snapshot-isolated reads, single-writer mutations
//!
//! All mutations (`assert`, `retract`, `save`) are serialised through
//! one writer thread that owns the live KB. After each applied
//! mutation it revalidates cached models and publishes a fresh
//! [`KbSnapshot`] into a shared cell. Readers clone the current `Arc`
//! out of the cell (the lock is held only for the clone) and evaluate
//! against that frozen epoch — no reader ever blocks on a writer, and
//! every response carries the epoch it was evaluated at, which is what
//! makes server answers differentially testable against a sequential
//! KB replaying the same mutation prefix.
//!
//! ## Admission control
//!
//! Two knobs bound load instead of queueing unboundedly: connections
//! beyond `max_conns` are refused with a one-line `busy` response at
//! accept time, and evaluation commands beyond `max_queries` in flight
//! get a `busy` response on an otherwise healthy connection. Malformed
//! frames get a positioned error and never wedge the accept loop.
//!
//! ## Shutdown
//!
//! SIGTERM (or a `shutdown` command) stops the accept loop, lets every
//! in-flight request finish, drains the writer queue, and — when a
//! durable store is attached — fsyncs the write-ahead log before the
//! process exits.

#![warn(missing_docs)]

pub mod json;

use crate::json::{obj, str_arr, Json};
use olp_core::Eval;
use olp_kb::{DurableKb, Kb, KbError, KbSnapshot, QueryOptions};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Hard cap on one request line; longer frames are refused and the
/// connection closed (a client that sends an unbounded line is broken
/// or hostile, not slow).
pub const MAX_LINE: usize = 1 << 20;

/// Upper bound a client may set `threads` to, regardless of the
/// server's own default.
const MAX_CLIENT_THREADS: usize = 64;

/// How long blocked reads and the accept loop sleep between polls of
/// the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Set by the SIGTERM handler; checked by the accept loop. Process
/// global because signal handlers cannot carry state.
static SIGNALED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigterm() {
    extern "C" fn on_term(_sig: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm() {}

/// Server tuning knobs; see each field.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port; the chosen
    /// address is available from [`Server::local_addr`]).
    pub listen: String,
    /// Maximum concurrent connections; one worker thread each.
    /// Connections beyond this are refused with a `busy` response.
    pub max_conns: usize,
    /// Maximum evaluation commands in flight across all connections;
    /// excess requests get a `busy` response without closing the
    /// connection.
    pub max_queries: usize,
    /// Default per-request evaluation timeout when neither the
    /// connection (`set`) nor the request specifies one. `None` means
    /// unlimited.
    pub default_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".to_string(),
            max_conns: 64,
            max_queries: 16,
            default_timeout: None,
        }
    }
}

/// The knowledge base a server serves: in-memory only, or backed by a
/// durable store whose WAL records every applied mutation.
pub enum ServeKb {
    /// In-memory KB; `save` requests are refused.
    Plain(Box<Kb>),
    /// Durable KB; applied mutations hit the write-ahead log and
    /// `save` compacts to a fresh snapshot.
    Durable(Box<DurableKb>),
}

impl ServeKb {
    fn kb(&self) -> &Kb {
        match self {
            ServeKb::Plain(kb) => kb,
            ServeKb::Durable(d) => d,
        }
    }

    fn kb_mut(&mut self) -> &mut Kb {
        match self {
            ServeKb::Plain(kb) => kb,
            ServeKb::Durable(d) => d.kb_mut(),
        }
    }

    fn assert_rule_with(
        &mut self,
        object: &str,
        src: &str,
        opts: &QueryOptions,
    ) -> Result<Eval<()>, KbError> {
        match self {
            ServeKb::Plain(kb) => kb.assert_rule_with(object, src, opts),
            ServeKb::Durable(d) => d.assert_rule_with(object, src, opts),
        }
    }

    fn retract_rule_with(
        &mut self,
        object: &str,
        src: &str,
        opts: &QueryOptions,
    ) -> Result<Eval<bool>, KbError> {
        match self {
            ServeKb::Plain(kb) => kb.retract_rule_with(object, src, opts),
            ServeKb::Durable(d) => d.retract_rule_with(object, src, opts),
        }
    }

    fn seq(&self) -> Option<u64> {
        match self {
            ServeKb::Plain(_) => None,
            ServeKb::Durable(d) => Some(d.seq()),
        }
    }
}

/// Counters surfaced by the `stats` command. All relaxed atomics: the
/// numbers are operational telemetry, not synchronisation.
#[derive(Debug, Default)]
struct Stats {
    accepted: AtomicU64,
    queries: AtomicU64,
    writes: AtomicU64,
    busy: AtomicU64,
    errors: AtomicU64,
    active_conns: AtomicUsize,
    active_queries: AtomicUsize,
}

/// State shared by the accept loop, workers, and writer.
struct Shared {
    /// The publish cell: the latest frozen snapshot. The lock is held
    /// only to clone or swap the `Arc`, never across evaluation.
    snap: Mutex<Arc<KbSnapshot>>,
    stats: Stats,
    shutdown: AtomicBool,
    started: Instant,
    /// `seq` of the durable store after the last applied mutation
    /// (`u64::MAX` = no store attached). Kept here so `stats` can
    /// report it without a round-trip through the writer.
    seq: AtomicU64,
}

impl Shared {
    fn snapshot(&self) -> Arc<KbSnapshot> {
        self.snap.lock().expect("publish cell poisoned").clone()
    }

    fn publish(&self, snap: Arc<KbSnapshot>) {
        *self.snap.lock().expect("publish cell poisoned") = snap;
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGNALED.load(Ordering::SeqCst)
    }

    fn seq_json(&self) -> Json {
        match self.seq.load(Ordering::SeqCst) {
            u64::MAX => Json::Null,
            s => Json::Int(s as i64),
        }
    }
}

/// A mutation handed to the writer thread.
enum WriteOp {
    Assert { object: String, rule: String },
    Retract { object: String, rule: String },
    Save,
}

struct WriteReq {
    op: WriteOp,
    opts: QueryOptions,
    reply: mpsc::Sender<WriteResp>,
}

enum WriteResp {
    Applied { epoch: u64, removed: Option<bool> },
    Interrupted { reason: String },
    Saved,
    NoStore,
    Failed { error: String },
}

/// Decrements a counter on drop (connection and query permits).
struct Permit<'a>(&'a AtomicUsize);

impl<'a> Permit<'a> {
    /// Acquires one of `max` permits, or `None` when exhausted.
    fn acquire(counter: &'a AtomicUsize, max: usize) -> Option<Self> {
        let mut cur = counter.load(Ordering::SeqCst);
        loop {
            if cur >= max {
                return None;
            }
            match counter.compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return Some(Permit(counter)),
                Err(now) => cur = now,
            }
        }
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Per-connection defaults set with the `set` command; per-request
/// fields override them.
#[derive(Debug, Default, Clone)]
struct ConnState {
    timeout_ms: Option<u64>,
    max_steps: Option<u64>,
    max_models: Option<u64>,
    threads: Option<u64>,
    deny_warnings: bool,
}

/// A bound, not-yet-running server. [`Server::bind`] then
/// [`Server::run`]; the split exists so callers (and tests) can learn
/// the OS-chosen port before the accept loop starts.
pub struct Server {
    listener: TcpListener,
    cfg: ServerConfig,
    kb: ServeKb,
}

impl Server {
    /// Binds the listen address and installs the SIGTERM handler. The
    /// KB is not touched until [`Server::run`].
    pub fn bind(cfg: ServerConfig, kb: ServeKb) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.listen)?;
        install_sigterm();
        Ok(Server { listener, cfg, kb })
    }

    /// The actual bound address (resolves `:0` to the chosen port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop until SIGTERM or a `shutdown` command,
    /// then drains in-flight requests and the writer queue (fsyncing
    /// the WAL when a durable store is attached) before returning.
    pub fn run(self) -> io::Result<()> {
        let Server {
            listener,
            cfg,
            mut kb,
        } = self;
        listener.set_nonblocking(true)?;

        // Warm every object's least model before the first publish:
        // snapshots then carry memoised models, and after each mutation
        // the writer revalidates them incrementally (stratum-local)
        // instead of readers recomputing from scratch every epoch.
        let objects: Vec<String> = kb.kb().objects().iter().map(|s| s.to_string()).collect();
        for o in &objects {
            let _ = kb.kb_mut().model(o);
        }
        // Warm the analysis profiles too: snapshots only carry
        // profiles already cached at the current view versions, and
        // readers never compute analysis themselves.
        kb.kb_mut().warm_profiles();

        let shared = Shared {
            snap: Mutex::new(kb.kb().snapshot()),
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            seq: AtomicU64::new(kb.seq().unwrap_or(u64::MAX)),
        };
        let (write_tx, write_rx) = mpsc::channel::<WriteReq>();
        let injector: crossbeam::deque::Injector<TcpStream> = crossbeam::deque::Injector::new();

        std::thread::scope(|s| {
            let shared = &shared;
            let injector = &injector;
            let cfg = &cfg;

            // Single writer: owns the live KB, applies mutations in
            // arrival order, publishes a snapshot after each one.
            s.spawn(move || {
                let stall = std::env::var("OLP_SERVE_WRITE_DELAY_MS")
                    .ok()
                    .and_then(|v| v.parse::<u64>().ok())
                    .map(Duration::from_millis);
                while let Ok(req) = write_rx.recv() {
                    if let Some(d) = stall {
                        // Test knob: a deliberately slow writer must
                        // not block readers (they only touch the
                        // publish cell).
                        std::thread::sleep(d);
                    }
                    let resp = apply_write(&mut kb, shared, req.op, &req.opts);
                    let _ = req.reply.send(resp);
                }
                // Channel closed: every worker is gone. Make the WAL
                // durable before the process exits.
                if let ServeKb::Durable(d) = &mut kb {
                    let _ = d.sync();
                }
            });

            // Worker pool: one thread per admitted connection slot.
            for _ in 0..cfg.max_conns.max(1) {
                let write_tx = write_tx.clone();
                s.spawn(move || loop {
                    match injector.steal() {
                        crossbeam::deque::Steal::Success(stream) => {
                            handle_conn(stream, shared, &write_tx, cfg);
                            shared.stats.active_conns.fetch_sub(1, Ordering::SeqCst);
                        }
                        _ => {
                            if shared.shutting_down() {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(2));
                        }
                    }
                });
            }
            // Workers hold the only remaining senders; when they exit
            // the writer sees the channel close and drains.
            drop(write_tx);

            // Accept loop with admission control.
            while !shared.shutting_down() {
                match listener.accept() {
                    Ok((mut stream, _peer)) => {
                        shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                        let active = shared.stats.active_conns.load(Ordering::SeqCst);
                        if active >= cfg.max_conns.max(1) {
                            shared.stats.busy.fetch_add(1, Ordering::Relaxed);
                            let resp = obj(vec![
                                ("ok", Json::Bool(false)),
                                ("error", Json::Str("busy".into())),
                                ("epoch", Json::Int(shared.snapshot().epoch() as i64)),
                            ]);
                            let _ = write_line(&mut stream, &resp.render());
                            continue;
                        }
                        shared.stats.active_conns.fetch_add(1, Ordering::SeqCst);
                        injector.push(stream);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL);
                    }
                    Err(_) => std::thread::sleep(POLL),
                }
            }
            // Propagate a signal-initiated shutdown to the workers.
            shared.shutdown.store(true, Ordering::SeqCst);
        });
        Ok(())
    }
}

/// Applies one mutation on the writer thread and publishes the next
/// epoch on success.
fn apply_write(kb: &mut ServeKb, shared: &Shared, op: WriteOp, opts: &QueryOptions) -> WriteResp {
    let outcome = match &op {
        WriteOp::Assert { object, rule } => kb
            .assert_rule_with(object, rule, opts)
            .map(|ev| ev.map(|()| None)),
        WriteOp::Retract { object, rule } => kb
            .retract_rule_with(object, rule, opts)
            .map(|ev| ev.map(Some)),
        WriteOp::Save => {
            return match kb {
                ServeKb::Durable(d) => match d.save() {
                    Ok(()) => {
                        shared.seq.store(d.seq(), Ordering::SeqCst);
                        WriteResp::Saved
                    }
                    Err(e) => WriteResp::Failed {
                        error: e.to_string(),
                    },
                },
                ServeKb::Plain(_) => WriteResp::NoStore,
            };
        }
    };
    match outcome {
        Ok(Eval::Complete(removed)) => {
            // Refresh memoised models incrementally, then freeze the
            // new epoch for readers. A retract that matched nothing
            // left the epoch unchanged; republishing is harmless.
            kb.kb_mut().revalidate_cached_models();
            kb.kb_mut().warm_profiles();
            shared.publish(kb.kb().snapshot());
            if let Some(s) = kb.seq() {
                shared.seq.store(s, Ordering::SeqCst);
            }
            WriteResp::Applied {
                epoch: kb.kb().epoch(),
                removed,
            }
        }
        // Interrupted mutations are NOT applied (the KB still answers
        // exactly as before), so no new epoch is published.
        Ok(Eval::Interrupted(i)) => WriteResp::Interrupted {
            reason: i.reason.to_string(),
        },
        Err(e) => WriteResp::Failed {
            error: e.to_string(),
        },
    }
}

/// Serves one connection until EOF, a fatal frame, `shutdown`, or
/// server drain.
fn handle_conn(
    mut stream: TcpStream,
    shared: &Shared,
    write_tx: &mpsc::Sender<WriteReq>,
    cfg: &ServerConfig,
) {
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_nodelay(true);
    let mut conn = ConnState::default();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let mut line = &line[..line.len() - 1];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            if line.is_empty() {
                continue;
            }
            let text = String::from_utf8_lossy(line);
            let (resp, close) = dispatch(&text, shared, write_tx, cfg, &mut conn);
            if write_line(&mut stream, &resp).is_err() || close {
                return;
            }
            if shared.shutting_down() {
                return;
            }
        }
        if buf.len() > MAX_LINE {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            let resp = error_resp("line too long", shared.snapshot().epoch());
            let _ = write_line(&mut stream, &resp);
            return;
        }
        if shared.shutting_down() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return,
        }
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

fn error_resp(msg: &str, epoch: u64) -> String {
    obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(msg.to_string())),
        ("epoch", Json::Int(epoch as i64)),
    ])
    .render()
}

/// Handles one request line; returns the response line and whether the
/// connection should close afterwards.
fn dispatch(
    line: &str,
    shared: &Shared,
    write_tx: &mpsc::Sender<WriteReq>,
    cfg: &ServerConfig,
    conn: &mut ConnState,
) -> (String, bool) {
    // Snapshot first: every response (including errors) reports the
    // epoch it observed.
    let snap = shared.snapshot();
    let epoch = snap.epoch();
    let req = match Json::parse(line) {
        Ok(v @ Json::Obj(_)) => v,
        Ok(_) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            return (error_resp("request must be a json object", epoch), false);
        }
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            return (error_resp(&format!("bad json: {e}"), epoch), false);
        }
    };
    let Some(cmd) = req.get("cmd").and_then(Json::as_str) else {
        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        return (error_resp("missing string field `cmd`", epoch), false);
    };

    match cmd {
        "ping" => (
            obj(vec![
                ("ok", Json::Bool(true)),
                ("epoch", Json::Int(epoch as i64)),
            ])
            .render(),
            false,
        ),
        "shutdown" => {
            shared.shutdown.store(true, Ordering::SeqCst);
            (
                obj(vec![
                    ("ok", Json::Bool(true)),
                    ("epoch", Json::Int(epoch as i64)),
                ])
                .render(),
                true,
            )
        }
        "set" => {
            apply_set(conn, &req);
            (
                obj(vec![
                    ("ok", Json::Bool(true)),
                    ("epoch", Json::Int(epoch as i64)),
                ])
                .render(),
                false,
            )
        }
        "stats" => {
            let st = &shared.stats;
            (
                obj(vec![
                    ("ok", Json::Bool(true)),
                    ("epoch", Json::Int(epoch as i64)),
                    ("objects", Json::Int(snap.objects().len() as i64)),
                    ("atoms", Json::Int(snap.world().atoms.len() as i64)),
                    ("rules", Json::Int(snap.n_rules() as i64)),
                    (
                        "conns",
                        Json::Int(st.active_conns.load(Ordering::SeqCst) as i64),
                    ),
                    (
                        "accepted",
                        Json::Int(st.accepted.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "queries",
                        Json::Int(st.queries.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "writes",
                        Json::Int(st.writes.load(Ordering::Relaxed) as i64),
                    ),
                    ("busy", Json::Int(st.busy.load(Ordering::Relaxed) as i64)),
                    (
                        "errors",
                        Json::Int(st.errors.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "uptime_ms",
                        Json::Int(shared.started.elapsed().as_millis() as i64),
                    ),
                    ("seq", shared.seq_json()),
                    // The analysis profile of every component, as the
                    // writer proved it for this epoch (what the engine
                    // keys its fast paths on; see docs/ANALYSIS.md).
                    (
                        "profiles",
                        Json::Obj(
                            snap.profiles()
                                .into_iter()
                                .map(|(name, p)| (name.to_string(), Json::Str(p.summary())))
                                .collect(),
                        ),
                    ),
                ])
                .render(),
                false,
            )
        }
        "query" | "truth" | "why" => {
            let Some(_permit) =
                Permit::acquire(&shared.stats.active_queries, cfg.max_queries.max(1))
            else {
                shared.stats.busy.fetch_add(1, Ordering::Relaxed);
                return (error_resp("busy", epoch), false);
            };
            shared.stats.queries.fetch_add(1, Ordering::Relaxed);
            let resp = handle_read(cmd, &snap, &req, conn, cfg);
            if resp.contains("\"ok\":false") {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            (resp, false)
        }
        "assert" | "retract" | "save" => {
            let opts = build_opts(&snap, conn, &req, cfg);
            let op = match cmd {
                "save" => WriteOp::Save,
                _ => {
                    let (Some(object), Some(rule)) = (
                        req.get("object").and_then(Json::as_str),
                        req.get("rule").and_then(Json::as_str),
                    ) else {
                        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                        return (
                            error_resp("missing string fields `object` and `rule`", epoch),
                            false,
                        );
                    };
                    if cmd == "assert" {
                        WriteOp::Assert {
                            object: object.to_string(),
                            rule: rule.to_string(),
                        }
                    } else {
                        WriteOp::Retract {
                            object: object.to_string(),
                            rule: rule.to_string(),
                        }
                    }
                }
            };
            let (reply_tx, reply_rx) = mpsc::channel();
            if write_tx
                .send(WriteReq {
                    op,
                    opts,
                    reply: reply_tx,
                })
                .is_err()
            {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                return (error_resp("writer unavailable", epoch), false);
            }
            match reply_rx.recv() {
                Ok(WriteResp::Applied { epoch, removed }) => {
                    shared.stats.writes.fetch_add(1, Ordering::Relaxed);
                    let mut fields =
                        vec![("ok", Json::Bool(true)), ("epoch", Json::Int(epoch as i64))];
                    if let Some(r) = removed {
                        fields.push(("removed", Json::Bool(r)));
                    }
                    fields.push(("seq", shared.seq_json()));
                    (obj(fields).render(), false)
                }
                Ok(WriteResp::Interrupted { reason }) => {
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    (
                        obj(vec![
                            ("ok", Json::Bool(false)),
                            ("error", Json::Str("interrupted".into())),
                            ("reason", Json::Str(reason)),
                            ("partial", Json::Bool(true)),
                            ("epoch", Json::Int(epoch as i64)),
                        ])
                        .render(),
                        false,
                    )
                }
                Ok(WriteResp::Saved) => {
                    shared.stats.writes.fetch_add(1, Ordering::Relaxed);
                    (
                        obj(vec![
                            ("ok", Json::Bool(true)),
                            ("epoch", Json::Int(epoch as i64)),
                            ("seq", shared.seq_json()),
                        ])
                        .render(),
                        false,
                    )
                }
                Ok(WriteResp::NoStore) => {
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    (
                        error_resp("no durable store attached (start with --db)", epoch),
                        false,
                    )
                }
                Ok(WriteResp::Failed { error }) => {
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    (error_resp(&error, epoch), false)
                }
                Err(_) => {
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    (error_resp("writer unavailable", epoch), false)
                }
            }
        }
        other => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            (error_resp(&format!("unknown cmd `{other}`"), epoch), false)
        }
    }
}

fn apply_set(conn: &mut ConnState, req: &Json) {
    if let Some(v) = req.get("timeout_ms").and_then(Json::as_u64) {
        conn.timeout_ms = if v == 0 { None } else { Some(v) };
    }
    if let Some(v) = req.get("max_steps").and_then(Json::as_u64) {
        conn.max_steps = if v == 0 { None } else { Some(v) };
    }
    if let Some(v) = req.get("max_models").and_then(Json::as_u64) {
        conn.max_models = if v == 0 { None } else { Some(v) };
    }
    if let Some(v) = req.get("threads").and_then(Json::as_u64) {
        conn.threads = if v == 0 { None } else { Some(v) };
    }
    if let Some(v) = req.get("deny_warnings").and_then(Json::as_bool) {
        conn.deny_warnings = v;
    }
}

/// Resolves the effective [`QueryOptions`] for one request: snapshot
/// defaults ← server default timeout ← connection `set` values ←
/// per-request fields.
fn build_opts(snap: &KbSnapshot, conn: &ConnState, req: &Json, cfg: &ServerConfig) -> QueryOptions {
    let mut o = snap.default_opts();
    let timeout_ms = req
        .get("timeout_ms")
        .and_then(Json::as_u64)
        .or(conn.timeout_ms);
    match timeout_ms {
        Some(0) => {} // explicit 0 = unlimited
        Some(ms) => o = o.timeout(Duration::from_millis(ms)),
        None => {
            if let Some(d) = cfg.default_timeout {
                o = o.timeout(d);
            }
        }
    }
    if let Some(v) = req
        .get("max_steps")
        .and_then(Json::as_u64)
        .or(conn.max_steps)
    {
        if v > 0 {
            o = o.max_steps(v);
        }
    }
    if let Some(v) = req
        .get("max_models")
        .and_then(Json::as_u64)
        .or(conn.max_models)
    {
        if v > 0 {
            o = o.max_models(v as usize);
        }
    }
    if let Some(v) = req.get("threads").and_then(Json::as_u64).or(conn.threads) {
        if v > 0 {
            o = o.threads((v as usize).min(MAX_CLIENT_THREADS));
        }
    }
    if req
        .get("deny_warnings")
        .and_then(Json::as_bool)
        .unwrap_or(conn.deny_warnings)
    {
        o = o.deny_warnings();
    }
    o
}

/// Evaluates a read command against the frozen snapshot. Interrupted
/// evaluations answer `ok:true` with the sound partial payload plus
/// `partial:true` and the interrupt reason — the JSON twin of the
/// CLI's PARTIAL banner.
fn handle_read(
    cmd: &str,
    snap: &KbSnapshot,
    req: &Json,
    conn: &ConnState,
    cfg: &ServerConfig,
) -> String {
    let epoch = snap.epoch();
    let Some(object) = req.get("object").and_then(Json::as_str) else {
        return error_resp("missing string field `object`", epoch);
    };
    let opts = build_opts(snap, conn, req, cfg);

    // Assembles the common response shape: payload under `key`, with
    // partial/reason only when interrupted.
    fn finish(epoch: u64, key: &str, ev: Eval<Json>) -> String {
        let mut fields = vec![("ok", Json::Bool(true)), ("epoch", Json::Int(epoch as i64))];
        match ev {
            Eval::Complete(payload) => fields.push((key, payload)),
            Eval::Interrupted(i) => {
                fields.push(("partial", Json::Bool(true)));
                fields.push(("reason", Json::Str(i.reason.to_string())));
                fields.push((key, i.partial));
            }
        }
        obj(fields).render()
    }

    let result: Result<String, KbError> = (|| match cmd {
        "truth" => {
            let Some(q) = req.get("query").and_then(Json::as_str) else {
                return Ok(error_resp("missing string field `query`", epoch));
            };
            let ev = snap.truth_with(object, q, &opts)?;
            Ok(finish(epoch, "truth", ev.map(|t| Json::Str(t.to_string()))))
        }
        "why" => {
            let Some(q) = req.get("query").and_then(Json::as_str) else {
                return Ok(error_resp("missing string field `query`", epoch));
            };
            let ev = snap.explain_with(object, q, &opts)?;
            Ok(finish(epoch, "text", ev.map(Json::Str)))
        }
        "query" => {
            let semantics = req
                .get("semantics")
                .and_then(Json::as_str)
                .unwrap_or("least");
            match semantics {
                "least" => {
                    if let Some(pattern) = req.get("pattern").and_then(Json::as_str) {
                        let ev = snap.query_with(object, pattern, &opts)?;
                        Ok(finish(epoch, "answers", ev.map(|a| str_arr(&a))))
                    } else {
                        let ev = snap.model_with(object, &opts)?;
                        Ok(finish(
                            epoch,
                            "model",
                            ev.map(|m| Json::Str(snap.render(&m))),
                        ))
                    }
                }
                "stable" => {
                    let ev = snap.stable_with(object, &opts)?;
                    Ok(finish(
                        epoch,
                        "models",
                        ev.map(|ms| {
                            Json::Arr(ms.iter().map(|m| Json::Str(snap.render(m))).collect())
                        }),
                    ))
                }
                "skeptical" => {
                    let ev = snap.skeptical_with(object, &opts)?;
                    Ok(finish(
                        epoch,
                        "model",
                        ev.map(|m| Json::Str(snap.render(&m))),
                    ))
                }
                "credulous" => {
                    let ev = snap.credulous_with(object, &opts)?;
                    Ok(finish(
                        epoch,
                        "literals",
                        ev.map(|ls| {
                            Json::Arr(ls.iter().map(|&l| Json::Str(snap.render_glit(l))).collect())
                        }),
                    ))
                }
                other => Ok(error_resp(&format!("unknown semantics `{other}`"), epoch)),
            }
        }
        _ => unreachable!("caller routes only read commands here"),
    })();
    result.unwrap_or_else(|e| error_resp(&e.to_string(), epoch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use olp_kb::{GroundStrategy, KbBuilder};
    use std::io::{BufRead, BufReader};

    fn penguin_kb() -> Kb {
        let mut b = KbBuilder::new();
        b.rules("bird", "bird(penguin). bird(pigeon). fly(X) :- bird(X).")
            .unwrap();
        b.isa("pv", "bird");
        b.rules("pv", "ground_animal(penguin). -fly(X) :- ground_animal(X).")
            .unwrap();
        b.build(GroundStrategy::Smart).unwrap()
    }

    struct Client {
        reader: BufReader<TcpStream>,
        stream: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            Client { reader, stream }
        }

        fn send(&mut self, req: &str) -> String {
            self.stream.write_all(req.as_bytes()).unwrap();
            self.stream.write_all(b"\n").unwrap();
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            line.trim_end().to_string()
        }
    }

    fn spawn_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let cfg = ServerConfig {
            max_conns: 4,
            max_queries: 4,
            ..ServerConfig::default()
        };
        let server = Server::bind(cfg, ServeKb::Plain(Box::new(penguin_kb()))).unwrap();
        let addr = server.local_addr().unwrap();
        let h = std::thread::spawn(move || server.run().unwrap());
        (addr, h)
    }

    #[test]
    fn golden_protocol_round_trip() {
        let (addr, h) = spawn_server();
        let mut c = Client::connect(addr);
        assert_eq!(c.send(r#"{"cmd":"ping"}"#), r#"{"ok":true,"epoch":0}"#);
        assert_eq!(
            c.send(r#"{"cmd":"truth","object":"pv","query":"fly(penguin)"}"#),
            r#"{"ok":true,"epoch":0,"truth":"false"}"#
        );
        assert_eq!(
            c.send(r#"{"cmd":"query","object":"bird","pattern":"fly(X)"}"#),
            r#"{"ok":true,"epoch":0,"answers":["X=penguin","X=pigeon"]}"#
        );
        assert_eq!(
            c.send(r#"{"cmd":"assert","object":"bird","rule":"bird(sparrow)."}"#),
            r#"{"ok":true,"epoch":1,"seq":null}"#
        );
        assert_eq!(
            c.send(r#"{"cmd":"truth","object":"bird","query":"fly(sparrow)"}"#),
            r#"{"ok":true,"epoch":1,"truth":"true"}"#
        );
        assert_eq!(
            c.send(r#"{"cmd":"retract","object":"bird","rule":"bird(sparrow)."}"#),
            r#"{"ok":true,"epoch":2,"removed":true,"seq":null}"#
        );
        // Errors keep the connection usable.
        assert!(c.send("not json at all").contains(r#""ok":false"#));
        assert!(c
            .send(r#"{"cmd":"save"}"#)
            .contains("no durable store attached"));
        assert_eq!(c.send(r#"{"cmd":"ping"}"#), r#"{"ok":true,"epoch":2}"#);
        c.send(r#"{"cmd":"shutdown"}"#);
        h.join().unwrap();
    }

    #[test]
    fn stats_and_set_commands() {
        let (addr, h) = spawn_server();
        let mut c = Client::connect(addr);
        assert_eq!(
            c.send(r#"{"cmd":"set","timeout_ms":5000}"#),
            r#"{"ok":true,"epoch":0}"#
        );
        let stats = c.send(r#"{"cmd":"stats"}"#);
        let v = Json::parse(&stats).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("objects").unwrap().as_i64(), Some(2));
        assert_eq!(v.get("seq").unwrap(), &Json::Null);
        assert!(v.get("rules").unwrap().as_i64().unwrap() >= 5);
        c.send(r#"{"cmd":"shutdown"}"#);
        h.join().unwrap();
    }

    #[test]
    fn concurrent_clients_interleave() {
        let (addr, h) = spawn_server();
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(move || {
                    let mut c = Client::connect(addr);
                    for _ in 0..20 {
                        let r = c.send(r#"{"cmd":"query","object":"pv","pattern":"fly(X)"}"#);
                        let v = Json::parse(&r).unwrap();
                        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
                    }
                });
            }
        });
        let mut c = Client::connect(addr);
        c.send(r#"{"cmd":"shutdown"}"#);
        h.join().unwrap();
    }
}
