//! Skeptical (cautious) stable consequences.
//!
//! §5 of the paper leaves "extending well-founded semantics to ordered
//! logic programs" as future work. The least model `V^∞(∅)` is already
//! the natural *grounded* semantics (and equals the Fitting model under
//! `OV`, see `olp_classic::fitting`); what WFS adds over Fitting is
//! unfounded-set reasoning, whose ordered analogue is quantification
//! over stable models. This module provides that strongest sound
//! refinement: the **intersection of all stable models** (Def. 9).
//!
//! Properties (checked in `tests/theorems.rs` /
//! `tests/transform_correspondence.rs`):
//!
//! * `least_model ⊆ skeptical` — skeptical reasoning only adds;
//! * for seminegative `C`, the well-founded model of `C` is contained
//!   in the skeptical consequences of `OV(C)` in `C` (WFS ⊆ every
//!   partial stable model = every stable model of `OV(C)` by Cor. 1);
//! * like the classical cautious-stable operator, the result need
//!   *not* itself be a model — it is a set of safe conclusions.
//!
//! Cost: stable-model enumeration (exponential in the contested core).

use crate::interp_intersection;
use crate::stable::{stable_models, stable_models_budgeted};
use crate::view::View;
use olp_core::{Budget, Eval, Interpretation};

/// The literals true in **every** stable model of the view.
pub fn skeptical_consequences(view: &View, n_atoms: usize) -> Interpretation {
    let stable = stable_models(view, n_atoms);
    interp_intersection(&stable)
}

/// [`skeptical_consequences`] under a [`Budget`].
///
/// **Caveat (over-approximation):** a partial result intersects only
/// the stable models *found so far*. Missing models can only shrink an
/// intersection, so a partial skeptical set may contain literals that a
/// complete run would drop — the opposite polarity from the engine's
/// other anytime results. Callers must treat a `Partial` skeptical set
/// as "consequences of the explored models", not as safe conclusions.
pub fn skeptical_consequences_budgeted(
    view: &View,
    n_atoms: usize,
    budget: &Budget,
) -> Eval<Interpretation> {
    stable_models_budgeted(view, n_atoms, budget, None).map(|ms| interp_intersection(&ms))
}

/// The literals true in **some** stable model (credulous/brave
/// consequences). The union of stable models may contain complementary
/// literals (different models choose differently), so the result is a
/// sorted literal list rather than an [`Interpretation`].
pub fn credulous_consequences(view: &View, n_atoms: usize) -> Vec<olp_core::GLit> {
    let mut out: Vec<olp_core::GLit> = stable_models(view, n_atoms)
        .iter()
        .flat_map(|m| m.literals().collect::<Vec<_>>())
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// [`credulous_consequences`] under a [`Budget`].
///
/// **Anytime guarantee:** every literal in a partial result holds in
/// some explored assumption-free model that is maximal among those
/// explored. A partial credulous set is a *subset of the credulous
/// consequences over assumption-free models*; literals witnessed only
/// by unexplored models are missing.
pub fn credulous_consequences_budgeted(
    view: &View,
    n_atoms: usize,
    budget: &Budget,
) -> Eval<Vec<olp_core::GLit>> {
    stable_models_budgeted(view, n_atoms, budget, None).map(|ms| {
        let mut out: Vec<olp_core::GLit> = ms
            .iter()
            .flat_map(|m| m.literals().collect::<Vec<_>>())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixpoint::least_model;
    use olp_core::{CompId, World};
    use olp_ground::{ground_exhaustive, GroundConfig, GroundProgram};
    use olp_parser::{parse_ground_literal, parse_program};

    fn ground(src: &str) -> (World, GroundProgram) {
        let mut w = World::new();
        let p = parse_program(&mut w, src).unwrap();
        let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).unwrap();
        (w, g)
    }

    #[test]
    fn p5_skeptical_is_exactly_c() {
        // Example 5: stable models {a,¬b,c} and {¬a,b,c}; the skeptical
        // consequences are {c} — here equal to the least model.
        let (w, g) = ground(
            "module c2 { a. b. c. }
             module c1 < c2 { -a :- b, c. -b :- a. -b :- -b. }",
        );
        let v = View::new(&g, CompId(1));
        let sk = skeptical_consequences(&v, g.n_atoms);
        assert_eq!(sk.render(&w), "{c}");
        assert_eq!(sk, least_model(&v));
    }

    #[test]
    fn skeptical_exceeds_least_model_by_case_analysis() {
        // A symmetric choice: the two stable models pick a or b, and
        // both derive r — so r is a skeptical consequence even though
        // the least model is empty (it cannot break the tie). This is
        // exactly the reasoning-by-cases that the grounded/least
        // semantics cannot do.
        let (mut w, g) = ground(
            "module c2 { a. b. }
             module c1 < c2 { -a :- b. -b :- a. r :- a. r :- b. }",
        );
        let v = View::new(&g, CompId(1));
        let lm = least_model(&v);
        assert!(lm.is_empty(), "the tie leaves the least model empty");
        let sk = skeptical_consequences(&v, g.n_atoms);
        let r = parse_ground_literal(&mut w, "r").unwrap();
        assert!(sk.holds(r), "r holds in both stable models");
        let a = parse_ground_literal(&mut w, "a").unwrap();
        assert!(!sk.holds(a) && !sk.holds(a.complement()));
    }

    #[test]
    fn credulous_contains_both_choices() {
        let (mut w, g) = ground(
            "module c2 { a. b. }
             module c1 < c2 { -a :- b. -b :- a. r :- a. r :- b. }",
        );
        let v = View::new(&g, CompId(1));
        let cred = credulous_consequences(&v, g.n_atoms);
        let a = parse_ground_literal(&mut w, "a").unwrap();
        let b = parse_ground_literal(&mut w, "b").unwrap();
        // Both a and ¬a are credulously true (and likewise b).
        assert!(cred.contains(&a) && cred.contains(&a.complement()));
        assert!(cred.contains(&b) && cred.contains(&b.complement()));
        // Skeptical ⊆ credulous.
        let sk = skeptical_consequences(&v, g.n_atoms);
        for l in sk.literals() {
            assert!(cred.contains(&l));
        }
    }

    #[test]
    fn interp_intersection_behaviour() {
        use crate::interp_intersection;
        use olp_core::{AtomId, GLit};
        let a = Interpretation::from_literals([
            GLit::pos(AtomId(0)),
            GLit::neg(AtomId(1)),
            GLit::pos(AtomId(2)),
        ])
        .unwrap();
        let b = Interpretation::from_literals([
            GLit::pos(AtomId(0)),
            GLit::pos(AtomId(1)), // disagrees in sign with a
            GLit::pos(AtomId(2)),
        ])
        .unwrap();
        let i = interp_intersection(&[a.clone(), b]);
        assert!(i.holds(GLit::pos(AtomId(0))));
        assert!(i.holds(GLit::pos(AtomId(2))));
        assert_eq!(i.value(AtomId(1)), olp_core::Truth::Undefined);
        // Singleton and empty families.
        assert_eq!(interp_intersection(std::slice::from_ref(&a)), a);
        assert!(interp_intersection(&[]).is_empty());
    }

    #[test]
    fn least_model_always_contained() {
        for src in [
            "a :- b. -a :- b. b.",
            "module c2 { p. } module c1 < c2 { -p :- q. }",
            "x. -x. y :- x.",
        ] {
            let (_, g) = ground(src);
            for ci in 0..g.order.len() {
                let v = View::new(&g, CompId(ci as u32));
                assert!(
                    least_model(&v).is_subset(&skeptical_consequences(&v, g.n_atoms)),
                    "{src}"
                );
            }
        }
    }
}
