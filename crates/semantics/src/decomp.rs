//! Dependency condensation: SCC strata and independent rule groups.
//!
//! The evaluators in this crate are exact but monolithic by default: one
//! worklist over every rule, one 3-valued search tree over every
//! derivable atom. This module computes a **condensation** of the view's
//! dependency structure and threads it through both:
//!
//! * [`least_model_stratified`] runs the fixpoint worklist
//!   stratum-by-stratum over the topologically ordered SCC DAG — smaller
//!   counters, better locality, and each stratum is finished (its atoms'
//!   values are final) before the next begins;
//! * [`enumerate_assumption_free_decomposed`] /
//!   [`stable_models_decomposed`] split the view into **weakly connected
//!   rule groups** (atoms never co-occurring in a dependency are
//!   independent), enumerate each group separately and combine the
//!   per-group model sets as a cartesian product — two independent
//!   Fig. 2-style defeating cliques cost `3^a + 3^b` instead of
//!   `3^(a+b)`. This is the splitting-set idea of Lifschitz & Turner
//!   transplanted to the ordered semantics.
//!
//! ## The dependency graph
//!
//! Nodes are **atoms** (an atom and its classical complement are one
//! node — `GLit::atom` drops the sign). Every rule contributes edges
//! `head atom → body atom`. Attack edges need no separate treatment:
//! a potential overruler/defeater of rule `r` has head complementary to
//! `H(r)`, i.e. the *same atom node*, and whether the attacker is
//! blocked depends on its own body atoms — which its own `head → body`
//! edges already reach from that shared node. So "body edges plus
//! attack edges" collapse to the head→body edges of every rule in the
//! view.
//!
//! ## Why the splits are exact
//!
//! *Strata.* Tarjan numbers SCCs in reverse topological order: a rule's
//! body atoms (and its attackers' body atoms) live in SCCs ≤ the SCC of
//! its head atom, and its attackers' heads live in exactly that SCC.
//! Processing strata in increasing SCC order therefore sees every
//! dependency settled; within a stratum the usual monotone worklist
//! runs. The union over strata performs exactly the derivations of the
//! monolithic least-fixpoint engine, so the result is the same least
//! model (Thm. 1b).
//!
//! *Groups.* Two rules are grouped iff their atoms are connected in the
//! undirected dependency graph; distinct groups mention **disjoint**
//! atom sets, and every status of Def. 2, both model conditions of
//! Def. 3, and the enabled-version `T`-fixpoint of Defs. 6–8 evaluate a
//! rule using only atoms of its own group. Hence an interpretation is an
//! assumption-free model of the view iff its restriction to each group
//! is an assumption-free model of that group's sub-view ([`View::restrict`]),
//! and the AF model set is the product of the per-group sets. Maximality
//! distributes over products of disjoint-atom sets, so the stable models
//! (Def. 9) are the product of per-group maximal AF models.
//!
//! Budget/anytime behaviour is preserved: a tripped budget yields the
//! completed-prefix strata (a sound under-approximation of the least
//! model) resp. only complete group tuples (every partial entry is a
//! genuine AF model of the whole view).

use crate::stable::maximal_only;
use crate::stable_solver::enumerate_assumption_free_propagating_budgeted;
use crate::view::{LocalIdx, View};
use olp_core::{tarjan_scc, Budget, Eval, FxHashMap, Interpretation, InterruptReason, Interrupted};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, RwLock};

/// The condensation of a view's dependency graph: SCC strata in
/// topological order plus weakly connected rule groups.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// SCC id per atom (reverse topological: an atom's SCC only has
    /// edges into SCCs with smaller ids).
    scc_of: Vec<u32>,
    /// Rules grouped by head-atom SCC; `strata[s]` is evaluated after
    /// every stratum with id `< s`. Many strata are empty (atoms
    /// without rules).
    strata: Vec<Vec<LocalIdx>>,
    /// Per rule (local index): the stratum it belongs to.
    rule_stratum: Vec<u32>,
    /// Weakly connected rule groups, as **global** rule indices suitable
    /// for [`View::restrict`]; group order is first-seen rule order.
    groups: Vec<Vec<u32>>,
}

fn uf_find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        // Path halving.
        parent[x as usize] = parent[parent[x as usize] as usize];
        x = parent[x as usize];
    }
    x
}

fn uf_union(parent: &mut [u32], a: u32, b: u32) {
    let ra = uf_find(parent, a);
    let rb = uf_find(parent, b);
    if ra != rb {
        parent[rb as usize] = ra;
    }
}

impl Decomposition {
    /// Computes the condensation of `view`'s dependency graph.
    /// Linear in atoms + rule-body edges (plus the Tarjan pass).
    pub fn new(view: &View) -> Self {
        let n_atoms = view.gp.n_atoms;
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n_atoms];
        let mut parent: Vec<u32> = (0..n_atoms as u32).collect();
        for (_, r) in view.rules() {
            let h = r.head.atom().index();
            for &b in &r.body {
                let ba = b.atom().index() as u32;
                adj[h].push(ba);
                uf_union(&mut parent, h as u32, ba);
            }
        }
        for outs in &mut adj {
            outs.sort_unstable();
            outs.dedup();
        }
        let (scc_of, n_sccs) = tarjan_scc(&adj);

        let mut strata: Vec<Vec<LocalIdx>> = vec![Vec::new(); n_sccs];
        let mut rule_stratum = vec![0u32; view.len()];
        for (li, r) in view.rules() {
            let s = scc_of[r.head.atom().index()];
            rule_stratum[li as usize] = s;
            strata[s as usize].push(li);
        }

        let mut group_of_root: FxHashMap<u32, usize> = FxHashMap::default();
        let mut groups: Vec<Vec<u32>> = Vec::new();
        for (li, r) in view.rules() {
            let root = uf_find(&mut parent, r.head.atom().index() as u32);
            let gi = *group_of_root.entry(root).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[gi].push(view.global_index(li));
        }

        Decomposition {
            scc_of,
            strata,
            rule_stratum,
            groups,
        }
    }

    /// SCC id of an atom (by dense atom index).
    pub fn scc_of_atom(&self, atom: usize) -> u32 {
        self.scc_of[atom]
    }

    /// Number of strata (= SCCs over the atom universe; most are empty).
    pub fn n_strata(&self) -> usize {
        self.strata.len()
    }

    /// The weakly connected rule groups (global rule indices).
    pub fn groups(&self) -> &[Vec<u32>] {
        &self.groups
    }

    /// The stratum a rule (local index) belongs to.
    pub fn rule_stratum(&self, li: LocalIdx) -> u32 {
        self.rule_stratum[li as usize]
    }
}

// ---- Stratified least fixpoint --------------------------------------

/// [`crate::least_model`] evaluated stratum-by-stratum over a fresh
/// condensation. Same result as the monolithic engine
/// ([`crate::fixpoint::least_model_monolithic`]); differentially tested.
pub fn least_model_stratified(view: &View) -> Interpretation {
    least_model_stratified_budgeted(view, &Budget::unlimited()).into_value()
}

/// [`least_model_stratified`] under a [`Budget`].
///
/// On interruption the partial result is the accumulated interpretation:
/// every completed stratum in full plus a monotone prefix of the current
/// one — always a subset of the unbudgeted least model.
pub fn least_model_stratified_budgeted(view: &View, budget: &Budget) -> Eval<Interpretation> {
    let d = Decomposition::new(view);
    least_model_stratified_with(view, &d, budget)
}

/// [`least_model_stratified_budgeted`] over a precomputed condensation.
pub fn least_model_stratified_with(
    view: &View,
    d: &Decomposition,
    budget: &Budget,
) -> Eval<Interpretation> {
    let n = view.len();
    let mut unsat = vec![0u32; n];
    let mut over = vec![0u32; n];
    let mut defeat = vec![0u32; n];
    let mut blocked = vec![false; n];
    let mut fired = vec![false; n];

    let mut i = Interpretation::new();
    let mut queue: Vec<olp_core::GLit> = Vec::new();
    let mut interrupted = None;
    let mut ticker = budget.ticker();

    // A rule may fire as soon as its body is satisfied and every
    // attacker is blocked; both only ever become true (monotone).
    macro_rules! try_fire {
        ($li:expr) => {{
            let l = $li as usize;
            if unsat[l] == 0 && over[l] == 0 && defeat[l] == 0 && !fired[l] {
                fired[l] = true;
                let head = view.rule($li).head;
                if i.insert(head).expect("V preserves consistency") {
                    queue.push(head);
                }
            }
        }};
    }

    'strata: for (s, stratum) in d.strata.iter().enumerate() {
        if stratum.is_empty() {
            continue;
        }
        let s = s as u32;
        // Initialise the stratum's counters against the accumulated
        // interpretation: all body atoms (own and attackers') live in
        // strata ≤ s, so earlier-strata contributions are final and
        // intra-stratum ones are handled by the worklist below.
        for &li in stratum {
            if let Err(reason) = ticker.tick() {
                interrupted = Some(reason);
                break 'strata;
            }
            let r = view.rule(li);
            let l = li as usize;
            blocked[l] = r.body.iter().any(|&b| i.holds(b.complement()));
            unsat[l] = r.body.iter().filter(|&&b| !i.holds(b)).count() as u32;
        }
        for &li in stratum {
            // Attackers share the victim's head atom, hence its stratum:
            // their `blocked` entries were just initialised above.
            let l = li as usize;
            over[l] = view
                .overrulers(li)
                .iter()
                .filter(|&&a| !blocked[a as usize])
                .count() as u32;
            defeat[l] = view
                .defeaters(li)
                .iter()
                .filter(|&&a| !blocked[a as usize])
                .count() as u32;
        }
        for &li in stratum {
            if let Err(reason) = ticker.tick() {
                interrupted = Some(reason);
                break 'strata;
            }
            try_fire!(li);
        }
        while let Some(lit) = queue.pop() {
            if let Err(reason) = ticker.tick() {
                interrupted = Some(reason);
                break 'strata;
            }
            // Only rules of the current stratum can watch `lit`: a rule
            // in an earlier stratum with `lit` (or its complement) in
            // the body would give `lit`'s SCC a larger id than its own
            // head's, contradicting the topological numbering. Later
            // strata initialise against `i` when their turn comes.
            for &li in view.rules_with_body_lit(lit) {
                if d.rule_stratum[li as usize] != s {
                    continue;
                }
                unsat[li as usize] -= 1;
                try_fire!(li);
            }
            for &li in view.rules_with_body_lit(lit.complement()) {
                if d.rule_stratum[li as usize] != s || blocked[li as usize] {
                    continue;
                }
                blocked[li as usize] = true;
                for &v in view.victims_overrule(li) {
                    over[v as usize] -= 1;
                    try_fire!(v);
                }
                for &v in view.victims_defeat(li) {
                    defeat[v as usize] -= 1;
                    try_fire!(v);
                }
            }
        }
    }
    match interrupted {
        None => Eval::Complete(i),
        Some(reason) => Eval::Interrupted(Interrupted { reason, partial: i }),
    }
}

/// [`least_model_stratified_with`] that recomputes **only the strata
/// downstream of `touched` atoms**, copying every other stratum's
/// literals from a previously computed least model `old` of the
/// pre-mutation view.
///
/// `touched` are the (dense indices of) atoms occurring in rule
/// instances added or removed by the mutation — heads *and* bodies.
/// Dirtiness propagates along reverse dependency edges of the **new**
/// view (body atom → head atom): an atom's value can only change if it
/// transitively depends on a touched atom. Removed derivation chains
/// are covered because any broken chain ends at a removed instance,
/// whose head is touched. SCCs are strongly connected in the reverse
/// graph too, so the dirty set is automatically SCC-closed.
///
/// Soundness of copying: a clean stratum's rules are unchanged (a
/// changed instance would have touched its head atom), its attackers
/// share the stratum (hence are unchanged), and every body atom —
/// living in an earlier stratum — is clean, so by induction over the
/// topological stratum order the stratum computes exactly its old
/// values. See `docs/SEMANTICS.md` §"Incremental maintenance".
///
/// On interruption the partial result is the copied clean strata
/// processed so far plus a monotone prefix of the current dirty
/// stratum — always a subset of the new least model.
pub fn least_model_delta(
    view: &View,
    d: &Decomposition,
    old: &Interpretation,
    touched: &[usize],
    budget: &Budget,
) -> Eval<Interpretation> {
    let n_atoms = view.gp.n_atoms;
    // Reverse dependency edges: body atom → head atom.
    let mut radj: Vec<Vec<u32>> = vec![Vec::new(); n_atoms];
    for (_, r) in view.rules() {
        let h = r.head.atom().index() as u32;
        for &b in &r.body {
            radj[b.atom().index()].push(h);
        }
    }
    let mut dirty_atom = vec![false; n_atoms];
    let mut stack: Vec<usize> = Vec::new();
    for &a in touched {
        if a < n_atoms && !dirty_atom[a] {
            dirty_atom[a] = true;
            stack.push(a);
        }
    }
    while let Some(a) = stack.pop() {
        for &h in &radj[a] {
            if !dirty_atom[h as usize] {
                dirty_atom[h as usize] = true;
                stack.push(h as usize);
            }
        }
    }
    let mut dirty_stratum = vec![false; d.strata.len()];
    for (a, &dirt) in dirty_atom.iter().enumerate() {
        if dirt {
            dirty_stratum[d.scc_of[a] as usize] = true;
        }
    }
    // Bucket the old model's literals by their stratum in the *new*
    // condensation (atom indices are stable across mutations; the new
    // universe is a superset).
    let mut old_by_stratum: Vec<Vec<olp_core::GLit>> = vec![Vec::new(); d.strata.len()];
    for l in old.literals() {
        let a = l.atom().index();
        if a < n_atoms {
            old_by_stratum[d.scc_of[a] as usize].push(l);
        }
    }

    let n = view.len();
    let mut unsat = vec![0u32; n];
    let mut over = vec![0u32; n];
    let mut defeat = vec![0u32; n];
    let mut blocked = vec![false; n];
    let mut fired = vec![false; n];

    let mut i = Interpretation::new();
    let mut queue: Vec<olp_core::GLit> = Vec::new();
    let mut interrupted = None;
    let mut ticker = budget.ticker();

    macro_rules! try_fire {
        ($li:expr) => {{
            let l = $li as usize;
            if unsat[l] == 0 && over[l] == 0 && defeat[l] == 0 && !fired[l] {
                fired[l] = true;
                let head = view.rule($li).head;
                if i.insert(head).expect("V preserves consistency") {
                    queue.push(head);
                }
            }
        }};
    }

    'strata: for (s, stratum) in d.strata.iter().enumerate() {
        if !dirty_stratum[s] {
            // Clean stratum: its old values are its new values.
            for &l in &old_by_stratum[s] {
                if let Err(reason) = ticker.tick() {
                    interrupted = Some(reason);
                    break 'strata;
                }
                i.insert(l).expect("old model is consistent");
            }
            continue;
        }
        if stratum.is_empty() {
            continue;
        }
        let s = s as u32;
        for &li in stratum {
            if let Err(reason) = ticker.tick() {
                interrupted = Some(reason);
                break 'strata;
            }
            let r = view.rule(li);
            let l = li as usize;
            blocked[l] = r.body.iter().any(|&b| i.holds(b.complement()));
            unsat[l] = r.body.iter().filter(|&&b| !i.holds(b)).count() as u32;
        }
        for &li in stratum {
            let l = li as usize;
            over[l] = view
                .overrulers(li)
                .iter()
                .filter(|&&a| !blocked[a as usize])
                .count() as u32;
            defeat[l] = view
                .defeaters(li)
                .iter()
                .filter(|&&a| !blocked[a as usize])
                .count() as u32;
        }
        for &li in stratum {
            if let Err(reason) = ticker.tick() {
                interrupted = Some(reason);
                break 'strata;
            }
            try_fire!(li);
        }
        while let Some(lit) = queue.pop() {
            if let Err(reason) = ticker.tick() {
                interrupted = Some(reason);
                break 'strata;
            }
            for &li in view.rules_with_body_lit(lit) {
                if d.rule_stratum[li as usize] != s {
                    continue;
                }
                unsat[li as usize] -= 1;
                try_fire!(li);
            }
            for &li in view.rules_with_body_lit(lit.complement()) {
                if d.rule_stratum[li as usize] != s || blocked[li as usize] {
                    continue;
                }
                blocked[li as usize] = true;
                for &v in view.victims_overrule(li) {
                    over[v as usize] -= 1;
                    try_fire!(v);
                }
                for &v in view.victims_defeat(li) {
                    defeat[v as usize] -= 1;
                    try_fire!(v);
                }
            }
        }
    }
    match interrupted {
        None => Eval::Complete(i),
        Some(reason) => Eval::Interrupted(Interrupted { reason, partial: i }),
    }
}

// ---- Stratum-wavefront least fixpoint --------------------------------

/// Evaluates one stratum's fixpoint against a frozen `global`
/// interpretation holding the final values of every earlier-level
/// stratum. Pure function of `(stratum, global)`: all scratch state is
/// local, so same-level strata can run on different threads.
///
/// This is exactly the per-stratum body of
/// [`least_model_stratified_with`] with `i` split into `global`
/// (read-only, earlier strata) and `local` (this stratum's derivations;
/// atom-disjoint from `global` since an atom's rules all share its
/// stratum). On a budget trip the monotone local prefix derived so far
/// is returned — a sound under-approximation of the stratum's fixpoint.
fn wavefront_stratum(
    view: &View,
    d: &Decomposition,
    s: usize,
    global: &Interpretation,
    budget: &Budget,
) -> Result<Interpretation, (InterruptReason, Interpretation)> {
    let stratum = &d.strata[s];
    let k = stratum.len();
    let mut pos_of: FxHashMap<LocalIdx, usize> = FxHashMap::default();
    for (p, &li) in stratum.iter().enumerate() {
        pos_of.insert(li, p);
    }
    let mut unsat = vec![0u32; k];
    let mut over = vec![0u32; k];
    let mut defeat = vec![0u32; k];
    let mut blocked = vec![false; k];
    let mut fired = vec![false; k];

    let mut local = Interpretation::new();
    let mut queue: Vec<olp_core::GLit> = Vec::new();
    let mut ticker = budget.ticker();

    macro_rules! try_fire {
        ($p:expr, $li:expr) => {{
            let p = $p;
            if unsat[p] == 0 && over[p] == 0 && defeat[p] == 0 && !fired[p] {
                fired[p] = true;
                let head = view.rule($li).head;
                // The head atom belongs to this stratum, so `global`
                // cannot mention it; consistency is local.
                if local.insert(head).expect("V preserves consistency") {
                    queue.push(head);
                }
            }
        }};
    }

    for (p, &li) in stratum.iter().enumerate() {
        if let Err(reason) = ticker.tick() {
            return Err((reason, local));
        }
        let r = view.rule(li);
        blocked[p] = r.body.iter().any(|&b| global.holds(b.complement()));
        unsat[p] = r.body.iter().filter(|&&b| !global.holds(b)).count() as u32;
    }
    for (p, &li) in stratum.iter().enumerate() {
        // Attackers share the victim's head atom, hence its stratum.
        over[p] = view
            .overrulers(li)
            .iter()
            .filter(|&&a| !blocked[pos_of[&a]])
            .count() as u32;
        defeat[p] = view
            .defeaters(li)
            .iter()
            .filter(|&&a| !blocked[pos_of[&a]])
            .count() as u32;
    }
    for (p, &li) in stratum.iter().enumerate() {
        if let Err(reason) = ticker.tick() {
            return Err((reason, local));
        }
        try_fire!(p, li);
    }
    while let Some(lit) = queue.pop() {
        if let Err(reason) = ticker.tick() {
            return Err((reason, local));
        }
        let s = s as u32;
        for &li in view.rules_with_body_lit(lit) {
            if d.rule_stratum[li as usize] != s {
                continue;
            }
            let p = pos_of[&li];
            unsat[p] -= 1;
            try_fire!(p, li);
        }
        for &li in view.rules_with_body_lit(lit.complement()) {
            if d.rule_stratum[li as usize] != s {
                continue;
            }
            let p = pos_of[&li];
            if blocked[p] {
                continue;
            }
            blocked[p] = true;
            for &v in view.victims_overrule(li) {
                let pv = pos_of[&v];
                over[pv] -= 1;
                try_fire!(pv, v);
            }
            for &v in view.victims_defeat(li) {
                let pv = pos_of[&v];
                defeat[pv] -= 1;
                try_fire!(pv, v);
            }
        }
    }
    Ok(local)
}

/// [`least_model_stratified`] with a **stratum-wavefront scheduler**:
/// strata are bucketed by dependency level (a stratum's level is one
/// more than the deepest level among its rules' out-of-stratum body
/// atoms) and all strata of a level run concurrently on `threads`
/// workers. Same result as the sequential engine for every thread
/// count; `threads <= 1` takes the sequential code path verbatim.
pub fn least_model_wavefront(view: &View, threads: usize, budget: &Budget) -> Eval<Interpretation> {
    let d = Decomposition::new(view);
    least_model_wavefront_with(view, &d, threads, budget)
}

/// [`least_model_wavefront`] over a precomputed condensation.
///
/// **Soundness of levels.** Body atoms of a stratum-`s` rule (its own
/// and — since attackers share their victim's stratum — its attackers')
/// live in SCCs `t <= s`; for `t != s` the level recurrence puts `t`
/// strictly below `s`. So when a level starts, every out-of-stratum
/// input is final, same-level strata touch pairwise disjoint atoms, and
/// each stratum's fixpoint equals its sequential value by induction
/// over levels.
///
/// **Anytime guarantee.** On a budget trip the partial result is the
/// union of all completed strata plus the monotone local prefixes of
/// the strata in flight when the trip happened — always a subset of the
/// least model, the same contract as [`least_model_stratified_budgeted`].
pub fn least_model_wavefront_with(
    view: &View,
    d: &Decomposition,
    threads: usize,
    budget: &Budget,
) -> Eval<Interpretation> {
    let threads = threads.max(1);
    if threads == 1 {
        return least_model_stratified_with(view, d, budget);
    }
    // Dependency level per stratum, ascending over SCC ids (reverse
    // topological: body SCCs have smaller ids, so they are done).
    let n_strata = d.strata.len();
    let mut level = vec![0u32; n_strata];
    let mut max_level = 0u32;
    for s in 0..n_strata {
        let mut lv = 0u32;
        for &li in &d.strata[s] {
            for &b in &view.rule(li).body {
                let t = d.scc_of[b.atom().index()] as usize;
                if t != s {
                    lv = lv.max(level[t] + 1);
                }
            }
        }
        level[s] = lv;
        if !d.strata[s].is_empty() {
            max_level = max_level.max(lv);
        }
    }
    // Flatten the non-empty strata into level-contiguous windows.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_level as usize + 1];
    for (s, stratum) in d.strata.iter().enumerate() {
        if !stratum.is_empty() {
            buckets[level[s] as usize].push(s as u32);
        }
    }
    let mut flat: Vec<u32> = Vec::new();
    let mut bounds: Vec<(usize, usize)> = Vec::new();
    for b in &buckets {
        if b.is_empty() {
            continue;
        }
        let lo = flat.len();
        flat.extend_from_slice(b);
        bounds.push((lo, flat.len()));
    }
    if flat.is_empty() {
        return Eval::Complete(Interpretation::new());
    }

    // Persistent workers; two barriers per level (start, end). Between
    // the end barrier and the next start barrier only the main thread
    // runs, merging the level's results into the global interpretation.
    let barrier = Barrier::new(threads + 1);
    let next = AtomicUsize::new(0);
    let hi = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    let global = RwLock::new(Interpretation::new());
    type StratumResult = Result<Interpretation, (InterruptReason, Interpretation)>;
    let slots: Vec<Mutex<Option<StratumResult>>> = flat.iter().map(|_| Mutex::new(None)).collect();
    let mut interrupted: Option<InterruptReason> = None;

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            let (barrier, next, hi, done, stop) = (&barrier, &next, &hi, &done, &stop);
            let (global, slots, flat) = (&global, &slots, &flat);
            scope.spawn(move |_| loop {
                barrier.wait();
                if done.load(Ordering::Acquire) {
                    return;
                }
                let g = global.read().expect("global interpretation lock");
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= hi.load(Ordering::Relaxed) || stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let r = wavefront_stratum(view, d, flat[i] as usize, &g, budget);
                    if r.is_err() {
                        stop.store(true, Ordering::Relaxed);
                    }
                    *slots[i].lock().expect("slot") = Some(r);
                }
                drop(g);
                barrier.wait();
            });
        }
        for &(lo, hi_b) in &bounds {
            next.store(lo, Ordering::Relaxed);
            hi.store(hi_b, Ordering::Relaxed);
            barrier.wait(); // release the level
            barrier.wait(); // level finished
            let mut g = global.write().expect("global interpretation lock");
            for slot in &slots[lo..hi_b] {
                // `None` = skipped after a sibling's budget trip set
                // `stop`; the trip itself recorded an `Err` slot.
                match slot.lock().expect("slot").take() {
                    Some(Ok(local)) => {
                        for l in local.literals() {
                            g.insert(l).expect("strata are atom-disjoint");
                        }
                    }
                    Some(Err((reason, partial))) => {
                        interrupted.get_or_insert(reason);
                        for l in partial.literals() {
                            g.insert(l).expect("strata are atom-disjoint");
                        }
                    }
                    None => {}
                }
            }
            drop(g);
            if interrupted.is_some() {
                break;
            }
        }
        done.store(true, Ordering::Release);
        barrier.wait(); // wake the workers so they observe `done`
    })
    .expect("scope");

    let i = global.into_inner().expect("global interpretation lock");
    match interrupted {
        None => Eval::Complete(i),
        Some(reason) => Eval::Interrupted(Interrupted { reason, partial: i }),
    }
}

// ---- Product-form enumeration ---------------------------------------

/// Cartesian product of per-group model sets. Groups have pairwise
/// disjoint atoms, so merging never conflicts; every emitted entry is a
/// **complete** tuple (one model from every group) and therefore a
/// genuine AF model of the whole view. The cap and the budget interrupt
/// with only complete tuples in the partial list.
fn product(
    groups: &[Vec<Interpretation>],
    cap: usize,
    budget: &Budget,
) -> Result<Vec<Interpretation>, Interrupted<Vec<Interpretation>>> {
    if groups.iter().any(std::vec::Vec::is_empty) {
        return Ok(Vec::new());
    }
    let mut idx = vec![0usize; groups.len()];
    let mut out = Vec::new();
    let mut ticker = budget.ticker();
    loop {
        if let Err(reason) = ticker.tick() {
            return Err(Interrupted {
                reason,
                partial: out,
            });
        }
        let mut m = Interpretation::new();
        for (g, &i) in groups.iter().zip(idx.iter()) {
            for l in g[i].literals() {
                m.insert(l).expect("groups have disjoint atoms");
            }
        }
        out.push(m);
        if out.len() >= cap {
            return Err(Interrupted {
                reason: InterruptReason::ModelCap,
                partial: out,
            });
        }
        // Advance the odometer (group 0 varies fastest).
        let mut k = 0;
        loop {
            idx[k] += 1;
            if idx[k] < groups[k].len() {
                break;
            }
            idx[k] = 0;
            k += 1;
            if k == groups.len() {
                return Ok(out);
            }
        }
    }
}

/// Per-group enumeration results combined as a product.
fn combine(
    per_group: &[Vec<Interpretation>],
    interrupted: Option<InterruptReason>,
    cap: usize,
    budget: &Budget,
) -> Eval<Vec<Interpretation>> {
    match (product(per_group, cap, budget), interrupted) {
        (Ok(ms), None) => Eval::Complete(ms),
        (Ok(ms), Some(reason)) => Eval::Interrupted(Interrupted {
            reason,
            partial: ms,
        }),
        // The product's own interruption (cap or budget) wins only if
        // the group enumeration itself was complete.
        (Err(Interrupted { reason, partial }), earlier) => Eval::Interrupted(Interrupted {
            reason: earlier.unwrap_or(reason),
            partial,
        }),
    }
}

/// Enumerates every assumption-free model by solving each weakly
/// connected rule group separately and combining the per-group model
/// sets as a cartesian product. Set-equal to
/// [`crate::enumerate_assumption_free_propagating`]; exponentially
/// faster when the view splits into independent groups.
pub fn enumerate_assumption_free_decomposed(view: &View, n_atoms: usize) -> Vec<Interpretation> {
    enumerate_assumption_free_decomposed_budgeted(view, n_atoms, &Budget::unlimited(), None)
        .into_value()
}

/// [`enumerate_assumption_free_decomposed`] under a [`Budget`],
/// optionally capped at `max_models` results.
///
/// **Anytime guarantee:** every entry of a partial result is a complete
/// product tuple, hence a genuine AF model of the whole view. A budget
/// trip while a *non-final* group is still enumerating yields an empty
/// partial list (no sound complete tuple exists yet).
pub fn enumerate_assumption_free_decomposed_budgeted(
    view: &View,
    n_atoms: usize,
    budget: &Budget,
    max_models: Option<usize>,
) -> Eval<Vec<Interpretation>> {
    let d = Decomposition::new(view);
    if d.groups().len() <= 1 {
        return enumerate_assumption_free_propagating_budgeted(view, n_atoms, budget, max_models);
    }
    let cap = max_models.unwrap_or(usize::MAX);
    let n_groups = d.groups().len();
    let mut per_group: Vec<Vec<Interpretation>> = Vec::with_capacity(n_groups);
    for (gi, rules) in d.groups().iter().enumerate() {
        let sub = view.restrict(rules);
        match enumerate_assumption_free_propagating_budgeted(&sub, n_atoms, budget, None) {
            Eval::Complete(ms) => per_group.push(ms),
            Eval::Interrupted(Interrupted { reason, partial }) => {
                if gi + 1 == n_groups {
                    // Every earlier group is complete: tuples ending in
                    // a verified model of the last group are sound.
                    per_group.push(partial);
                    return combine(&per_group, Some(reason), cap, budget);
                }
                return Eval::Interrupted(Interrupted {
                    reason,
                    partial: Vec::new(),
                });
            }
        }
    }
    combine(&per_group, None, cap, budget)
}

/// Stable models (Def. 9) via per-group enumeration: maximality under
/// set inclusion distributes over products of disjoint-atom model sets,
/// so the product of per-group **maximal** AF models is exactly the
/// stable model set. The quadratic maximality filter runs per group,
/// never on the (possibly exponentially larger) product.
pub fn stable_models_decomposed(view: &View, n_atoms: usize) -> Vec<Interpretation> {
    stable_models_decomposed_budgeted(view, n_atoms, &Budget::unlimited(), None).into_value()
}

/// [`stable_models_decomposed`] under a [`Budget`], optionally capped at
/// `max_models` results. Same anytime caveat as
/// [`crate::stable_models_budgeted`]: entries of a partial result are
/// genuine AF models, but maximality is relative to what was explored.
pub fn stable_models_decomposed_budgeted(
    view: &View,
    n_atoms: usize,
    budget: &Budget,
    max_models: Option<usize>,
) -> Eval<Vec<Interpretation>> {
    let d = Decomposition::new(view);
    if d.groups().len() <= 1 {
        return crate::stable::stable_models_monolithic_budgeted(view, n_atoms, budget, max_models);
    }
    let cap = max_models.unwrap_or(usize::MAX);
    let n_groups = d.groups().len();
    let mut per_group: Vec<Vec<Interpretation>> = Vec::with_capacity(n_groups);
    for (gi, rules) in d.groups().iter().enumerate() {
        let sub = view.restrict(rules);
        match enumerate_assumption_free_propagating_budgeted(&sub, n_atoms, budget, None) {
            Eval::Complete(ms) => per_group.push(maximal_only(ms)),
            Eval::Interrupted(Interrupted { reason, partial }) => {
                if gi + 1 == n_groups {
                    // Cheap-filter guard as in `stable_models_budgeted`:
                    // never follow an exhausted budget with a quadratic
                    // pass over a huge list.
                    const CHEAP_FILTER: usize = 1024;
                    let partial = if partial.len() <= CHEAP_FILTER {
                        maximal_only(partial)
                    } else {
                        partial
                    };
                    per_group.push(partial);
                    return combine(&per_group, Some(reason), cap, budget);
                }
                return Eval::Interrupted(Interrupted {
                    reason,
                    partial: Vec::new(),
                });
            }
        }
    }
    combine(&per_group, None, cap, budget)
}

/// [`stable_models_decomposed_budgeted`] with a **per-group memo
/// cache**, the stable-model side of incremental maintenance: a
/// mutation that leaves a weakly connected group's rule set unchanged
/// re-uses the group's maximal-AF-model set verbatim instead of
/// re-enumerating its 3-valued search space. The cache key is the
/// group's canonicalised rule multiset (sorted by `(comp, head, body)`
/// — a group's semantics within a fixed view depends on nothing else),
/// so a retract-then-reassert also hits. Only **complete** per-group
/// results are cached; interrupted enumerations are never stored.
///
/// The caller owns `cache` and is responsible for keying it per
/// consumer component (group semantics depends on the view's vantage
/// component through the attack relations) and for bounding its size.
#[allow(clippy::implicit_hasher)] // the cache type is FxHashMap by design, not a generic map
pub fn stable_models_decomposed_cached(
    view: &View,
    n_atoms: usize,
    budget: &Budget,
    max_models: Option<usize>,
    cache: &mut FxHashMap<Vec<olp_ground::GroundRule>, Vec<Interpretation>>,
) -> Eval<Vec<Interpretation>> {
    let d = Decomposition::new(view);
    if d.groups().len() <= 1 {
        return crate::stable::stable_models_monolithic_budgeted(view, n_atoms, budget, max_models);
    }
    let cap = max_models.unwrap_or(usize::MAX);
    let n_groups = d.groups().len();
    let mut per_group: Vec<Vec<Interpretation>> = Vec::with_capacity(n_groups);
    for (gi, rules) in d.groups().iter().enumerate() {
        let mut key: Vec<olp_ground::GroundRule> = rules
            .iter()
            .map(|&g| view.gp.rules[g as usize].clone())
            .collect();
        key.sort_unstable_by(|a, b| (a.comp, a.head, &a.body).cmp(&(b.comp, b.head, &b.body)));
        if let Some(ms) = cache.get(&key) {
            per_group.push(ms.clone());
            continue;
        }
        let sub = view.restrict(rules);
        match enumerate_assumption_free_propagating_budgeted(&sub, n_atoms, budget, None) {
            Eval::Complete(ms) => {
                let ms = maximal_only(ms);
                cache.insert(key, ms.clone());
                per_group.push(ms);
            }
            Eval::Interrupted(Interrupted { reason, partial }) => {
                if gi + 1 == n_groups {
                    const CHEAP_FILTER: usize = 1024;
                    let partial = if partial.len() <= CHEAP_FILTER {
                        maximal_only(partial)
                    } else {
                        partial
                    };
                    per_group.push(partial);
                    return combine(&per_group, Some(reason), cap, budget);
                }
                return Eval::Interrupted(Interrupted {
                    reason,
                    partial: Vec::new(),
                });
            }
        }
    }
    combine(&per_group, None, cap, budget)
}

/// Parallel group-level enumeration: whole groups are distributed to the
/// worker threads (each group's sub-view is solved independently), and
/// the per-group sets are combined as a product. Used by
/// [`crate::enumerate_assumption_free_parallel_budgeted`] when the view
/// splits; the caller falls back to prefix splitting otherwise.
///
/// Unlike the sequential path, an interrupted group still contributes
/// its verified partial list — the other groups finished (or were
/// interrupted with their own partials), so every product tuple remains
/// a complete, sound AF model.
pub(crate) fn enumerate_af_groups_parallel(
    view: &View,
    d: &Decomposition,
    threads: usize,
    budget: &Budget,
    max_models: Option<usize>,
) -> Eval<Vec<Interpretation>> {
    let groups = d.groups();
    let threads = threads.max(1).min(groups.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<Eval<Vec<Interpretation>>>>> =
        groups.iter().map(|_| std::sync::Mutex::new(None)).collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let slots = &slots;
            scope.spawn(move |_| loop {
                let gi = next.fetch_add(1, Ordering::Relaxed);
                if gi >= groups.len() {
                    return;
                }
                let sub = view.restrict(&groups[gi]);
                let r = enumerate_assumption_free_propagating_budgeted(
                    &sub,
                    view.gp.n_atoms,
                    budget,
                    None,
                );
                *slots[gi].lock().expect("slot") = Some(r);
            });
        }
    })
    .expect("scope");

    let mut per_group: Vec<Vec<Interpretation>> = Vec::with_capacity(groups.len());
    let mut first_reason = None;
    for slot in slots {
        match slot
            .into_inner()
            .expect("slot")
            .expect("worker filled slot")
        {
            Eval::Complete(ms) => per_group.push(ms),
            Eval::Interrupted(Interrupted { reason, partial }) => {
                first_reason.get_or_insert(reason);
                per_group.push(partial);
            }
        }
    }
    combine(
        &per_group,
        first_reason,
        max_models.unwrap_or(usize::MAX),
        budget,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixpoint::{least_model_monolithic, least_model_monolithic_budgeted};
    use crate::stable::stable_models_naive;
    use crate::stable_solver::enumerate_assumption_free_propagating;
    use olp_core::{CompId, World};
    use olp_ground::{ground_exhaustive, GroundConfig, GroundProgram};
    use olp_parser::parse_program;

    fn ground(src: &str) -> (World, GroundProgram) {
        let mut w = World::new();
        let p = parse_program(&mut w, src).unwrap();
        let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).unwrap();
        (w, g)
    }

    fn renders(w: &World, ms: &[Interpretation]) -> Vec<String> {
        let mut v: Vec<String> = ms.iter().map(|m| m.render(w)).collect();
        v.sort();
        v
    }

    /// Two disjoint copies of the paper's Fig. 2 (mutual defeat) plus an
    /// independent chain: three groups.
    const TWO_FIG2: &str = "module c3 { rich(mimmo). -poor(X) :- rich(X).
            wealthy(anna). -broke(X) :- wealthy(X). }
         module c2 { poor(mimmo). -rich(X) :- poor(X).
            broke(anna). -wealthy(X) :- broke(X). }
         module c1 < c2, c3 { free_ticket(X) :- poor(X).
            charity(X) :- broke(X).
            happy(bob). smiling(X) :- happy(X). }";

    #[test]
    fn groups_split_disjoint_subprograms() {
        let (_, g) = ground(TWO_FIG2);
        let v = View::new(&g, CompId(2)); // c1
        let d = Decomposition::new(&v);
        // Grounding instantiates every rule for every constant, so each
        // of the three relation cliques (rich/poor/free_ticket,
        // wealthy/broke/charity, happy/smiling) splits further into one
        // group per individual (mimmo, anna, bob): 9 in total.
        assert_eq!(d.groups().len(), 9);
        let total: usize = d.groups().iter().map(Vec::len).sum();
        assert_eq!(total, v.len(), "groups partition the rules");
    }

    #[test]
    fn attackers_share_their_victims_stratum() {
        let (_, g) = ground(TWO_FIG2);
        let v = View::new(&g, CompId(2));
        let d = Decomposition::new(&v);
        for (li, _) in v.rules() {
            for &a in v.overrulers(li).iter().chain(v.defeaters(li)) {
                assert_eq!(d.rule_stratum(a), d.rule_stratum(li));
            }
        }
    }

    #[test]
    fn stratified_agrees_with_monolithic() {
        for src in [
            TWO_FIG2,
            "module c2 { bird(penguin). bird(pigeon). fly(X) :- bird(X).
                -ground_animal(X) :- bird(X). }
             module c1 < c2 { ground_animal(penguin). -fly(X) :- ground_animal(X). }",
            "a :- b. -a :- b. b.",
            "p. -p.",
            "module c2 { a. b. c. }
             module c1 < c2 { -a :- b, c. -b :- a. -b :- -b. }",
            "p :- q. q :- p. r :- p.",
        ] {
            let (_, g) = ground(src);
            for c in 0..g.order.len() {
                let v = View::new(&g, CompId(c as u32));
                assert_eq!(
                    least_model_stratified(&v),
                    least_model_monolithic(&v),
                    "stratified vs monolithic on {src} in component {c}"
                );
            }
        }
    }

    #[test]
    fn decomposed_af_set_equals_monolithic() {
        let (w, g) = ground(TWO_FIG2);
        for c in 0..g.order.len() {
            let v = View::new(&g, CompId(c as u32));
            assert_eq!(
                renders(&w, &enumerate_assumption_free_decomposed(&v, g.n_atoms)),
                renders(&w, &enumerate_assumption_free_propagating(&v, g.n_atoms)),
                "component {c}"
            );
        }
    }

    #[test]
    fn decomposed_stable_product_of_example5_clones() {
        // Two independent copies of Example 5 (2 stable models each):
        // the decomposed stable set must be the 4-model product.
        let (w, g) = ground(
            "module c2 { a. b. c. x. y. z. }
             module c1 < c2 { -a :- b, c. -b :- a. -b :- -b.
                              -x :- y, z. -y :- x. -y :- -y. }",
        );
        let v = View::new(&g, CompId(1));
        let d = Decomposition::new(&v);
        assert_eq!(d.groups().len(), 2);
        let dec = stable_models_decomposed(&v, g.n_atoms);
        assert_eq!(dec.len(), 4);
        assert_eq!(
            renders(&w, &dec),
            renders(&w, &stable_models_naive(&v, g.n_atoms))
        );
    }

    #[test]
    fn parallel_groups_agree_with_sequential() {
        let (w, g) = ground(TWO_FIG2);
        let v = View::new(&g, CompId(2));
        let d = Decomposition::new(&v);
        assert!(d.groups().len() > 1);
        for threads in [1, 2, 4] {
            let par = enumerate_af_groups_parallel(&v, &d, threads, &Budget::unlimited(), None)
                .into_value();
            assert_eq!(
                renders(&w, &par),
                renders(&w, &enumerate_assumption_free_decomposed(&v, g.n_atoms)),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn tripped_budget_yields_prefix_of_least_model() {
        // Under any step budget the stratified partial result must be a
        // subset of the full least model (completed-prefix guarantee).
        let (_, g) = ground(TWO_FIG2);
        let v = View::new(&g, CompId(2));
        let full = least_model_stratified(&v);
        for steps in [1u64, 2, 4, 8, 16, 32, 64] {
            let b = Budget::with_steps(steps);
            match least_model_stratified_with(&v, &Decomposition::new(&v), &b) {
                Eval::Complete(m) => assert_eq!(m, full),
                Eval::Interrupted(Interrupted { partial, .. }) => {
                    assert!(partial.is_subset(&full), "steps={steps}");
                }
            }
            // And the monolithic engine honours the same budget contract.
            match least_model_monolithic_budgeted(&v, &Budget::with_steps(steps)) {
                Eval::Complete(m) => assert_eq!(m, full),
                Eval::Interrupted(Interrupted { partial, .. }) => {
                    assert!(partial.is_subset(&full), "steps={steps}");
                }
            }
        }
    }

    #[test]
    fn wavefront_agrees_with_stratified() {
        for src in [
            TWO_FIG2,
            "module c2 { bird(penguin). bird(pigeon). fly(X) :- bird(X).
                -ground_animal(X) :- bird(X). }
             module c1 < c2 { ground_animal(penguin). -fly(X) :- ground_animal(X). }",
            "a :- b. -a :- b. b.",
            "p. -p.",
            "module c2 { a. b. c. }
             module c1 < c2 { -a :- b, c. -b :- a. -b :- -b. }",
            "p :- q. q :- p. r :- p.",
        ] {
            let (_, g) = ground(src);
            for c in 0..g.order.len() {
                let v = View::new(&g, CompId(c as u32));
                let seq = least_model_stratified(&v);
                for threads in [1, 2, 4] {
                    assert_eq!(
                        least_model_wavefront(&v, threads, &Budget::unlimited())
                            .expect_complete("unlimited budget"),
                        seq,
                        "wavefront({threads}) vs stratified on {src} in component {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn tripped_wavefront_yields_subset_of_least_model() {
        // A budget-tripped wavefront run returns the union of completed
        // strata plus monotone prefixes of in-flight ones — always a
        // subset of the least model, at any thread count.
        let (_, g) = ground(TWO_FIG2);
        let v = View::new(&g, CompId(2));
        let full = least_model_stratified(&v);
        for threads in [2, 4] {
            for steps in [1u64, 2, 4, 8, 16, 32, 64] {
                let b = Budget::with_steps(steps);
                match least_model_wavefront(&v, threads, &b) {
                    Eval::Complete(m) => assert_eq!(m, full),
                    Eval::Interrupted(Interrupted { partial, .. }) => {
                        assert!(partial.is_subset(&full), "threads={threads} steps={steps}");
                    }
                }
            }
        }
    }

    #[test]
    fn decomposed_enumeration_partials_are_sound() {
        // Every entry of any budget-tripped partial result must be a
        // member of the unbudgeted enumeration (complete tuples only).
        let (w, g) = ground(TWO_FIG2);
        let v = View::new(&g, CompId(2));
        let full = renders(&w, &enumerate_assumption_free_decomposed(&v, g.n_atoms));
        for steps in [1u64, 8, 64, 256, 1024, 4096] {
            let b = Budget::with_steps(steps);
            let got = match enumerate_assumption_free_decomposed_budgeted(&v, g.n_atoms, &b, None) {
                Eval::Complete(ms) => ms,
                Eval::Interrupted(Interrupted { partial, .. }) => partial,
            };
            for m in renders(&w, &got) {
                assert!(full.contains(&m), "steps={steps}: {m} not in full set");
            }
        }
    }

    /// Differential harness for [`least_model_delta`]: grounds `before`
    /// and `after`, computes the touched atoms as the symmetric
    /// difference of the instance sets, and checks the delta result
    /// equals a from-scratch stratified run on every component.
    fn check_delta(before: &str, after: &str) {
        let mut w = World::new();
        let p0 = parse_program(&mut w, before).unwrap();
        let g0 = ground_exhaustive(&mut w, &p0, &GroundConfig::default()).unwrap();
        let p1 = parse_program(&mut w, after).unwrap();
        let g1 = ground_exhaustive(&mut w, &p1, &GroundConfig::default()).unwrap();
        let old_set: std::collections::HashSet<_> = g0.rules.iter().cloned().collect();
        let new_set: std::collections::HashSet<_> = g1.rules.iter().cloned().collect();
        let mut touched = Vec::new();
        for r in old_set.symmetric_difference(&new_set) {
            touched.push(r.head.atom().index());
            for &b in &r.body {
                touched.push(b.atom().index());
            }
        }
        for c in 0..g1.order.len() {
            let c = CompId(c as u32);
            let v0 = View::new(&g0, c);
            let old = least_model_stratified(&v0);
            let v1 = View::new(&g1, c);
            let d = Decomposition::new(&v1);
            let got = least_model_delta(&v1, &d, &old, &touched, &Budget::unlimited()).into_value();
            assert_eq!(
                got,
                least_model_stratified(&v1),
                "delta vs scratch: {before:?} -> {after:?} in {c:?}"
            );
        }
    }

    #[test]
    fn delta_recomputation_matches_scratch() {
        // Assert a fact that extends a chain.
        check_delta(
            "parent(a,b). anc(X,Y) :- parent(X,Y). anc(X,Y) :- parent(X,Z), anc(Z,Y).",
            "parent(a,b). anc(X,Y) :- parent(X,Y). anc(X,Y) :- parent(X,Z), anc(Z,Y). parent(b,c).",
        );
        // Retract: a derivation chain collapses.
        check_delta("b. a :- b. c :- a.", "a :- b. c :- a.");
        // Mutation flips an attack outcome in an ordered program.
        check_delta(
            "module c2 { a. }
             module c1 < c2 { b :- a. }",
            "module c2 { a. }
             module c1 < c2 { b :- a. -a. }",
        );
        // Unrelated stratum untouched (the copy path must carry it).
        check_delta("p. q :- p. x. y :- x.", "p. q :- p. x. y :- x. z :- y.");
        // No-op mutation (identical programs): everything clean.
        check_delta("a. b :- a.", "a. b :- a.");
    }

    #[test]
    fn delta_partial_is_subset_under_budget() {
        let mut w = World::new();
        let p = parse_program(&mut w, TWO_FIG2).unwrap();
        let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).unwrap();
        let v = View::new(&g, CompId(2));
        let full = least_model_stratified(&v);
        let d = Decomposition::new(&v);
        // Everything touched → everything dirty: worst case.
        let touched: Vec<usize> = (0..g.n_atoms).collect();
        for steps in [1u64, 4, 16, 64, 256] {
            match least_model_delta(
                &v,
                &d,
                &Interpretation::new(),
                &touched,
                &Budget::with_steps(steps),
            ) {
                Eval::Complete(m) => assert_eq!(m, full),
                Eval::Interrupted(Interrupted { partial, .. }) => {
                    assert!(partial.is_subset(&full), "steps={steps}");
                }
            }
        }
    }

    #[test]
    fn cached_stable_enumeration_matches_and_reuses() {
        let (w, g) = ground(
            "module c2 { a. b. c. x. y. z. }
             module c1 < c2 { -a :- b, c. -b :- a. -b :- -b.
                              -x :- y, z. -y :- x. -y :- -y. }",
        );
        let v = View::new(&g, CompId(1));
        let mut cache = FxHashMap::default();
        let first =
            stable_models_decomposed_cached(&v, g.n_atoms, &Budget::unlimited(), None, &mut cache)
                .into_value();
        assert_eq!(
            renders(&w, &first),
            renders(&w, &stable_models_decomposed(&v, g.n_atoms))
        );
        assert_eq!(cache.len(), 2, "one entry per group");
        // Second run must be answered from cache alone: 64 steps is one
        // ticker batch — enough for the final product only. Uncached,
        // the two per-group enumerations each pre-pay a batch and the
        // run trips with an empty result; with cache hits both are
        // skipped and the full set comes back Complete.
        let budget = Budget::with_steps(64);
        let again = stable_models_decomposed_cached(&v, g.n_atoms, &budget, None, &mut cache)
            .expect_complete("cache hits answer within one ticker batch");
        assert_eq!(renders(&w, &again), renders(&w, &first));
        let mut empty_cache = FxHashMap::default();
        let uncached = stable_models_decomposed_cached(
            &v,
            g.n_atoms,
            &Budget::with_steps(64),
            None,
            &mut empty_cache,
        );
        assert!(uncached.is_partial(), "64 steps cannot re-enumerate");
    }

    #[test]
    fn model_cap_truncates_product() {
        let (_, g) = ground(
            "module c2 { a. b. c. x. y. z. }
             module c1 < c2 { -a :- b, c. -b :- a. -b :- -b.
                              -x :- y, z. -y :- x. -y :- -y. }",
        );
        let v = View::new(&g, CompId(1));
        match stable_models_decomposed_budgeted(&v, g.n_atoms, &Budget::unlimited(), Some(2)) {
            Eval::Interrupted(Interrupted { reason, partial }) => {
                assert_eq!(reason, InterruptReason::ModelCap);
                assert_eq!(partial.len(), 2);
            }
            Eval::Complete(ms) => panic!("cap of 2 must interrupt, got {} models", ms.len()),
        }
    }
}
