//! Explanations: *why* is a literal in the least model, and *why not*.
//!
//! The paper pitches ordered logic programming as a knowledge-base
//! language (§1, §5); a knowledge base that cannot justify its answers
//! is of limited use. This module reconstructs, from a view and its
//! least model:
//!
//! * a **proof tree** for any derived literal — the applied,
//!   non-attacked rule that fired it, with sub-proofs for its body
//!   (acyclic by construction: justifying rules are chosen by
//!   derivation rank);
//! * a **refutation record** for any underived literal — the fate of
//!   every rule that could have derived it: *blocked* (with the
//!   blocking literal), *overruled* / *defeated* (with the active
//!   attacker), or *not applicable* (with the missing body literals).

use crate::fixpoint::{least_model, least_model_budgeted};
use crate::view::{LocalIdx, View};
use olp_core::{Budget, Eval, FxHashMap, GLit, Interpretation, World};
use std::fmt::Write as _;

/// A proof tree for a derived literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proof {
    /// The literal proved.
    pub lit: GLit,
    /// The rule (local index in the view) that derives it.
    pub rule: LocalIdx,
    /// Sub-proofs, one per body literal.
    pub premises: Vec<Proof>,
}

/// Why a rule that could derive the queried literal did not count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fate {
    /// Some body literal's complement is in the model.
    Blocked {
        /// The body literal whose complement holds.
        on: GLit,
    },
    /// A non-blocked rule in a strictly lower component contradicts it.
    Overruled {
        /// The active overruler (local index).
        by: LocalIdx,
    },
    /// A non-blocked rule in the same or an incomparable component
    /// contradicts it.
    Defeated {
        /// The active defeater (local index).
        by: LocalIdx,
    },
    /// The body is not satisfied (and not refuted).
    NotApplicable {
        /// Body literals not in the model.
        missing: Vec<GLit>,
    },
}

/// The answer to an explanation query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Why {
    /// The literal is derived; here is a proof.
    Proved(Proof),
    /// The literal is not derived; here is what happened to every rule
    /// with this head (empty = no rules at all).
    NotProved(Vec<(LocalIdx, Fate)>),
}

/// Explains `lit` against the **least model** of the view (computed
/// internally; use [`explain_in`] to reuse a model).
pub fn explain(view: &View, lit: GLit) -> Why {
    let m = least_model(view);
    explain_in(view, &m, lit)
}

/// [`explain`] under a [`Budget`]: the least-model computation may be
/// interrupted, in which case the explanation is built against the
/// partial model.
///
/// **Anytime guarantee:** a partial worklist prefix is closed under its
/// own firings (every fired rule's conditions are monotone in the
/// growing interpretation), so a `Proved` tree built on a partial model
/// is a *genuine* proof, valid in the full least model too. A
/// `NotProved` record on a partial result is provisional: it reports
/// the rule fates *relative to the explored prefix* — the literal may
/// still be derived by the unexplored remainder.
pub fn explain_budgeted(view: &View, lit: GLit, budget: &Budget) -> Eval<Why> {
    least_model_budgeted(view, budget).map(|m| explain_in(view, &m, lit))
}

/// Explains `lit` against a precomputed least model `m` of `view`.
///
/// The proof tree is built from derivation ranks, so it is acyclic even
/// for mutually recursive rules. `m` must be the least model — for
/// other models "applied" rules may be circularly supported and no
/// well-founded tree exists.
pub fn explain_in(view: &View, m: &Interpretation, lit: GLit) -> Why {
    if m.holds(lit) {
        let ranks = derivation_ranks(view, m);
        Why::Proved(build_proof(view, m, &ranks, lit))
    } else {
        let fates = view
            .rules_with_head(lit)
            .iter()
            .map(|&li| (li, fate_of(view, m, li)))
            .collect();
        Why::NotProved(fates)
    }
}

/// Ranks every derived literal by the `T`-stage at which an applied,
/// non-attacked rule first fires it.
fn derivation_ranks(view: &View, m: &Interpretation) -> FxHashMap<GLit, u32> {
    let mut rank: FxHashMap<GLit, u32> = FxHashMap::default();
    let mut stage = 0u32;
    loop {
        // Stage-synchronous: additions of this pass only become visible
        // in the next pass, so body ranks are strictly smaller than head
        // ranks and proof trees are well-founded.
        let mut added = Vec::new();
        for (li, r) in view.rules() {
            if rank.contains_key(&r.head) || !m.holds(r.head) {
                continue;
            }
            let usable = view.applied(li, m)
                && !view.overruled(li, m)
                && !view.defeated(li, m)
                && r.body.iter().all(|b| rank.contains_key(b));
            if usable {
                added.push(r.head);
            }
        }
        if added.is_empty() {
            return rank;
        }
        for h in added {
            rank.insert(h, stage);
        }
        stage += 1;
    }
}

fn build_proof(view: &View, m: &Interpretation, ranks: &FxHashMap<GLit, u32>, lit: GLit) -> Proof {
    let my_rank = *ranks
        .get(&lit)
        .expect("literal in the least model has a derivation rank");
    // Pick a firing rule whose body literals all have strictly smaller
    // ranks (the rule that assigned the rank qualifies).
    let rule = view
        .rules_with_head(lit)
        .iter()
        .copied()
        .find(|&li| {
            view.applied(li, m)
                && !view.overruled(li, m)
                && !view.defeated(li, m)
                && view
                    .rule(li)
                    .body
                    .iter()
                    .all(|b| ranks.get(b).is_some_and(|&rb| rb < my_rank))
        })
        .expect("a ranked literal has a rank-decreasing rule");
    let premises = view
        .rule(rule)
        .body
        .iter()
        .map(|&b| build_proof(view, m, ranks, b))
        .collect();
    Proof {
        lit,
        rule,
        premises,
    }
}

fn fate_of(view: &View, m: &Interpretation, li: LocalIdx) -> Fate {
    // Blocking is reported first (strongest evidence), then attacks,
    // then inapplicability.
    if let Some(&on) = view.rule(li).body.iter().find(|b| m.holds(b.complement())) {
        return Fate::Blocked { on };
    }
    if let Some(&by) = view.overrulers(li).iter().find(|&&a| !view.blocked(a, m)) {
        return Fate::Overruled { by };
    }
    if let Some(&by) = view.defeaters(li).iter().find(|&&a| !view.blocked(a, m)) {
        return Fate::Defeated { by };
    }
    Fate::NotApplicable {
        missing: view
            .rule(li)
            .body
            .iter()
            .copied()
            .filter(|&b| !m.holds(b))
            .collect(),
    }
}

/// Renders a [`Why`] as indented human-readable text.
pub fn render_why(world: &World, view: &View, why: &Why) -> String {
    let mut out = String::new();
    match why {
        Why::Proved(p) => render_proof(world, view, p, 0, &mut out),
        Why::NotProved(fates) => {
            if fates.is_empty() {
                out.push_str("not derivable: no rules with this head\n");
            } else {
                out.push_str("not derivable:\n");
                for (li, fate) in fates {
                    let rule = view.gp.rule_str(world, view_global(view, *li));
                    match fate {
                        Fate::Blocked { on } => {
                            let _ = writeln!(
                                out,
                                "  rule {rule} — blocked: {} holds",
                                world.glit_str(on.complement())
                            );
                        }
                        Fate::Overruled { by } => {
                            let _ = writeln!(
                                out,
                                "  rule {rule} — overruled by {}",
                                view.gp.rule_str(world, view_global(view, *by))
                            );
                        }
                        Fate::Defeated { by } => {
                            let _ = writeln!(
                                out,
                                "  rule {rule} — defeated by {}",
                                view.gp.rule_str(world, view_global(view, *by))
                            );
                        }
                        Fate::NotApplicable { missing } => {
                            let ms: Vec<String> =
                                missing.iter().map(|&l| world.glit_str(l)).collect();
                            let _ = writeln!(
                                out,
                                "  rule {rule} — not applicable: missing {}",
                                ms.join(", ")
                            );
                        }
                    }
                }
            }
        }
    }
    out
}

fn render_proof(world: &World, view: &View, p: &Proof, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let _ = writeln!(
        out,
        "{indent}{} — by {}",
        world.glit_str(p.lit),
        view.gp.rule_str(world, view_global(view, p.rule))
    );
    for prem in &p.premises {
        render_proof(world, view, prem, depth + 1, out);
    }
}

/// Maps a view-local rule index back to the global rule index (for
/// rendering).
fn view_global(view: &View, li: LocalIdx) -> u32 {
    view.global_index(li)
}

#[cfg(test)]
mod tests {
    use super::*;
    use olp_core::{CompId, World};
    use olp_ground::{ground_exhaustive, GroundConfig, GroundProgram};
    use olp_parser::{parse_ground_literal, parse_program};

    fn ground(src: &str) -> (World, GroundProgram) {
        let mut w = World::new();
        let p = parse_program(&mut w, src).unwrap();
        let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).unwrap();
        (w, g)
    }

    const FIG1: &str = "module c2 {
        bird(penguin). bird(pigeon).
        fly(X) :- bird(X).
        -ground_animal(X) :- bird(X).
     }
     module c1 < c2 {
        ground_animal(penguin).
        -fly(X) :- ground_animal(X).
     }";

    #[test]
    fn why_penguin_does_not_fly() {
        let (mut w, g) = ground(FIG1);
        let v = View::new(&g, CompId(1));
        let no_fly = parse_ground_literal(&mut w, "-fly(penguin)").unwrap();
        let why = explain(&v, no_fly);
        let Why::Proved(p) = &why else {
            panic!("-fly(penguin) is derived")
        };
        assert_eq!(p.lit, no_fly);
        assert_eq!(p.premises.len(), 1, "via ground_animal(penguin)");
        assert!(
            p.premises[0].premises.is_empty(),
            "a fact needs no premises"
        );
        let text = render_why(&w, &v, &why);
        assert!(text.contains("-fly(penguin)"));
        assert!(text.contains("ground_animal(penguin)"));
    }

    #[test]
    fn why_not_fly_penguin_reports_overruling() {
        let (mut w, g) = ground(FIG1);
        let v = View::new(&g, CompId(1));
        let fly = parse_ground_literal(&mut w, "fly(penguin)").unwrap();
        let why = explain(&v, fly);
        let Why::NotProved(fates) = &why else {
            panic!("fly(penguin) is not derived")
        };
        assert_eq!(fates.len(), 1);
        assert!(matches!(fates[0].1, Fate::Overruled { .. }));
        let text = render_why(&w, &v, &why);
        assert!(text.contains("overruled by"));
        assert!(text.contains("-fly(penguin)"));
    }

    #[test]
    fn why_not_with_no_rules() {
        let (mut w, g) = ground("a.");
        let v = View::new(&g, CompId(0));
        let na = parse_ground_literal(&mut w, "-a").unwrap();
        let why = explain(&v, na);
        assert_eq!(why, Why::NotProved(vec![]));
        assert!(render_why(&w, &v, &why).contains("no rules"));
    }

    #[test]
    fn why_not_reports_defeat_and_missing() {
        let (mut w, g) = ground("p. -p. q :- r.");
        let v = View::new(&g, CompId(0));
        let p = parse_ground_literal(&mut w, "p").unwrap();
        let Why::NotProved(fates) = explain(&v, p) else {
            panic!("p is defeated")
        };
        assert!(matches!(fates[0].1, Fate::Defeated { .. }));
        let q = parse_ground_literal(&mut w, "q").unwrap();
        let Why::NotProved(fates_q) = explain(&v, q) else {
            panic!("q is underivable")
        };
        assert!(matches!(&fates_q[0].1, Fate::NotApplicable { missing } if missing.len() == 1));
    }

    #[test]
    fn why_not_reports_blocking() {
        // -q holds, so p :- q is blocked.
        let (mut w, g) = ground("module c2 { p :- q. } module c1 < c2 { -q. }");
        let v = View::new(&g, CompId(1));
        let p = parse_ground_literal(&mut w, "p").unwrap();
        let Why::NotProved(fates) = explain(&v, p) else {
            panic!("p blocked")
        };
        assert!(matches!(fates[0].1, Fate::Blocked { .. }));
    }

    #[test]
    fn recursive_proofs_are_well_founded() {
        let (mut w, g) = ground(
            "parent(a,b). parent(b,c).
             anc(X,Y) :- parent(X,Y).
             anc(X,Y) :- parent(X,Z), anc(Z,Y).",
        );
        let v = View::new(&g, CompId(0));
        let anc = parse_ground_literal(&mut w, "anc(a,c)").unwrap();
        let Why::Proved(proof) = explain(&v, anc) else {
            panic!("anc(a,c) derivable")
        };
        // Depth is finite and premises ground out in facts.
        fn max_depth(p: &Proof) -> usize {
            1 + p.premises.iter().map(max_depth).max().unwrap_or(0)
        }
        assert!(max_depth(&proof) <= 3);
    }

    #[test]
    fn every_least_model_literal_is_explainable() {
        for src in [
            FIG1,
            "a :- b. -a :- b. b.",
            "module c2 { x. y. } module c1 < c2 { -x :- y. z :- -x. }",
        ] {
            let (_, g) = ground(src);
            for ci in 0..g.order.len() {
                let v = View::new(&g, CompId(ci as u32));
                let m = least_model(&v);
                for lit in m.literals() {
                    assert!(
                        matches!(explain_in(&v, &m, lit), Why::Proved(_)),
                        "{src}: literal unexplainable"
                    );
                }
            }
        }
    }
}
