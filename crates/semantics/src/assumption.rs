//! Assumption sets and assumption-free models (Definitions 6–8,
//! Theorem 1).
//!
//! A non-empty `X ⊆ I` is an **assumption set** w.r.t. `I` when every
//! rule deriving a member of `X` is non-applicable, overruled, defeated,
//! or circularly depends on `X` itself. A model with no assumption set
//! contains only literals genuinely inferable from the rules. This
//! generalises the *unfounded sets* of Van Gelder–Ross–Schlipf and the
//! assumption sets of Saccà–Zaniolo, with overruling/defeating as extra
//! escape hatches.
//!
//! Two equivalent checks are implemented (and property-tested against
//! each other):
//!
//! * [`greatest_assumption_set`] — greatest-fixpoint computation by
//!   iterated removal, works on any interpretation;
//! * [`is_assumption_free`] via Theorem 1(a): a **model** `M` is
//!   assumption-free iff `T_{C^M}^∞(∅) = M`, where `C^M` (the *enabled
//!   version*, Def. 8) keeps exactly the applied rules and `T` is the
//!   classical immediate-consequence operator.

use crate::view::View;
use olp_core::Interpretation;
use olp_core::{FxHashMap, FxHashSet, GLit};

/// The enabled version `C^M`: the applied, **unattacked** rules of the
/// view w.r.t. `m`, as `(head, body)` pairs (Definition 8,
/// reconstructed).
///
/// The paper's Def. 8 says "all applied rules", but its Theorem 1(a)
/// proof sketch asserts that "no rule in `C^M` is … overruled or
/// defeated" — which is false for applied rules in general (an applied
/// fact can be defeated by a same-component contradictor whose own
/// firing is suppressed; minimal counterexample pinned in the tests
/// below). Keeping attacked rules breaks the theorem: `T_{C^M}` can
/// rebuild `M` through a defeated rule that Definition 6 rightly
/// refuses to count as support. Excluding overruled/defeated rules is
/// the minimal reading under which Theorem 1(a) is provable — and we
/// prove it mechanically: `thm1a_equivalence_of_af_checks` holds over
/// thousands of random programs with this definition and fails without
/// it.
pub fn enabled_version(view: &View, m: &Interpretation) -> Vec<(GLit, Box<[GLit]>)> {
    view.rules()
        .filter(|&(li, _)| view.applied(li, m) && !view.overruled(li, m) && !view.defeated(li, m))
        .map(|(_, r)| (r.head, r.body.clone()))
        .collect()
}

/// Least fixpoint of the immediate-consequence operator `T` over a set
/// of ground rules (no statuses — classical bottom-up closure).
pub fn t_fixpoint(rules: &[(GLit, Box<[GLit]>)]) -> Interpretation {
    let mut unsat: Vec<u32> = rules.iter().map(|(_, b)| b.len() as u32).collect();
    let mut by_body: FxHashMap<GLit, Vec<u32>> = FxHashMap::default();
    for (ri, (_, body)) in rules.iter().enumerate() {
        for &b in body {
            by_body.entry(b).or_default().push(ri as u32);
        }
    }
    let mut i = Interpretation::new();
    let mut queue: Vec<GLit> = Vec::new();
    for (ri, (head, _)) in rules.iter().enumerate() {
        if unsat[ri] == 0
            && i.insert(*head)
                .expect("enabled rules have consistent heads")
        {
            queue.push(*head);
        }
    }
    while let Some(l) = queue.pop() {
        if let Some(deps) = by_body.get(&l) {
            for &ri in deps {
                unsat[ri as usize] -= 1;
                if unsat[ri as usize] == 0 {
                    let head = rules[ri as usize].0;
                    if i.insert(head).expect("enabled rules have consistent heads") {
                        queue.push(head);
                    }
                }
            }
        }
    }
    i
}

/// Theorem 1(a): a **model** `m` is assumption-free iff the `T` fixpoint
/// of its enabled version equals `m`.
pub fn is_assumption_free(view: &View, m: &Interpretation) -> bool {
    let enabled = enabled_version(view, m);
    t_fixpoint(&enabled) == *m
}

/// The greatest assumption set `X ⊆ i` w.r.t. `i` (Definition 6),
/// computed by iterated removal: drop `A` from `X` while some rule with
/// head `A` is applicable, not overruled, not defeated, and has no body
/// literal in `X`.
///
/// Returns the literals of the greatest assumption set (empty iff `i`
/// contains no assumption set at all — the union of assumption sets is
/// an assumption set, so greatest = union).
pub fn greatest_assumption_set(view: &View, i: &Interpretation) -> Vec<GLit> {
    let mut x: FxHashSet<GLit> = i.literals().collect();
    loop {
        let mut removed = false;
        let members: Vec<GLit> = x.iter().copied().collect();
        for a in members {
            let supported = view.rules_with_head(a).iter().any(|&li| {
                view.applicable(li, i)
                    && !view.overruled(li, i)
                    && !view.defeated(li, i)
                    && view.rule(li).body.iter().all(|b| !x.contains(b))
            });
            if supported {
                x.remove(&a);
                removed = true;
            }
        }
        if !removed {
            let mut out: Vec<GLit> = x.into_iter().collect();
            out.sort_unstable();
            return out;
        }
    }
}

/// Whether `i` contains **no** assumption set — the direct Definition 7
/// check. For models this agrees with [`is_assumption_free`]
/// (Theorem 1a); for non-models only this direct check is meaningful.
pub fn has_no_assumption_set(view: &View, i: &Interpretation) -> bool {
    greatest_assumption_set(view, i).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixpoint::least_model;
    use crate::model::is_model;
    use olp_core::{CompId, World};
    use olp_ground::{ground_exhaustive, GroundConfig, GroundProgram};
    use olp_parser::{parse_ground_literal, parse_program};

    fn ground(src: &str) -> (World, GroundProgram) {
        let mut w = World::new();
        let p = parse_program(&mut w, src).unwrap();
        let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).unwrap();
        (w, g)
    }

    fn interp(w: &mut World, lits: &[&str]) -> Interpretation {
        Interpretation::from_literals(lits.iter().map(|s| parse_ground_literal(w, s).unwrap()))
            .unwrap()
    }

    #[test]
    fn example4_p4_only_empty_model_is_assumption_free() {
        // P4 = { a :- b. }: the empty set is the only assumption-free
        // model; {-a, -b} is a model but NOT assumption-free.
        let (mut w, g) = ground("a :- b.");
        let v = View::new(&g, CompId(0));
        let empty = Interpretation::new();
        assert!(is_model(&v, &empty, g.n_atoms));
        assert!(is_assumption_free(&v, &empty));
        assert!(has_no_assumption_set(&v, &empty));

        let nn = interp(&mut w, &["-a", "-b"]);
        assert!(is_model(&v, &nn, g.n_atoms));
        assert!(!is_assumption_free(&v, &nn));
        let gas = greatest_assumption_set(&v, &nn);
        assert_eq!(gas.len(), 2, "both -a and -b are assumptions");
    }

    #[test]
    fn example4_with_cwa_component_flips() {
        // Adding C2 = { -a. -b. } above C1 makes {-a,-b} assumption-free
        // (the CWA facts derive the negative literals).
        let (mut w, g) = ground("module c2 { -a. -b. } module c1 < c2 { a :- b. }");
        let v = View::new(&g, CompId(1));
        let nn = interp(&mut w, &["-a", "-b"]);
        assert!(is_model(&v, &nn, g.n_atoms));
        assert!(is_assumption_free(&v, &nn));
        assert!(greatest_assumption_set(&v, &nn).is_empty());
    }

    #[test]
    fn least_model_is_assumption_free_everywhere() {
        // Theorem 1(b) spot-check.
        for src in [
            "module c2 { bird(penguin). bird(pigeon). fly(X) :- bird(X).
                -ground_animal(X) :- bird(X). }
             module c1 < c2 { ground_animal(penguin). -fly(X) :- ground_animal(X). }",
            "a :- b. -a :- b.",
            "module c3 { rich(mimmo). -poor(X) :- rich(X). }
             module c2 { poor(mimmo). -rich(X) :- poor(X). }
             module c1 < c2, c3 { free_ticket(X) :- poor(X). }",
        ] {
            let (_, g) = ground(src);
            for c in 0..g.order.len() {
                let v = View::new(&g, CompId(c as u32));
                let m = least_model(&v);
                assert!(is_assumption_free(&v, &m));
                assert!(has_no_assumption_set(&v, &m));
            }
        }
    }

    #[test]
    fn circular_support_is_an_assumption() {
        // p :- q. q :- p. — {p, q} is a model-ish candidate whose
        // members only support each other: an assumption set.
        let (mut w, g) = ground("p :- q. q :- p.");
        let v = View::new(&g, CompId(0));
        let pq = interp(&mut w, &["p", "q"]);
        let gas = greatest_assumption_set(&v, &pq);
        assert_eq!(gas.len(), 2);
        assert!(is_model(&v, &pq, g.n_atoms));
        assert!(!is_assumption_free(&v, &pq));
    }

    #[test]
    fn t_fixpoint_ignores_statuses() {
        // The enabled version contains only applied rules, so T just
        // chases bodies.
        let (mut w, g) = ground("a. b :- a. c :- b.");
        let v = View::new(&g, CompId(0));
        let m = interp(&mut w, &["a", "b", "c"]);
        let enabled = enabled_version(&v, &m);
        assert_eq!(enabled.len(), 3);
        let t = t_fixpoint(&enabled);
        assert_eq!(t, m);
    }

    #[test]
    fn thm1a_needs_unattacked_enabled_rules() {
        // The counterexample that forced the Def. 8 reconstruction
        // (found by property-test soaking): in c0's view, M = {p3} is a
        // model; its only non-circular support is the c1 fact `p3.`,
        // which is *defeated* by the (suppressed but non-blocked)
        // same-component rule `-p3 :- p0`. Def. 6 says {p3} is an
        // assumption set; with attacked rules excluded from C^M, the
        // T-fixpoint check agrees.
        let (mut w, g) = ground(
            "module c0 < c1 { p0 :- p0, p1. p3 :- p3. p1 :- p0. }
             module c1 { p3. -p1. p1 :- -p0. -p3 :- p0. }",
        );
        let v = View::new(&g, CompId(0));
        let m = interp(&mut w, &["p3"]);
        assert!(is_model(&v, &m, g.n_atoms));
        assert!(
            !has_no_assumption_set(&v, &m),
            "Def. 6: {{p3}} is an assumption set"
        );
        assert!(!is_assumption_free(&v, &m), "Thm. 1a must agree");
        assert_eq!(
            greatest_assumption_set(&v, &m).len(),
            1,
            "exactly p3 is unsupported"
        );
    }

    #[test]
    fn example5_assumption_free_but_not_stable_candidate() {
        // P5: {c} is assumption-free (but not maximal).
        let (mut w, g) = ground(
            "module c2 { a. b. c. }
             module c1 < c2 { -a :- b, c. -b :- a. -b :- -b. }",
        );
        let v = View::new(&g, CompId(1));
        let just_c = interp(&mut w, &["c"]);
        assert!(is_model(&v, &just_c, g.n_atoms));
        assert!(is_assumption_free(&v, &just_c));
        // And both claimed stable models are assumption-free models.
        let m1 = interp(&mut w, &["a", "-b", "c"]);
        assert!(is_model(&v, &m1, g.n_atoms), "m1 model");
        assert!(is_assumption_free(&v, &m1), "m1 af");
        let m2 = interp(&mut w, &["-a", "b", "c"]);
        assert!(is_model(&v, &m2, g.n_atoms), "m2 model");
        assert!(is_assumption_free(&v, &m2), "m2 af");
    }
}
