//! # olp-semantics — the declarative semantics of ordered logic programs
//!
//! Implements §2 of *"Extending Logic Programming"* (Laenens, Saccà &
//! Vermeir, SIGMOD 1990) over the ground programs produced by
//! [`olp_ground`]:
//!
//! * [`Interpretation`] — consistent 3-valued assignments (`B_P ∪ ¬B_P`);
//! * [`View`] — a compiled component view `ground(C*)` with the five
//!   rule statuses of Definition 2 (applicable / applied / blocked /
//!   overruled / defeated);
//! * [`least_model`] — the least fixpoint of the ordered immediate
//!   transformation `V_{P,C}` (Def. 4, Lemma 1, Prop. 1, Thm. 1b): the
//!   least model, intersection of all models, assumption-free;
//! * [`is_model`] — Definition 3;
//! * [`greatest_assumption_set`] / [`is_assumption_free`] —
//!   Definitions 6–8 and Theorem 1a;
//! * [`stable_models`] and friends — Definition 9 (maximal
//!   assumption-free models), exhaustive models (Def. 5b, Prop. 2),
//!   total models (Def. 5a);
//! * [`Decomposition`] — SCC condensation of the dependency graph:
//!   stratified fixpoints and product-form enumeration over independent
//!   rule groups (on by default in [`least_model`] / [`stable_models`]).
//!
//! ## Quick example (the paper's Fig. 1)
//!
//! ```
//! use olp_core::{CompId, World};
//! use olp_parser::{parse_ground_literal, parse_program};
//! use olp_ground::{ground_exhaustive, GroundConfig};
//! use olp_semantics::{least_model, View};
//!
//! let mut world = World::new();
//! let prog = parse_program(&mut world, "
//!     module c2 {
//!         bird(penguin). bird(pigeon).
//!         fly(X) :- bird(X).
//!         -ground_animal(X) :- bird(X).
//!     }
//!     module c1 < c2 {
//!         ground_animal(penguin).
//!         -fly(X) :- ground_animal(X).
//!     }").unwrap();
//! let ground = ground_exhaustive(&mut world, &prog, &GroundConfig::default()).unwrap();
//!
//! // In the specific component c1 the penguin does not fly…
//! let c1 = prog.component_by_name(world.syms.get("c1").unwrap()).unwrap();
//! let m1 = least_model(&View::new(&ground, c1));
//! let no_fly = parse_ground_literal(&mut world, "-fly(penguin)").unwrap();
//! assert!(m1.holds(no_fly));
//!
//! // …while in the general component c2 it does (inheritance is
//! // one-way: exceptions live below).
//! let c2 = prog.component_by_name(world.syms.get("c2").unwrap()).unwrap();
//! let m2 = least_model(&View::new(&ground, c2));
//! assert!(m2.holds(no_fly.complement()));
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::must_use_candidate,
    clippy::missing_panics_doc,
    clippy::missing_errors_doc,
    clippy::module_name_repetitions,
    clippy::cast_possible_truncation,
    clippy::doc_markdown,
    clippy::too_many_lines,
    clippy::similar_names,
    // Fixpoint/join code is written in the paper's notation: single
    // letters (rule r, literal l, component c) are the clearest names.
    clippy::many_single_char_names,
    // Local helper items next to their single use site read better
    // than hoisting them above unrelated setup code.
    clippy::items_after_statements
)]

pub mod assumption;
pub mod decomp;
pub mod explain;
pub mod fixpoint;
pub mod flat_eval;
pub mod model;
pub mod prove;
pub mod skeptical;
pub mod stable;
pub mod stable_solver;
pub mod view;

pub use assumption::{
    enabled_version, greatest_assumption_set, has_no_assumption_set, is_assumption_free, t_fixpoint,
};
pub use decomp::{
    enumerate_assumption_free_decomposed, enumerate_assumption_free_decomposed_budgeted,
    least_model_delta, least_model_stratified, least_model_stratified_budgeted,
    least_model_stratified_with, least_model_wavefront, least_model_wavefront_with,
    stable_models_decomposed, stable_models_decomposed_budgeted, stable_models_decomposed_cached,
    Decomposition,
};
pub use explain::{explain, explain_budgeted, explain_in, render_why, Fate, Proof, Why};
pub use fixpoint::{
    least_model, least_model_budgeted, least_model_monolithic, least_model_monolithic_budgeted,
    least_model_naive, least_model_naive_budgeted, least_model_parallel,
    least_model_parallel_budgeted, least_model_restricted, least_model_restricted_budgeted, v_step,
};
pub use flat_eval::{
    flatten, least_model_delta_flat, least_model_flat, least_model_flat_budgeted,
    least_model_flat_definite, least_model_morsel, least_model_morsel_forced, MorselCfg,
};
pub use model::{check_model, is_model, ModelViolation};
pub use olp_core::{
    Budget, Eval, Inconsistency, Interpretation, InterruptReason, Interrupted, Truth,
};
pub use prove::{prove, prove_budgeted, relevance_cone, relevance_cone_budgeted};
pub use skeptical::{
    credulous_consequences, credulous_consequences_budgeted, skeptical_consequences,
    skeptical_consequences_budgeted,
};
pub use stable::{
    derivability_closure, enumerate_assumption_free, enumerate_assumption_free_budgeted,
    enumerate_models, extend_to_exhaustive, has_total_model, is_exhaustive, maximal_only,
    maximal_only_budgeted, stable_models, stable_models_budgeted,
    stable_models_monolithic_budgeted, stable_models_naive,
};
pub use stable_solver::{
    enumerate_assumption_free_parallel, enumerate_assumption_free_parallel_budgeted,
    enumerate_assumption_free_propagating, enumerate_assumption_free_propagating_budgeted,
    stable_models_parallel, stable_models_parallel_budgeted, stable_models_propagating,
};
pub use view::{LocalIdx, View, ViewStats};

/// Intersection of a non-empty family of interpretations, as literal
/// sets (the empty family yields the empty interpretation).
pub fn interp_intersection(ms: &[Interpretation]) -> Interpretation {
    let mut out = match ms.first() {
        Some(m) => m.clone(),
        None => return Interpretation::new(),
    };
    for m in &ms[1..] {
        let drop: Vec<olp_core::GLit> = out.literals().filter(|&l| !m.holds(l)).collect();
        for l in drop {
            out.remove(l);
        }
    }
    out
}
