//! A goal-directed proof procedure for the least model (§5 mentions the
//! proof procedure of \[LV\]; this is an independent reconstruction).
//!
//! Top-down tabling interacts badly with the attack statuses (a rule's
//! firing depends positively on the derivability of its attackers'
//! *blockers*), so instead of SLD-style resolution the procedure
//! extracts the **relevance cone** of the query and runs the exact
//! worklist fixpoint on that fragment:
//!
//! * a queried literal pulls in every rule with that head;
//! * an included rule pulls in (i) its body literals (their
//!   derivations), (ii) the *complements* of its body literals (their
//!   derivations decide blocking), and (iii) its potential overrulers
//!   and defeaters — recursively.
//!
//! Everything outside the cone provably cannot influence the query:
//! influence propagates only through derivation (head→body), blocking
//! (body complement), and attack (head complement) edges, all of which
//! are closed over. Agreement with the global least model is
//! property-tested in the crate tests and `tests/theorems.rs`.

use crate::fixpoint::least_model_restricted_budgeted;
use crate::view::{LocalIdx, View};
use olp_core::{Budget, Eval, FxHashSet, GLit, InterruptReason, Interrupted};

/// The set of view-local rule indices that can influence `query`.
pub fn relevance_cone(view: &View, query: GLit) -> Vec<LocalIdx> {
    relevance_cone_budgeted(view, query, &Budget::unlimited())
        .expect("unlimited budget cannot interrupt")
}

/// [`relevance_cone`] under a [`Budget`]. The cone is all-or-nothing
/// (a truncated cone would not be closed under influence edges), so an
/// interruption yields `Err` rather than a partial cone.
pub fn relevance_cone_budgeted(
    view: &View,
    query: GLit,
    budget: &Budget,
) -> Result<Vec<LocalIdx>, InterruptReason> {
    let mut lits: FxHashSet<GLit> = FxHashSet::default();
    let mut rules: FxHashSet<LocalIdx> = FxHashSet::default();
    let mut lit_stack = vec![query];
    let mut rule_stack: Vec<LocalIdx> = Vec::new();

    while !lit_stack.is_empty() || !rule_stack.is_empty() {
        while let Some(l) = lit_stack.pop() {
            budget.tick()?;
            if !lits.insert(l) {
                continue;
            }
            for &li in view.rules_with_head(l) {
                rule_stack.push(li);
            }
        }
        while let Some(li) = rule_stack.pop() {
            budget.tick()?;
            if !rules.insert(li) {
                continue;
            }
            for &b in &view.rule(li).body {
                lit_stack.push(b);
                lit_stack.push(b.complement());
            }
            for &a in view.overrulers(li) {
                rule_stack.push(a);
            }
            for &a in view.defeaters(li) {
                rule_stack.push(a);
            }
            if !lit_stack.is_empty() {
                break; // drain literals first to keep the sets tight
            }
        }
    }
    let mut out: Vec<LocalIdx> = rules.into_iter().collect();
    out.sort_unstable();
    Ok(out)
}

/// Whether `query` is in the least model of the view, computed
/// goal-directedly over its relevance cone.
pub fn prove(view: &View, query: GLit) -> bool {
    prove_budgeted(view, query, &Budget::unlimited()).into_value()
}

/// [`prove`] under a [`Budget`].
///
/// **Anytime guarantee:** the partial answer is a *sound
/// under-approximation* — a partial `true` means the literal really is
/// in the least model (the restricted fixpoint's partial result is a
/// subset of its least fixpoint); a partial `false` means "not proven
/// within budget", never "disproven".
pub fn prove_budgeted(view: &View, query: GLit, budget: &Budget) -> Eval<bool> {
    let cone = match relevance_cone_budgeted(view, query, budget) {
        Ok(cone) => cone,
        // No fixpoint was run, so nothing is proven yet.
        Err(reason) => {
            return Eval::Interrupted(Interrupted {
                reason,
                partial: false,
            })
        }
    };
    let mut mask = vec![false; view.len()];
    for li in &cone {
        mask[*li as usize] = true;
    }
    least_model_restricted_budgeted(view, &mask, budget).map(|m| m.holds(query))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixpoint::least_model;
    use olp_core::{AtomId, CompId, Sign, World};
    use olp_ground::{ground_exhaustive, GroundConfig, GroundProgram};
    use olp_parser::{parse_ground_literal, parse_program};

    fn ground(src: &str) -> (World, GroundProgram) {
        let mut w = World::new();
        let p = parse_program(&mut w, src).unwrap();
        let g = ground_exhaustive(&mut w, &p, &GroundConfig::default()).unwrap();
        (w, g)
    }

    #[test]
    fn prove_matches_least_model_on_fig1() {
        let (_, g) = ground(
            "module c2 { bird(penguin). bird(pigeon). fly(X) :- bird(X).
                -ground_animal(X) :- bird(X). }
             module c1 < c2 { ground_animal(penguin). -fly(X) :- ground_animal(X). }",
        );
        for ci in 0..2 {
            let v = View::new(&g, CompId(ci));
            let m = least_model(&v);
            for atom in 0..g.n_atoms as u32 {
                for sign in [Sign::Pos, Sign::Neg] {
                    let q = GLit::new(sign, AtomId(atom));
                    assert_eq!(prove(&v, q), m.holds(q));
                }
            }
        }
    }

    #[test]
    fn cone_is_smaller_than_program() {
        // Two disconnected islands: querying one must not touch the
        // other.
        let (mut w, g) = ground(
            "a :- b. b.
             x :- y. y. -x :- z. z :- y.",
        );
        let v = View::new(&g, CompId(0));
        let a = parse_ground_literal(&mut w, "a").unwrap();
        let cone = relevance_cone(&v, a);
        assert_eq!(cone.len(), 2, "only `a :- b` and `b.`");
        assert!(prove(&v, a));
    }

    #[test]
    fn cone_includes_attackers_and_blockers() {
        // Proving `a` requires knowing that its attacker `-a :- b` is
        // blocked, which requires deriving `-b`, which has its own rule.
        let (mut w, g) = ground(
            "module c2 { a. b :- c. }
             module c1 < c2 { -a :- b. -b. }",
        );
        let c1 = CompId(1);
        let v = View::new(&g, c1);
        let a = parse_ground_literal(&mut w, "a").unwrap();
        let cone = relevance_cone(&v, a);
        // a., -a :- b, -b., b :- c (deriving b decides the attacker's
        // applicability — included via the body complement closure).
        assert_eq!(cone.len(), 4);
        assert!(prove(&v, a), "-b blocks the attacker, a fires");
    }

    #[test]
    fn attack_chains_are_followed() {
        // c2: p. — attacked from c1 by -p :- q; q derivable unless its
        // own attacker fires…
        let (mut w, g) = ground(
            "module c2 { p. q. }
             module c1 < c2 { -p :- q. }",
        );
        let v = View::new(&g, CompId(1));
        let p = parse_ground_literal(&mut w, "p").unwrap();
        // q is derivable, -p :- q is never blocked (no -q rules), so it
        // permanently overrules `p.`.
        assert!(!prove(&v, p));
        assert!(prove(&v, p.complement()), "-p fires via q");
    }

    #[test]
    fn prove_matches_on_random_programs() {
        // Deterministic mini-fuzz without pulling proptest into the
        // unit tests: a few dozen seeds of structured programs.
        use olp_core::{BodyItem, Literal, OrderedProgram, Rule};
        for seed in 0u64..40 {
            let mut w = World::new();
            let mut prog = OrderedProgram::new();
            let c_lo = prog.add_component(w.syms.intern("lo"));
            let c_hi = prog.add_component(w.syms.intern("hi"));
            prog.add_edge(c_lo, c_hi);
            // xorshift-ish deterministic rule soup over 5 atoms.
            let mut state = seed.wrapping_mul(2_654_435_761).wrapping_add(1);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..10 {
                let head_atom = (next() % 5) as usize;
                let head_sign = if next() % 3 == 0 {
                    Sign::Neg
                } else {
                    Sign::Pos
                };
                let pred = w.pred(&format!("p{head_atom}"), 0);
                let head = Literal {
                    sign: head_sign,
                    pred,
                    args: vec![],
                };
                let mut body = Vec::new();
                for _ in 0..(next() % 3) {
                    let ba = (next() % 5) as usize;
                    let bs = if next() % 2 == 0 {
                        Sign::Pos
                    } else {
                        Sign::Neg
                    };
                    let bp = w.pred(&format!("p{ba}"), 0);
                    body.push(BodyItem::Lit(Literal {
                        sign: bs,
                        pred: bp,
                        args: vec![],
                    }));
                }
                let comp = if next() % 2 == 0 { c_lo } else { c_hi };
                prog.add_rule(comp, Rule::new(head, body));
            }
            let g = ground_exhaustive(&mut w, &prog, &GroundConfig::default()).unwrap();
            for ci in 0..2 {
                let v = View::new(&g, CompId(ci));
                let m = least_model(&v);
                for atom in 0..g.n_atoms as u32 {
                    for sign in [Sign::Pos, Sign::Neg] {
                        let q = GLit::new(sign, AtomId(atom));
                        assert_eq!(
                            prove(&v, q),
                            m.holds(q),
                            "seed {seed}, comp {ci}, query {}",
                            w.glit_str(q)
                        );
                    }
                }
            }
        }
    }
}
